"""Unit tests for NoC characterization utilities."""

import numpy as np
import pytest

from repro.noc.analysis import (
    average_hop_count,
    bisection_links,
    latency_throughput_sweep,
    saturation_rate,
)
from repro.noc.schedule import NoCConfig
from repro.noc.stats import percentile, summarize_latencies
from repro.noc.topology import Mesh2D, Mesh3D


class TestSweep:
    def test_latency_monotone_in_load(self):
        topo = Mesh3D(4, 4, 2)
        points = latency_throughput_sweep(
            topo, rates=[0.5, 4.0, 20.0], window_cycles=500, seed=0
        )
        latencies = [p.average_latency_cycles for p in points]
        assert latencies[0] <= latencies[1] <= latencies[2]

    def test_low_load_near_uncontended(self):
        topo = Mesh3D(4, 4, 2)
        cfg = NoCConfig()
        points = latency_throughput_sweep(
            topo, rates=[0.1], window_cycles=2000, size_bits=256, config=cfg, seed=0
        )
        # ~avg 5 hops * 3 cycles + 9 flits: well under 100 cycles.
        assert points[0].average_latency_cycles < 100

    def test_saturation_detection(self):
        topo = Mesh3D(4, 4, 2)
        points = latency_throughput_sweep(
            topo, rates=[0.1, 100.0], window_cycles=500, seed=0
        )
        rate = saturation_rate(points)
        assert rate == 100.0

    def test_no_saturation_returns_none(self):
        topo = Mesh3D(4, 4, 2)
        points = latency_throughput_sweep(topo, rates=[0.1], window_cycles=1000)
        assert saturation_rate(points) is None

    def test_validation(self):
        topo = Mesh3D(4, 4, 2)
        with pytest.raises(ValueError):
            latency_throughput_sweep(topo, rates=[])
        with pytest.raises(ValueError):
            latency_throughput_sweep(topo, rates=[-1.0])
        with pytest.raises(ValueError, match="backend"):
            latency_throughput_sweep(topo, rates=[0.1], backend="quantum")

    def test_event_backend_sweep(self):
        """The flit-level backends drive the same sweep; the dynamic model
        interleaves flits, so it is never slower than the static schedule."""
        topo = Mesh3D(4, 4, 2)
        kwargs = dict(rates=[0.5, 4.0], window_cycles=500, seed=0)
        event = latency_throughput_sweep(topo, backend="event", **kwargs)
        static = latency_throughput_sweep(topo, backend="static", **kwargs)
        for ev, st in zip(event, static):
            assert ev.offered_rate == st.offered_rate
            assert 0 < ev.average_latency_cycles <= st.average_latency_cycles
            assert ev.max_link_load == st.max_link_load  # same flit work

    def test_event_and_cycle_backends_identical(self):
        topo = Mesh3D(4, 4, 2)
        kwargs = dict(rates=[2.0], window_cycles=300, seed=1)
        event = latency_throughput_sweep(topo, backend="event", **kwargs)
        cycle = latency_throughput_sweep(topo, backend="cycle", **kwargs)
        assert event == cycle


class TestBisection:
    def test_mesh2d_formula(self):
        # 8x8 planar mesh: 8 rows x 2 directions across the X cut.
        assert bisection_links(Mesh2D(8, 8)) == 16

    def test_3d_scales_with_tiers(self):
        assert bisection_links(Mesh3D(8, 8, 3)) == 3 * 16

    def test_more_tiers_more_bisection(self):
        assert bisection_links(Mesh3D(4, 4, 4)) == 2 * bisection_links(
            Mesh3D(4, 4, 2)
        )


class TestHopCount:
    def test_all_pairs_small_mesh(self):
        # 2x1x1 mesh: single pair at distance 1.
        assert average_hop_count(Mesh3D(2, 1, 1)) == 1.0

    def test_explicit_pairs(self):
        topo = Mesh3D(4, 4, 2)
        assert average_hop_count(topo, [(0, 1), (0, 3)]) == 2.0

    def test_3d_beats_planar_spread(self):
        """The 3D argument: same router count, shorter average distance."""
        three_d = average_hop_count(Mesh3D(4, 4, 4))
        planar = average_hop_count(Mesh2D(16, 4))
        assert three_d < planar

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            average_hop_count(Mesh3D(2, 2, 2), [])


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
        for q in (0, 10, 25, 50, 75, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_endpoints(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match="no values"):
            percentile([], 50)


class TestSummarizeLatencies:
    def test_summary_fields(self):
        values = list(range(1, 101))
        summary = summarize_latencies(values)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        assert summary.max == 100.0
        assert summary.p99 == pytest.approx(float(np.percentile(values, 99)))

    def test_empty_population_is_all_zero(self):
        summary = summarize_latencies([])
        assert summary.count == 0
        assert summary.mean == summary.p50 == summary.p99 == summary.max == 0.0

    def test_as_dict(self):
        assert summarize_latencies([2.0]).as_dict()["p95"] == 2.0


class TestSweepTailLatencies:
    def test_sweep_points_carry_percentiles(self):
        topo = Mesh3D(3, 3, 2)
        points = latency_throughput_sweep(
            topo, rates=[0.5], window_cycles=400, seed=0
        )
        point = points[0]
        assert point.p50_latency_cycles > 0
        assert point.p50_latency_cycles <= point.p95_latency_cycles
        assert point.p95_latency_cycles <= point.p99_latency_cycles
        # The mean sits inside the distribution's support.
        assert point.p50_latency_cycles <= point.average_latency_cycles * 2

    def test_event_backend_reports_identical_tails(self):
        topo = Mesh3D(3, 3, 2)
        kwargs = dict(rates=[1.0], window_cycles=300, seed=1)
        static = latency_throughput_sweep(topo, backend="static", **kwargs)
        event = latency_throughput_sweep(topo, backend="event", **kwargs)
        assert static[0].p99_latency_cycles > 0
        assert event[0].p99_latency_cycles > 0
