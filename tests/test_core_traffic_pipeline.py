"""Unit tests for GNN traffic extraction and the pipeline model."""

import numpy as np
import pytest

from repro.core.config import ReGraphXConfig
from repro.core.mapping import contiguous_mapping, random_mapping, stage_names
from repro.core.pipeline import PipelineModel, PipelineTiming, StageCost
from repro.core.traffic import GNNTrafficModel, _grid_shape


def _message_tuples(msgs):
    return [(m.src, m.dests, m.size_bits, m.tag, m.msg_id) for m in msgs]


@pytest.fixture(scope="module")
def traffic_model(accelerator, ppi_workload):
    sm = contiguous_mapping(accelerator.config)
    return GNNTrafficModel(
        accelerator.config,
        sm,
        ppi_workload.block_mapping,
        ppi_workload.num_nodes_per_input,
        ppi_workload.layer_dims,
    )


class TestGridShape:
    def test_square(self):
        assert _grid_shape(16) == (4, 4)

    def test_rect(self):
        assert _grid_shape(8) == (2, 4)

    def test_prime(self):
        assert _grid_shape(7) == (1, 7)


class TestTrafficModel:
    def test_messages_valid(self, traffic_model):
        msgs = traffic_model.messages()
        assert len(msgs) > 100
        ids = [m.msg_id for m in msgs]
        assert len(set(ids)) == len(ids)

    def test_sources_and_dests_live_on_assigned_stages(
        self, traffic_model, accelerator
    ):
        sm = traffic_model.stage_map
        stage_routers = {s: set(sm.routers(s)) for s in sm.stages}
        for msg in traffic_model.messages():
            src_stage, dst_stage = msg.tag.split("->")
            assert msg.src in stage_routers[src_stage], msg.tag
            if src_stage != dst_stage and not dst_stage.startswith("V"):
                # Pure E-type destination legs (masks, gradients, reductions).
                allowed = stage_routers[dst_stage]
                assert set(msg.dests) <= allowed, msg.tag

    def test_v_to_e_volume_conservation(self, traffic_model, ppi_workload):
        """Every updated feature row is shipped exactly once: the V1->E1 leg
        carries n x dout x 16 bits in total."""
        msgs = [m for m in traffic_model.messages() if m.tag == "V1->E1"]
        total = sum(m.size_bits for m in msgs)
        n = ppi_workload.num_nodes_per_input
        dout = ppi_workload.layer_dims[0][1]
        # Rows whose block-column group is empty are never shipped.
        covered_rows = sum(
            min((int(g) + 1) * 8, n) - int(g) * 8
            for g in traffic_model._index.occupied_cols
        )
        assert total == covered_rows * dout * 16

    def test_all_expected_legs_present(self, traffic_model, accelerator):
        tags = {m.tag for m in traffic_model.messages()}
        L = accelerator.config.num_layers
        for i in range(1, L + 1):
            assert f"V{i}->E{i}" in tags
            assert f"E{i}->E{i}" in tags  # partial-sum reduction
            assert f"E{i}->BE{i}" in tags
            assert f"BE{i}->BV{i}" in tags
            if i < L:
                assert f"E{i}->V{i + 1}" in tags
            if i > 1:
                assert f"BV{i}->BE{i - 1}" in tags

    def test_multicast_degree_bounded_by_grid(self, traffic_model):
        """Input-distribution legs multicast to at most grid-column size."""
        a, _ = _grid_shape(16)
        for msg in traffic_model.messages():
            if msg.tag.startswith("V") and "->E" in msg.tag:
                assert len(msg.dests) <= a

    def test_e_rounds_scales_input_legs(self, accelerator, ppi_workload):
        sm = contiguous_mapping(accelerator.config)
        kwargs = dict(
            config=accelerator.config,
            stage_map=sm,
            block_mapping=ppi_workload.block_mapping,
            num_nodes=ppi_workload.num_nodes_per_input,
            layer_dims=ppi_workload.layer_dims,
        )
        base = GNNTrafficModel(**kwargs).leg_volumes()
        doubled = GNNTrafficModel(**kwargs, e_rounds=2).leg_volumes()
        assert doubled[("V1", "E1")] == 2 * base[("V1", "E1")]
        # Output legs are delivered once regardless of rounds.
        assert doubled[("E1", "V2")] == base[("E1", "V2")]

    def test_leg_volumes_positive(self, traffic_model):
        for leg, volume in traffic_model.leg_volumes().items():
            assert volume > 0, leg

    def test_multicast_degree_diagnostic(self, traffic_model):
        degree = traffic_model.multicast_degree()
        assert 1.0 <= degree <= 16.0

    def test_deterministic(self, traffic_model, accelerator, ppi_workload):
        again = GNNTrafficModel(
            accelerator.config,
            traffic_model.stage_map,
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        a = [(m.src, m.dests, m.size_bits, m.tag) for m in traffic_model.messages()]
        b = [(m.src, m.dests, m.size_bits, m.tag) for m in again.messages()]
        assert a == b

    def test_validation(self, accelerator, ppi_workload):
        sm = contiguous_mapping(accelerator.config)
        with pytest.raises(ValueError, match="layer dims"):
            GNNTrafficModel(
                accelerator.config, sm, ppi_workload.block_mapping, 10, [(4, 4)]
            )
        with pytest.raises(ValueError, match="node"):
            GNNTrafficModel(
                accelerator.config,
                sm,
                ppi_workload.block_mapping,
                0,
                ppi_workload.layer_dims,
            )


class TestVectorizedEngine:
    """Numpy group-by extraction vs the scalar oracle: bit-identical."""

    def test_matches_loop_engine(self, traffic_model):
        vectorized = traffic_model.messages(vectorized=True)
        loop = traffic_model.messages(vectorized=False)
        assert _message_tuples(vectorized) == _message_tuples(loop)

    def test_matches_on_inference(self, accelerator, ppi_workload):
        model = GNNTrafficModel(
            accelerator.config,
            contiguous_mapping(accelerator.config, training=False),
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
            training=False,
        )
        assert _message_tuples(model.messages(True)) == _message_tuples(
            model.messages(False)
        )

    def test_matches_on_scattered_mapping(self, accelerator, ppi_workload):
        """A random placement exercises every grid/chunk corner case."""
        model = GNNTrafficModel(
            accelerator.config,
            random_mapping(accelerator.config, seed=13),
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        assert _message_tuples(model.messages(True)) == _message_tuples(
            model.messages(False)
        )

    def test_matches_with_e_rounds(self, accelerator, ppi_workload):
        model = GNNTrafficModel(
            accelerator.config,
            contiguous_mapping(accelerator.config),
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
            e_rounds=3,
        )
        assert _message_tuples(model.messages(True)) == _message_tuples(
            model.messages(False)
        )

    def test_matches_on_alternate_mesh(self, ppi_workload):
        """Different mesh geometry changes grids, chunk bounds, homes."""
        config = ReGraphXConfig(mesh_width=6, mesh_height=6, tiers=3)
        model = GNNTrafficModel(
            config,
            contiguous_mapping(config),
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        assert _message_tuples(model.messages(True)) == _message_tuples(
            model.messages(False)
        )


class TestPipelineModel:
    def test_stage_order(self):
        model = PipelineModel(4)
        assert model.stage_order == stage_names(4)

    def test_period_is_max_bound(self):
        model = PipelineModel(1)
        timing = model.timing(
            compute={"V1": 1.0, "E1": 3.0},
            communication={"V1": 2.0, "BE1": 2.5},
            num_inputs=10,
        )
        assert timing.period == 3.0
        assert timing.bottleneck.name == "E1"

    def test_epoch_formula(self):
        model = PipelineModel(1)  # 4 stages
        timing = model.timing({"V1": 2.0}, {}, num_inputs=10)
        assert timing.epoch_seconds == pytest.approx(2.0 * (10 + 3))

    def test_worst_compute_and_comm(self):
        model = PipelineModel(1)
        timing = model.timing(
            {"V1": 1.0, "E1": 5.0}, {"BV1": 7.0}, num_inputs=2
        )
        assert timing.worst_compute == 5.0
        assert timing.worst_communication == 7.0

    def test_utilization(self):
        model = PipelineModel(1)
        timing = model.timing({"V1": 1.0}, {}, num_inputs=4)
        # 4 inputs x 4 stages useful over (4+3) x 4 slots.
        assert timing.steady_state_utilization == pytest.approx(16 / 28)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PipelineModel(1).timing({"V9": 1.0}, {}, 1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            StageCost("V1", -1.0, 0.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PipelineTiming(stages=(), num_inputs=1)

    def test_zero_inputs_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(1).timing({}, {}, 0)
