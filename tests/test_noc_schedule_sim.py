"""Tests for the static scheduler and the flit-level simulator, including
their cross-validation (DESIGN.md simulation methodology)."""

import pytest

from repro.noc.packet import Message
from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.simulator import FlitSimulator
from repro.noc.stats import LinkStats
from repro.noc.topology import Mesh3D
from repro.noc.traffic_gen import (
    hotspot_traffic,
    many_to_one_to_many_traffic,
    uniform_random_traffic,
)

TOPO = Mesh3D(8, 8, 3)
CFG = NoCConfig()


class TestMessage:
    def test_flit_count(self):
        assert Message(src=0, dests=(1,), size_bits=32, msg_id=0).num_flits(32) == 2
        assert Message(src=0, dests=(1,), size_bits=33, msg_id=0).num_flits(32) == 3

    def test_multicast_flag(self):
        assert Message(src=0, dests=(1, 2), size_bits=8, msg_id=0).is_multicast
        assert not Message(src=0, dests=(1,), size_bits=8, msg_id=0).is_multicast

    def test_validation(self):
        with pytest.raises(ValueError):
            Message(src=0, dests=(), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(0,), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1, 1), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1,), size_bits=0)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1,), size_bits=8, inject_cycle=-1)


class TestNoCConfig:
    def test_defaults_valid(self):
        cfg = NoCConfig()
        assert cfg.hop_cycles == 3
        assert cfg.cycle_time == pytest.approx(1 / 0.4e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoCConfig(flit_bits=0)
        with pytest.raises(ValueError):
            NoCConfig(clock_hz=0)
        with pytest.raises(ValueError):
            NoCConfig(router_cycles=0)
        with pytest.raises(ValueError):
            NoCConfig(schedule_mode="magic")


def analytic_latency(topo, cfg, msg):
    """Uncontended wormhole latency including local ports."""
    hops = topo.distance(msg.src, msg.dests[0]) + 2
    return msg.inject_cycle + hops * cfg.hop_cycles + msg.num_flits(cfg.flit_bits) - 1


class TestStaticScheduler:
    def test_single_message_analytic(self):
        msg = Message(src=0, dests=(TOPO.router_id(3, 2, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        assert result.makespan_cycles == analytic_latency(TOPO, CFG, msg)

    def test_injection_delay_respected(self):
        msg = Message(src=0, dests=(1,), size_bits=32, inject_cycle=100, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        assert result.makespan_cycles == analytic_latency(TOPO, CFG, msg)

    def test_shared_destination_serializes(self):
        """Two messages into one ejection port cannot overlap fully."""
        msgs = [
            Message(src=1, dests=(0,), size_bits=3200, msg_id=0),
            Message(src=2, dests=(0,), size_bits=3200, msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        flits = msgs[0].num_flits(CFG.flit_bits)
        solo = analytic_latency(TOPO, CFG, msgs[0])
        assert result.makespan_cycles >= solo + flits

    def test_disjoint_messages_parallel(self):
        msgs = [
            Message(src=0, dests=(1,), size_bits=320, msg_id=0),
            Message(src=100, dests=(101,), size_bits=320, msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert result.makespan_cycles == max(
            analytic_latency(TOPO, CFG, m) for m in msgs
        )

    def test_multicast_beats_unicast(self):
        msg = Message(
            src=0, dests=tuple(TOPO.tier_routers(2)[:16]), size_bits=4096, msg_id=0
        )
        sched = StaticScheduler(TOPO, CFG)
        multicast = sched.simulate([msg], multicast=True)
        unicast = sched.simulate([msg], multicast=False)
        assert multicast.makespan_cycles < unicast.makespan_cycles
        assert multicast.total_flit_hops < unicast.total_flit_hops

    def test_multicast_crosses_each_tree_link_once(self):
        dests = (TOPO.router_id(1, 0, 0), TOPO.router_id(2, 0, 0))
        msg = Message(src=0, dests=dests, size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg], multicast=True)
        flits = msg.num_flits(CFG.flit_bits)
        # Tree: 2 router links + injection + 2 ejections = 5 links.
        assert result.total_flit_hops == 5 * flits

    def test_tag_finish(self):
        msgs = [
            Message(src=0, dests=(1,), size_bits=320, tag="a", msg_id=0),
            Message(src=0, dests=(10,), size_bits=320, tag="b", msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert set(result.tag_finish) == {"a", "b"}
        assert result.tag_finish_seconds("a") > 0
        with pytest.raises(KeyError):
            result.tag_finish_seconds("zzz")

    def test_determinism(self):
        msgs = uniform_random_traffic(TOPO, 50, seed=7)
        a = StaticScheduler(TOPO, CFG).simulate(msgs)
        b = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.message_finish == b.message_finish

    def test_atomic_mode_conservative(self):
        msgs = uniform_random_traffic(TOPO, 60, size_bits=512, seed=3)
        pipelined = StaticScheduler(TOPO, NoCConfig(schedule_mode="pipelined"))
        atomic = StaticScheduler(TOPO, NoCConfig(schedule_mode="atomic"))
        assert (
            pipelined.simulate(msgs).makespan_cycles
            <= atomic.simulate(msgs).makespan_cycles
        )

    def test_energy_accounting(self):
        msg = Message(src=0, dests=(TOPO.router_id(0, 0, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        stats = result.link_stats
        flits = msg.num_flits(CFG.flit_bits)
        assert stats.vertical_flit_hops == flits  # one TSV hop
        assert stats.local_flit_hops == 2 * flits  # inject + eject
        assert stats.planar_flit_hops == 0
        expected = (
            flits * (CFG.router_energy_per_flit + CFG.vertical_link_energy_per_flit)
            + 2 * flits * (CFG.local_port_energy_per_flit + CFG.router_energy_per_flit)
        )
        assert result.energy_joules() == pytest.approx(expected)

    def test_makespan_at_least_bottleneck_load(self):
        msgs = hotspot_traffic(TOPO, 80, hotspot=0, seed=1)
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert result.makespan_cycles >= result.link_stats.max_link_load

    def test_without_local_ports(self):
        cfg = NoCConfig(model_local_ports=False)
        msg = Message(src=0, dests=(TOPO.router_id(3, 2, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, cfg).simulate([msg])
        hops = TOPO.distance(0, msg.dests[0])
        assert result.makespan_cycles == hops * cfg.hop_cycles + msg.num_flits(32) - 1


class TestFlitSimulator:
    def test_single_message_matches_scheduler(self):
        msg = Message(src=0, dests=(TOPO.router_id(5, 5, 2),), size_bits=640, msg_id=0)
        sched = StaticScheduler(TOPO, CFG).simulate([msg])
        sim = FlitSimulator(TOPO, CFG).simulate([msg])
        assert sim.makespan_cycles == sched.makespan_cycles

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FlitSimulator(TOPO, CFG, backend="quantum")
        with pytest.raises(ValueError, match="backend"):
            FlitSimulator(TOPO, CFG).simulate([], backend="quantum")

    def test_contended_not_worse_than_atomic(self):
        msgs = uniform_random_traffic(TOPO, 40, size_bits=512, seed=5)
        atomic = StaticScheduler(TOPO, NoCConfig(schedule_mode="atomic")).simulate(
            msgs, multicast=False
        )
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert sim.makespan_cycles <= atomic.makespan_cycles

    def test_flit_hop_conservation(self):
        msgs = uniform_random_traffic(TOPO, 30, size_bits=256, seed=2)
        sched = StaticScheduler(TOPO, CFG).simulate(msgs, multicast=False)
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert sim.link_stats.total_flit_hops == sched.total_flit_hops

    def test_all_messages_delivered(self):
        msgs = uniform_random_traffic(TOPO, 25, seed=9)
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert len(sim.message_finish) == 25

    def test_max_cycles_guard(self):
        msgs = uniform_random_traffic(TOPO, 10, size_bits=4096, seed=0)
        with pytest.raises(RuntimeError, match="exceeded"):
            FlitSimulator(TOPO, CFG).simulate(msgs, max_cycles=5)


class TestSimulationResultKeying:
    """Regression: results are keyed by the caller's (msg_id, dest), not by
    internally renumbered packet ids."""

    def test_shuffled_msg_ids_stay_addressable(self):
        # Disjoint messages with non-contiguous, out-of-order ids: each
        # finish time must land under the caller's id, at the uncontended
        # analytic latency.
        msgs = [
            Message(src=0, dests=(1,), size_bits=320, msg_id=42),
            Message(src=100, dests=(101,), size_bits=320, msg_id=7),
            Message(src=50, dests=(58,), size_bits=320, msg_id=1000),
        ]
        for backend in ("event", "cycle"):
            result = FlitSimulator(TOPO, CFG, backend=backend).simulate(msgs)
            assert set(result.message_finish) == {(42, 1), (7, 101), (1000, 58)}
            for m in msgs:
                assert result.message_finish[(m.msg_id, m.dests[0])] == (
                    analytic_latency(TOPO, CFG, m)
                )

    def test_multicast_expansion_addressable_per_dest(self):
        msg = Message(src=0, dests=(3, 17, 80), size_bits=320, msg_id=9)
        result = FlitSimulator(TOPO, CFG).simulate([msg])
        assert set(result.message_finish) == {(9, 3), (9, 17), (9, 80)}
        by_msg = result.finish_by_message()
        assert by_msg == {9: max(result.message_finish.values())}

    def test_duplicate_keys_rejected(self):
        msgs = [
            Message(src=0, dests=(5,), size_bits=32, msg_id=1),
            Message(src=2, dests=(5,), size_bits=32, msg_id=1),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            FlitSimulator(TOPO, CFG).simulate(msgs)


class TestWatchdogAndEmptyInput:
    def test_empty_trace_zero_makespan(self):
        for backend in ("event", "cycle"):
            result = FlitSimulator(TOPO, CFG, backend=backend).simulate([])
            assert result.makespan_cycles == 0
            assert result.message_finish == {}
            assert result.link_stats.total_flit_hops == 0

    def test_watchdog_boundary_exact(self):
        """max_cycles permits exactly max_cycles cycles (0..max_cycles-1),
        not max_cycles + 1 as the old off-by-one guard did."""
        msg = Message(src=0, dests=(1,), size_bits=32, msg_id=0)
        # Tail flit crosses the last link hop_cycles before the reported
        # finish; the simulation needs cycles 0..last_tail inclusive.
        finish = FlitSimulator(TOPO, CFG).simulate([msg]).makespan_cycles
        last_tail = finish - CFG.hop_cycles
        for backend in ("event", "cycle"):
            sim = FlitSimulator(TOPO, CFG, backend=backend)
            ok = sim.simulate([msg], max_cycles=last_tail + 1)
            assert ok.makespan_cycles == finish
            with pytest.raises(RuntimeError, match="exceeded"):
                sim.simulate([msg], max_cycles=last_tail)


class TestLinkUtilization:
    def test_with_local_ports_bounded(self):
        """Regression: numerator included local-port flits while the
        denominator counted only mesh links, so many-to-one traffic could
        report utilization > 1."""
        small = Mesh3D(2, 2, 1)
        msgs = [
            Message(src=s, dests=(0,), size_bits=4096, msg_id=i)
            for i, s in enumerate((1, 2, 3))
        ]
        result = FlitSimulator(small, CFG).simulate(msgs)
        util = result.link_stats.utilization(result.makespan_cycles)
        assert 0.0 < util <= 1.0
        # The auto-detected denominator counts mesh links + 2N local ports.
        expected_links = len(small.links()) + 2 * small.num_routers
        assert util == pytest.approx(
            result.link_stats.total_flit_hops
            / (expected_links * result.makespan_cycles)
        )

    def test_without_local_ports(self):
        small = Mesh3D(2, 2, 1)
        cfg = NoCConfig(model_local_ports=False)
        msgs = [Message(src=1, dests=(2,), size_bits=4096, msg_id=0)]
        result = FlitSimulator(small, cfg).simulate(msgs)
        util = result.link_stats.utilization(result.makespan_cycles)
        assert 0.0 < util <= 1.0
        assert util == pytest.approx(
            result.link_stats.total_flit_hops
            / (len(small.links()) * result.makespan_cycles)
        )

    def test_explicit_override(self):
        small = Mesh3D(2, 2, 1)
        msgs = [Message(src=1, dests=(2,), size_bits=4096, msg_id=0)]
        result = FlitSimulator(small, CFG).simulate(msgs)
        stats = result.link_stats
        span = result.makespan_cycles
        with_local = stats.utilization(span, include_local_ports=True)
        without = stats.utilization(span, include_local_ports=False)
        assert without > with_local  # smaller denominator
        assert stats.utilization(span) == with_local  # auto-detects local flits

    def test_zero_makespan(self):
        assert LinkStats(TOPO).utilization(0) == 0.0


class TestTrafficGen:
    def test_uniform_properties(self):
        msgs = uniform_random_traffic(TOPO, 100, seed=0)
        assert len(msgs) == 100
        assert all(m.src != m.dests[0] for m in msgs)

    def test_uniform_deterministic(self):
        a = uniform_random_traffic(TOPO, 20, seed=4)
        b = uniform_random_traffic(TOPO, 20, seed=4)
        assert [(m.src, m.dests) for m in a] == [(m.src, m.dests) for m in b]

    def test_hotspot_fraction(self):
        msgs = hotspot_traffic(TOPO, 400, hotspot=7, hotspot_fraction=0.5, seed=0)
        hot = sum(1 for m in msgs if m.dests[0] == 7)
        assert 120 < hot < 280

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_traffic(TOPO, 10, hotspot=0, hotspot_fraction=2.0)
        with pytest.raises(IndexError):
            hotspot_traffic(TOPO, 10, hotspot=999)

    def test_hotspot_tiny_mesh(self):
        """Non-hotspot draws need a third router to land on; with a pure
        hotspot fraction two routers suffice."""
        tiny = Mesh3D(2, 1, 1)
        with pytest.raises(ValueError, match="3 routers"):
            hotspot_traffic(tiny, 5, hotspot=0, hotspot_fraction=0.5)
        msgs = hotspot_traffic(tiny, 5, hotspot=0, hotspot_fraction=1.0)
        assert all(m.dests == (0,) and m.src == 1 for m in msgs)

    def test_many_to_one_to_many_shape(self):
        sources = TOPO.tier_routers(1)[:4]
        sinks = TOPO.tier_routers(0)[:3]
        msgs = many_to_one_to_many_traffic(TOPO, sources, sinks)
        gather = [m for m in msgs if m.tag == "gather"]
        scatter = [m for m in msgs if m.tag == "scatter"]
        assert len(gather) == 4
        assert len(scatter) == 3
        assert all(set(m.dests) == set(sinks) for m in gather)
        assert all(set(m.dests) == set(sources) for m in scatter)

    def test_many_to_one_requires_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            many_to_one_to_many_traffic(TOPO, [0, 1], [1, 2])

    def test_no_replies(self):
        msgs = many_to_one_to_many_traffic(TOPO, [64], [0], replies=False)
        assert len(msgs) == 1

    def test_hotspot_inject_window(self):
        """Regression: hotspot_traffic silently dropped the inject_window
        knob that uniform_random_traffic has."""
        msgs = hotspot_traffic(TOPO, 200, hotspot=7, seed=0, inject_window=500)
        injects = [m.inject_cycle for m in msgs]
        assert all(0 <= i <= 500 for i in injects)
        assert max(injects) > 0  # the window is actually used
        flat = hotspot_traffic(TOPO, 50, hotspot=7, seed=0)
        assert all(m.inject_cycle == 0 for m in flat)

    def test_hotspot_fraction_not_inflated(self):
        """Regression: the non-hotspot branch could still draw the hotspot,
        inflating the effective fraction beyond the requested one."""
        msgs = hotspot_traffic(TOPO, 600, hotspot=7, hotspot_fraction=0.25, seed=0)
        hot = sum(1 for m in msgs if m.dests[0] == 7)
        # Binomial(600, 0.25): mean 150, sigma ~10.6 — a +/-4 sigma band.
        # Before the fix the uniform branch added ~450/192 ~ 2.3 extra
        # hotspot hits in expectation *per seed* on top of any skew.
        assert 107 <= hot <= 193

    def test_hotspot_deterministic(self):
        a = hotspot_traffic(TOPO, 30, hotspot=3, seed=12, inject_window=100)
        b = hotspot_traffic(TOPO, 30, hotspot=3, seed=12, inject_window=100)
        assert [(m.src, m.dests, m.inject_cycle) for m in a] == [
            (m.src, m.dests, m.inject_cycle) for m in b
        ]

    def test_many_to_one_to_many_inject_window(self):
        sources = TOPO.tier_routers(1)[:4]
        sinks = TOPO.tier_routers(0)[:3]
        msgs = many_to_one_to_many_traffic(
            TOPO, sources, sinks, seed=5, inject_window=1000
        )
        injects = [m.inject_cycle for m in msgs]
        assert all(0 <= i <= 1000 for i in injects)
        assert max(injects) > 0
        flat = many_to_one_to_many_traffic(TOPO, sources, sinks, seed=5)
        assert all(m.inject_cycle == 0 for m in flat)
