"""Tests for the static scheduler and the flit-level simulator, including
their cross-validation (DESIGN.md simulation methodology)."""

import pytest

from repro.noc.packet import Message
from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.simulator import FlitSimulator
from repro.noc.topology import Mesh3D
from repro.noc.traffic_gen import (
    hotspot_traffic,
    many_to_one_to_many_traffic,
    uniform_random_traffic,
)

TOPO = Mesh3D(8, 8, 3)
CFG = NoCConfig()


class TestMessage:
    def test_flit_count(self):
        assert Message(src=0, dests=(1,), size_bits=32, msg_id=0).num_flits(32) == 2
        assert Message(src=0, dests=(1,), size_bits=33, msg_id=0).num_flits(32) == 3

    def test_multicast_flag(self):
        assert Message(src=0, dests=(1, 2), size_bits=8, msg_id=0).is_multicast
        assert not Message(src=0, dests=(1,), size_bits=8, msg_id=0).is_multicast

    def test_validation(self):
        with pytest.raises(ValueError):
            Message(src=0, dests=(), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(0,), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1, 1), size_bits=8)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1,), size_bits=0)
        with pytest.raises(ValueError):
            Message(src=0, dests=(1,), size_bits=8, inject_cycle=-1)


class TestNoCConfig:
    def test_defaults_valid(self):
        cfg = NoCConfig()
        assert cfg.hop_cycles == 3
        assert cfg.cycle_time == pytest.approx(1 / 0.4e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoCConfig(flit_bits=0)
        with pytest.raises(ValueError):
            NoCConfig(clock_hz=0)
        with pytest.raises(ValueError):
            NoCConfig(router_cycles=0)
        with pytest.raises(ValueError):
            NoCConfig(schedule_mode="magic")


def analytic_latency(topo, cfg, msg):
    """Uncontended wormhole latency including local ports."""
    hops = topo.distance(msg.src, msg.dests[0]) + 2
    return msg.inject_cycle + hops * cfg.hop_cycles + msg.num_flits(cfg.flit_bits) - 1


class TestStaticScheduler:
    def test_single_message_analytic(self):
        msg = Message(src=0, dests=(TOPO.router_id(3, 2, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        assert result.makespan_cycles == analytic_latency(TOPO, CFG, msg)

    def test_injection_delay_respected(self):
        msg = Message(src=0, dests=(1,), size_bits=32, inject_cycle=100, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        assert result.makespan_cycles == analytic_latency(TOPO, CFG, msg)

    def test_shared_destination_serializes(self):
        """Two messages into one ejection port cannot overlap fully."""
        msgs = [
            Message(src=1, dests=(0,), size_bits=3200, msg_id=0),
            Message(src=2, dests=(0,), size_bits=3200, msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        flits = msgs[0].num_flits(CFG.flit_bits)
        solo = analytic_latency(TOPO, CFG, msgs[0])
        assert result.makespan_cycles >= solo + flits

    def test_disjoint_messages_parallel(self):
        msgs = [
            Message(src=0, dests=(1,), size_bits=320, msg_id=0),
            Message(src=100, dests=(101,), size_bits=320, msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert result.makespan_cycles == max(
            analytic_latency(TOPO, CFG, m) for m in msgs
        )

    def test_multicast_beats_unicast(self):
        msg = Message(
            src=0, dests=tuple(TOPO.tier_routers(2)[:16]), size_bits=4096, msg_id=0
        )
        sched = StaticScheduler(TOPO, CFG)
        multicast = sched.simulate([msg], multicast=True)
        unicast = sched.simulate([msg], multicast=False)
        assert multicast.makespan_cycles < unicast.makespan_cycles
        assert multicast.total_flit_hops < unicast.total_flit_hops

    def test_multicast_crosses_each_tree_link_once(self):
        dests = (TOPO.router_id(1, 0, 0), TOPO.router_id(2, 0, 0))
        msg = Message(src=0, dests=dests, size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg], multicast=True)
        flits = msg.num_flits(CFG.flit_bits)
        # Tree: 2 router links + injection + 2 ejections = 5 links.
        assert result.total_flit_hops == 5 * flits

    def test_tag_finish(self):
        msgs = [
            Message(src=0, dests=(1,), size_bits=320, tag="a", msg_id=0),
            Message(src=0, dests=(10,), size_bits=320, tag="b", msg_id=1),
        ]
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert set(result.tag_finish) == {"a", "b"}
        assert result.tag_finish_seconds("a") > 0
        with pytest.raises(KeyError):
            result.tag_finish_seconds("zzz")

    def test_determinism(self):
        msgs = uniform_random_traffic(TOPO, 50, seed=7)
        a = StaticScheduler(TOPO, CFG).simulate(msgs)
        b = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.message_finish == b.message_finish

    def test_atomic_mode_conservative(self):
        msgs = uniform_random_traffic(TOPO, 60, size_bits=512, seed=3)
        pipelined = StaticScheduler(TOPO, NoCConfig(schedule_mode="pipelined"))
        atomic = StaticScheduler(TOPO, NoCConfig(schedule_mode="atomic"))
        assert (
            pipelined.simulate(msgs).makespan_cycles
            <= atomic.simulate(msgs).makespan_cycles
        )

    def test_energy_accounting(self):
        msg = Message(src=0, dests=(TOPO.router_id(0, 0, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, CFG).simulate([msg])
        stats = result.link_stats
        flits = msg.num_flits(CFG.flit_bits)
        assert stats.vertical_flit_hops == flits  # one TSV hop
        assert stats.local_flit_hops == 2 * flits  # inject + eject
        assert stats.planar_flit_hops == 0
        expected = (
            flits * (CFG.router_energy_per_flit + CFG.vertical_link_energy_per_flit)
            + 2 * flits * (CFG.local_port_energy_per_flit + CFG.router_energy_per_flit)
        )
        assert result.energy_joules() == pytest.approx(expected)

    def test_makespan_at_least_bottleneck_load(self):
        msgs = hotspot_traffic(TOPO, 80, hotspot=0, seed=1)
        result = StaticScheduler(TOPO, CFG).simulate(msgs)
        assert result.makespan_cycles >= result.link_stats.max_link_load

    def test_without_local_ports(self):
        cfg = NoCConfig(model_local_ports=False)
        msg = Message(src=0, dests=(TOPO.router_id(3, 2, 1),), size_bits=320, msg_id=0)
        result = StaticScheduler(TOPO, cfg).simulate([msg])
        hops = TOPO.distance(0, msg.dests[0])
        assert result.makespan_cycles == hops * cfg.hop_cycles + msg.num_flits(32) - 1


class TestFlitSimulator:
    def test_single_message_matches_scheduler(self):
        msg = Message(src=0, dests=(TOPO.router_id(5, 5, 2),), size_bits=640, msg_id=0)
        sched = StaticScheduler(TOPO, CFG).simulate([msg])
        sim = FlitSimulator(TOPO, CFG).simulate([msg])
        assert sim.makespan_cycles == sched.makespan_cycles

    def test_contended_not_worse_than_atomic(self):
        msgs = uniform_random_traffic(TOPO, 40, size_bits=512, seed=5)
        atomic = StaticScheduler(TOPO, NoCConfig(schedule_mode="atomic")).simulate(
            msgs, multicast=False
        )
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert sim.makespan_cycles <= atomic.makespan_cycles

    def test_flit_hop_conservation(self):
        msgs = uniform_random_traffic(TOPO, 30, size_bits=256, seed=2)
        sched = StaticScheduler(TOPO, CFG).simulate(msgs, multicast=False)
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert sim.link_stats.total_flit_hops == sched.total_flit_hops

    def test_all_messages_delivered(self):
        msgs = uniform_random_traffic(TOPO, 25, seed=9)
        sim = FlitSimulator(TOPO, CFG).simulate(msgs)
        assert len(sim.message_finish) == 25

    def test_max_cycles_guard(self):
        msgs = uniform_random_traffic(TOPO, 10, size_bits=4096, seed=0)
        with pytest.raises(RuntimeError, match="exceeded"):
            FlitSimulator(TOPO, CFG).simulate(msgs, max_cycles=5)


class TestTrafficGen:
    def test_uniform_properties(self):
        msgs = uniform_random_traffic(TOPO, 100, seed=0)
        assert len(msgs) == 100
        assert all(m.src != m.dests[0] for m in msgs)

    def test_uniform_deterministic(self):
        a = uniform_random_traffic(TOPO, 20, seed=4)
        b = uniform_random_traffic(TOPO, 20, seed=4)
        assert [(m.src, m.dests) for m in a] == [(m.src, m.dests) for m in b]

    def test_hotspot_fraction(self):
        msgs = hotspot_traffic(TOPO, 400, hotspot=7, hotspot_fraction=0.5, seed=0)
        hot = sum(1 for m in msgs if m.dests[0] == 7)
        assert 120 < hot < 280

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_traffic(TOPO, 10, hotspot=0, hotspot_fraction=2.0)
        with pytest.raises(IndexError):
            hotspot_traffic(TOPO, 10, hotspot=999)

    def test_many_to_one_to_many_shape(self):
        sources = TOPO.tier_routers(1)[:4]
        sinks = TOPO.tier_routers(0)[:3]
        msgs = many_to_one_to_many_traffic(TOPO, sources, sinks)
        gather = [m for m in msgs if m.tag == "gather"]
        scatter = [m for m in msgs if m.tag == "scatter"]
        assert len(gather) == 4
        assert len(scatter) == 3
        assert all(set(m.dests) == set(sinks) for m in gather)
        assert all(set(m.dests) == set(sources) for m in scatter)

    def test_many_to_one_requires_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            many_to_one_to_many_traffic(TOPO, [0, 1], [1, 2])

    def test_no_replies(self):
        msgs = many_to_one_to_many_traffic(TOPO, [64], [0], replies=False)
        assert len(msgs) == 1
