"""Unit tests for the architecture configuration and stage mapping."""

import numpy as np
import pytest

from repro.core.config import ReGraphXConfig
from repro.core.mapping import (
    StageMap,
    anneal_mapping,
    communication_legs,
    contiguous_mapping,
    random_mapping,
    stage_names,
)


class TestConfig:
    config = ReGraphXConfig()

    def test_table1_resource_counts(self):
        """Paper Table I / Sec. V.A: 64 V-PEs on 1 tier, 128 E-PEs on 2."""
        assert len(self.config.v_routers()) == 64
        assert len(self.config.e_routers()) == 128
        assert self.config.num_v_tiles == 256
        assert self.config.num_e_tiles == 512
        assert self.config.num_v_imas == 256 * 12
        assert self.config.num_e_crossbars == 512 * 96

    def test_sandwich_structure(self):
        """V tier in the middle, E tiers above and below (Fig. 2)."""
        assert self.config.v_tier == 1
        assert self.config.e_tiers == (0, 2)
        topo = self.config.topology
        assert all(topo.coords(r)[2] == 1 for r in self.config.v_routers())

    def test_pipeline_geometry(self):
        assert self.config.num_pipeline_stages == 16
        assert self.config.v_routers_per_stage == 8
        assert self.config.e_routers_per_stage == 16
        assert self.config.v_imas_per_stage == 8 * 4 * 12
        assert self.config.e_crossbars_per_stage == 16 * 4 * 96

    def test_summary_keys(self):
        summary = self.config.summary()
        assert summary["mesh"] == "8x8x3"
        assert summary["v_crossbar"] == "128x128"
        assert summary["e_crossbar"] == "8x8"

    def test_validation(self):
        with pytest.raises(ValueError):
            ReGraphXConfig(v_tier=5)
        with pytest.raises(ValueError):
            ReGraphXConfig(tiers=1)
        with pytest.raises(ValueError):
            ReGraphXConfig(tiles_per_router=0)
        with pytest.raises(ValueError):
            ReGraphXConfig(num_layers=0)
        with pytest.raises(ValueError):
            ReGraphXConfig(mesh_width=2, mesh_height=2, num_layers=4)  # too few routers


class TestStageNames:
    def test_order_two_layers(self):
        assert stage_names(2) == ["V1", "E1", "V2", "E2", "BE2", "BV2", "BE1", "BV1"]

    def test_count(self):
        assert len(stage_names(4)) == 16

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            stage_names(0)

    def test_legs_reference_real_stages(self):
        names = set(stage_names(4))
        for src, dst in communication_legs(4):
            assert src in names
            assert dst in names

    def test_legs_include_forward_backward_multicast(self):
        legs = communication_legs(3)
        assert ("E1", "BV2") in legs
        assert ("E1", "BE1") in legs
        assert ("BV2", "BE1") in legs


class TestStageMap:
    config = ReGraphXConfig()

    def test_contiguous_complete_and_disjoint(self):
        sm = contiguous_mapping(self.config)
        assert set(sm.stages) == set(stage_names(4))
        all_routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(all_routers) == len(set(all_routers)) == 192

    def test_contiguous_respects_tiers(self):
        sm = contiguous_mapping(self.config)
        v_set = set(self.config.v_routers())
        e_set = set(self.config.e_routers())
        for stage in sm.stages:
            target = v_set if stage.lstrip("B").startswith("V") else e_set
            assert set(sm.routers(stage)) <= target

    def test_random_mapping_valid(self):
        sm = random_mapping(self.config, seed=1)
        all_routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(set(all_routers)) == 192

    def test_random_mapping_differs_from_contiguous(self):
        assert random_mapping(self.config, seed=1).assignment != contiguous_mapping(
            self.config
        ).assignment

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            StageMap({"A": (1, 2), "B": (2, 3)})

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError, match="no routers"):
            StageMap({"A": ()})

    def test_unknown_stage_lookup(self):
        sm = contiguous_mapping(self.config)
        with pytest.raises(KeyError):
            sm.routers("V99")


class TestAnnealing:
    config = ReGraphXConfig()

    def test_result_valid(self):
        sm = anneal_mapping(self.config, iterations=50, seed=0)
        all_routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(set(all_routers)) == 192

    def test_zero_iterations_is_contiguous(self):
        sm = anneal_mapping(self.config, iterations=0)
        assert sm.assignment == contiguous_mapping(self.config).assignment

    def test_deterministic(self):
        a = anneal_mapping(self.config, iterations=80, seed=5)
        b = anneal_mapping(self.config, iterations=80, seed=5)
        assert a.assignment == b.assignment

    def test_improves_on_random_start_cost(self):
        """SA's proxy cost should not exceed the contiguous baseline."""
        from repro.core.mapping import _mapping_cost

        legs = communication_legs(4)
        topo = self.config.topology
        coords = np.asarray(
            [topo.coords(r) for r in range(topo.num_routers)], dtype=float
        )
        base = _mapping_cost(
            contiguous_mapping(self.config).assignment, legs, {}, coords
        )
        annealed = anneal_mapping(self.config, iterations=300, seed=0)
        cost = _mapping_cost(annealed.assignment, legs, {}, coords)
        assert cost <= base + 1e-9

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            anneal_mapping(self.config, iterations=-1)
