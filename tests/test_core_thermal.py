"""Unit tests for the 3D-stack thermal model (paper future work)."""

import pytest

from repro.core.thermal import (
    ThermalModel,
    ThermalSpec,
    tier_powers_from_report,
)


class TestThermalSpec:
    def test_defaults_valid(self):
        spec = ThermalSpec()
        assert spec.max_junction_celsius > spec.ambient_celsius

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalSpec(sink_resistance=-1.0)
        with pytest.raises(ValueError):
            ThermalSpec(max_junction_celsius=10.0)


class TestSteadyState:
    model = ThermalModel()

    def test_single_tier(self):
        spec = self.model.spec
        profile = self.model.steady_state([10.0])
        expected = (
            spec.ambient_celsius
            + spec.sink_resistance * 10.0
            + spec.layer_resistance * 10.0
        )
        assert profile.tier_celsius[0] == pytest.approx(expected)

    def test_bottom_tier_hottest(self):
        profile = self.model.steady_state([20.0, 20.0, 20.0])
        temps = profile.tier_celsius
        assert temps[0] > temps[1] > temps[2]
        assert profile.peak_tier == 0

    def test_zero_power_is_ambient(self):
        profile = self.model.steady_state([0.0, 0.0])
        assert profile.peak_celsius == pytest.approx(self.model.spec.ambient_celsius)

    def test_more_tiers_hotter(self):
        """The paper's concern: stacking raises peak temperature."""
        peaks = [
            self.model.steady_state([20.0] * tiers).peak_celsius
            for tiers in (1, 2, 3, 4, 6)
        ]
        assert peaks == sorted(peaks)
        # Superlinear growth: adding the 6th tier costs more than the 2nd.
        assert (peaks[4] - peaks[3]) > (peaks[1] - peaks[0])

    def test_feasibility_flag(self):
        cool = self.model.steady_state([5.0, 5.0, 5.0])
        hot = self.model.steady_state([200.0, 200.0, 200.0])
        assert cool.feasible
        assert not hot.feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            self.model.steady_state([])
        with pytest.raises(ValueError):
            self.model.steady_state([-1.0])


class TestMaxFeasibleTiers:
    def test_monotone_in_power(self):
        model = ThermalModel()
        assert model.max_feasible_tiers(5.0) >= model.max_feasible_tiers(30.0)

    def test_zero_power_unbounded(self):
        assert ThermalModel().max_feasible_tiers(0.0, max_tiers=12) == 12

    def test_huge_power_infeasible(self):
        assert ThermalModel().max_feasible_tiers(1e6) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ThermalModel().max_feasible_tiers(-1.0)


class TestTierPowerAttribution:
    """Regression: zero dynamic energy must not divide by zero or leak a
    non-float v_share through the `x and (a / b)` idiom."""

    @staticmethod
    def _stub_report(compute=0.0, write=0.0, noc=0.0, period=1e-3):
        from types import SimpleNamespace

        from repro.core.config import ReGraphXConfig

        config = ReGraphXConfig()
        return SimpleNamespace(
            config=config,
            compute_energy_per_input=compute,
            energy_per_input=compute + write + noc,
            pipeline=SimpleNamespace(period=period),
        )

    def test_zero_dynamic_energy(self):
        report = self._stub_report()
        powers = tier_powers_from_report(report)
        assert len(powers) == report.config.tiers
        static_each = (
            report.config.energy.static_power_watts / report.config.tiers
        )
        # Nothing to attribute: every tier carries exactly its static share.
        assert all(p == pytest.approx(static_each) for p in powers)

    def test_zero_compute_nonzero_noc(self):
        report = self._stub_report(compute=0.0, noc=2e-9)
        powers = tier_powers_from_report(report)
        # v_share is 0.0 (a float), so the whole dynamic power lands on
        # the E tiers and the total is conserved.
        v = powers[report.config.v_tier]
        static_each = (
            report.config.energy.static_power_watts / report.config.tiers
        )
        assert v == pytest.approx(static_each)
        dynamic = report.energy_per_input / report.pipeline.period
        assert sum(powers) == pytest.approx(
            report.config.energy.static_power_watts + dynamic
        )

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            tier_powers_from_report(self._stub_report(period=0.0))


class TestReportIntegration:
    def test_tier_powers_from_report(self, accelerator, ppi_workload):
        report = accelerator.evaluate(ppi_workload, use_sa=False)
        powers = tier_powers_from_report(report)
        assert len(powers) == accelerator.config.tiers
        assert all(p > 0 for p in powers)
        # Static power dominates, so the tiers should be roughly balanced.
        assert max(powers) < 2 * min(powers)

    def test_default_design_is_thermally_feasible(self, accelerator, ppi_workload):
        """The paper's 3-tier choice stays under the junction limit."""
        report = accelerator.evaluate(ppi_workload, use_sa=False)
        profile = ThermalModel().steady_state(tier_powers_from_report(report))
        assert profile.feasible
