"""Tests for capacity planning: minimal fleet meeting the SLO."""

import pytest

from repro.serve.capacity import (
    enumerate_fleets,
    meets_slo,
    plan_capacity,
    plan_fleet,
)
from repro.serve.fleet import FleetSpec
from repro.serve.scenario import (
    ServingScenario,
    run_serving_scenario,
    scenario_with,
)
from repro.serve.service import LinearServiceModel

#: A constructed workload where capacity genuinely matters: heavy load,
#: no batching amortization (base cost dominates), and a tight SLO.
SCENARIO = ServingScenario(
    qps=300.0,
    duration_seconds=2.0,
    max_batch=2,
    max_wait_seconds=0.001,
    slo_seconds=0.02,
    num_tenants=2,
    seed=0,
)
SERVICE = LinearServiceModel(base_seconds=0.006, per_node_seconds=1e-7)


class TestPlanCapacity:
    def test_returns_the_brute_force_minimum(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.feasible
        # Independently scan every fleet size: the plan must match the
        # first one that satisfies the criterion.
        minimum = None
        for n in range(1, 9):
            record = run_serving_scenario(
                scenario_with(SCENARIO, instances=n), service=SERVICE
            )
            if meets_slo(record, 0.01):
                minimum = n
                break
        assert minimum is not None
        assert plan.instances == minimum
        assert plan.instances > 1  # the workload genuinely needs a fleet

    def test_violation_rate_monotone_in_instances(self):
        rates = []
        for n in (1, 2, 4, 8):
            record = run_serving_scenario(
                scenario_with(SCENARIO, instances=n), service=SERVICE
            )
            rates.append(record.slo_violation_rate)
        assert rates == sorted(rates, reverse=True)

    def test_planned_record_meets_the_slo(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.record is not None
        assert plan.record.slo_violation_rate <= 0.01

    def test_infeasible_when_slo_below_service_floor(self):
        # Service alone takes >= 6 ms; a 1 ms SLO can never be met.
        impossible = scenario_with(SCENARIO, slo_seconds=0.001)
        plan = plan_capacity(
            impossible, max_instances=4, max_violation_rate=0.01, service=SERVICE
        )
        assert not plan.feasible
        assert plan.instances is None
        assert plan.record is None
        assert "infeasible" in plan.render()

    def test_single_instance_suffices_for_light_load(self):
        light = scenario_with(
            SCENARIO, qps=20.0, slo_seconds=0.05, max_wait_seconds=0.0
        )
        plan = plan_capacity(
            light, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.instances == 1

    def test_render_marks_the_minimum(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert "<-- minimum" in plan.render()

    def test_deterministic(self):
        a = plan_capacity(SCENARIO, max_instances=8, service=SERVICE)
        b = plan_capacity(SCENARIO, max_instances=8, service=SERVICE)
        assert a.instances == b.instances
        assert {n: r.metrics() for n, r in a.evaluated.items()} == {
            n: r.metrics() for n, r in b.evaluated.items()
        }

    def test_probes_strip_the_closed_loop_controllers(self):
        # An attached autoscaler would resize every probe (all fleet
        # sizes look identical) and admission would shed the violating
        # requests: the plan must answer the *static* open-loop question
        # regardless of the scenario's closed-loop knobs.
        closed = scenario_with(
            SCENARIO,
            autoscaler="target-util",
            admission="shed",
            queue_budget=4,
            max_instances=16,
        )
        static_plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        closed_plan = plan_capacity(
            closed, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert closed_plan.instances == static_plan.instances
        for n, record in closed_plan.evaluated.items():
            assert record.metrics() == static_plan.evaluated[n].metrics()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_instances"):
            plan_capacity(SCENARIO, max_instances=0, service=SERVICE)
        with pytest.raises(ValueError, match="max_violation_rate"):
            plan_capacity(SCENARIO, max_violation_rate=1.5, service=SERVICE)
        with pytest.raises(ValueError, match="unknown instance type"):
            plan_capacity(SCENARIO, instance_type="mega", service=SERVICE)

    def test_typed_plan_probes_single_type_fleets(self):
        plan = plan_capacity(
            SCENARIO,
            max_instances=8,
            max_violation_rate=0.01,
            service=SERVICE,
            instance_type="large",
        )
        assert plan.feasible
        record = plan.record
        assert record.fleet == f"large:{plan.instances}"
        assert record.cost_dollars > 0


class TestEnumerateFleets:
    def test_ascending_declared_cost(self):
        specs = enumerate_fleets(("small", "large"), 2)
        costs = [s.cost_rate() for s in specs]
        assert costs == sorted(costs)
        assert specs[0].render() == "small:1"  # $0.5/s is the floor

    def test_zero_count_slices_are_dropped_not_declared(self):
        # A declared-but-empty type would attract routed requests and
        # starve them; pure-large compositions must not mention small.
        specs = enumerate_fleets(("small", "large"), 1)
        assert {s.render() for s in specs} == {
            "small:1", "large:1", "small:1,large:1",
        }

    def test_max_total_caps_fleet_size(self):
        specs = enumerate_fleets(("small", "default", "large"), 3, max_total=2)
        assert all(s.total() <= 2 for s in specs)
        assert specs  # the cap leaves something to search

    def test_deterministic_order(self):
        a = [s.render() for s in enumerate_fleets(("small", "default"), 3)]
        b = [s.render() for s in enumerate_fleets(("small", "default"), 3)]
        assert a == b


class TestPlanFleet:
    def test_matches_brute_force_enumeration(self):
        # The planner's early stop must return exactly what probing
        # every composition and taking the cheapest feasible one gives.
        plan = plan_fleet(
            SCENARIO,
            candidate_types=("small", "large"),
            max_per_type=2,
            max_violation_rate=0.01,
            service=SERVICE,
        )
        best = None
        for spec in enumerate_fleets(("small", "large"), 2):
            record = run_serving_scenario(
                scenario_with(
                    SCENARIO, fleet=spec.render(), routing="size_affinity"
                ),
                service=SERVICE,
            )
            if meets_slo(record, 0.01):
                best = spec
                break
        assert (plan.fleet is None) == (best is None)
        if best is not None:
            assert plan.fleet == best.render()
            assert plan.cost_rate == pytest.approx(best.cost_rate())
            assert plan.record.slo_violation_rate <= 0.01

    def test_early_stop_skips_costlier_compositions(self):
        plan = plan_fleet(
            SCENARIO,
            candidate_types=("small", "large"),
            max_per_type=2,
            max_violation_rate=0.01,
            service=SERVICE,
        )
        total = len(enumerate_fleets(("small", "large"), 2))
        assert len(plan.evaluated) + plan.skipped == total
        if plan.feasible:
            # Everything actually probed before the winner costs less
            # or the same — nothing cheaper was left untried.
            assert all(
                FleetSpec.parse(f).cost_rate() <= plan.cost_rate
                for f in plan.evaluated
            )
            assert "<-- minimum" in plan.render()

    def test_infeasible_when_slo_below_service_floor(self):
        impossible = scenario_with(SCENARIO, slo_seconds=0.001)
        plan = plan_fleet(
            impossible,
            candidate_types=("small", "large"),
            max_per_type=1,
            service=SERVICE,
        )
        assert not plan.feasible
        assert plan.record is None
        assert plan.skipped == 0  # nothing is skipped on a full scan
        assert "infeasible" in plan.render()

    def test_deterministic(self):
        kwargs = dict(
            candidate_types=("small", "large"),
            max_per_type=2,
            service=SERVICE,
        )
        a = plan_fleet(SCENARIO, **kwargs)
        b = plan_fleet(SCENARIO, **kwargs)
        assert a.fleet == b.fleet
        assert {f: r.metrics() for f, r in a.evaluated.items()} == {
            f: r.metrics() for f, r in b.evaluated.items()
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="candidate"):
            plan_fleet(SCENARIO, candidate_types=(), service=SERVICE)
        with pytest.raises(ValueError, match="distinct"):
            plan_fleet(
                SCENARIO, candidate_types=("small", "small"), service=SERVICE
            )
        with pytest.raises(ValueError, match="max_per_type"):
            plan_fleet(SCENARIO, max_per_type=0, service=SERVICE)
        with pytest.raises(ValueError, match="max_total"):
            plan_fleet(SCENARIO, max_total=0, service=SERVICE)
        with pytest.raises(ValueError, match="unknown routing"):
            plan_fleet(SCENARIO, routing="teleport", service=SERVICE)


class TestFig11AcceptanceCriterion:
    """The ISSUE's headline: het meets the SLO cheaper than homogeneous."""

    @pytest.fixture(scope="class")
    def fig11(self):
        from repro.experiments.fig11_fleet import run_fig11

        return run_fig11(seed=0)

    def test_het_fleet_meets_the_same_slo(self, fig11):
        het = fig11.point("het-planned")
        assert het.feasible
        assert het.slo_violation_rate <= fig11.max_violation_rate
        assert het.p99_latency_seconds <= fig11.slo_seconds

    def test_het_fleet_is_strictly_cheaper_than_best_homogeneous(self, fig11):
        best = fig11.best_homogeneous
        assert best is not None and best.feasible
        het = fig11.point("het-planned")
        assert het.cost_rate < best.cost_rate
        assert fig11.savings > 0.0

    def test_small_and_default_are_structurally_infeasible(self, fig11):
        # The regime is chosen so the composition question has teeth.
        assert not fig11.point("hom-small").feasible
        assert not fig11.point("hom-default").feasible
        assert fig11.point("hom-large").feasible

    def test_planner_early_stop_did_real_work(self, fig11):
        assert fig11.compositions_skipped > 0
