"""Tests for capacity planning: minimal fleet meeting the SLO."""

import pytest

from repro.serve.capacity import meets_slo, plan_capacity
from repro.serve.scenario import (
    ServingScenario,
    run_serving_scenario,
    scenario_with,
)
from repro.serve.service import LinearServiceModel

#: A constructed workload where capacity genuinely matters: heavy load,
#: no batching amortization (base cost dominates), and a tight SLO.
SCENARIO = ServingScenario(
    qps=300.0,
    duration_seconds=2.0,
    max_batch=2,
    max_wait_seconds=0.001,
    slo_seconds=0.02,
    num_tenants=2,
    seed=0,
)
SERVICE = LinearServiceModel(base_seconds=0.006, per_node_seconds=1e-7)


class TestPlanCapacity:
    def test_returns_the_brute_force_minimum(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.feasible
        # Independently scan every fleet size: the plan must match the
        # first one that satisfies the criterion.
        minimum = None
        for n in range(1, 9):
            record = run_serving_scenario(
                scenario_with(SCENARIO, instances=n), service=SERVICE
            )
            if meets_slo(record, 0.01):
                minimum = n
                break
        assert minimum is not None
        assert plan.instances == minimum
        assert plan.instances > 1  # the workload genuinely needs a fleet

    def test_violation_rate_monotone_in_instances(self):
        rates = []
        for n in (1, 2, 4, 8):
            record = run_serving_scenario(
                scenario_with(SCENARIO, instances=n), service=SERVICE
            )
            rates.append(record.slo_violation_rate)
        assert rates == sorted(rates, reverse=True)

    def test_planned_record_meets_the_slo(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.record is not None
        assert plan.record.slo_violation_rate <= 0.01

    def test_infeasible_when_slo_below_service_floor(self):
        # Service alone takes >= 6 ms; a 1 ms SLO can never be met.
        impossible = scenario_with(SCENARIO, slo_seconds=0.001)
        plan = plan_capacity(
            impossible, max_instances=4, max_violation_rate=0.01, service=SERVICE
        )
        assert not plan.feasible
        assert plan.instances is None
        assert plan.record is None
        assert "infeasible" in plan.render()

    def test_single_instance_suffices_for_light_load(self):
        light = scenario_with(
            SCENARIO, qps=20.0, slo_seconds=0.05, max_wait_seconds=0.0
        )
        plan = plan_capacity(
            light, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert plan.instances == 1

    def test_render_marks_the_minimum(self):
        plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert "<-- minimum" in plan.render()

    def test_deterministic(self):
        a = plan_capacity(SCENARIO, max_instances=8, service=SERVICE)
        b = plan_capacity(SCENARIO, max_instances=8, service=SERVICE)
        assert a.instances == b.instances
        assert {n: r.metrics() for n, r in a.evaluated.items()} == {
            n: r.metrics() for n, r in b.evaluated.items()
        }

    def test_probes_strip_the_closed_loop_controllers(self):
        # An attached autoscaler would resize every probe (all fleet
        # sizes look identical) and admission would shed the violating
        # requests: the plan must answer the *static* open-loop question
        # regardless of the scenario's closed-loop knobs.
        closed = scenario_with(
            SCENARIO,
            autoscaler="target-util",
            admission="shed",
            queue_budget=4,
            max_instances=16,
        )
        static_plan = plan_capacity(
            SCENARIO, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        closed_plan = plan_capacity(
            closed, max_instances=8, max_violation_rate=0.01, service=SERVICE
        )
        assert closed_plan.instances == static_plan.instances
        for n, record in closed_plan.evaluated.items():
            assert record.metrics() == static_plan.evaluated[n].metrics()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_instances"):
            plan_capacity(SCENARIO, max_instances=0, service=SERVICE)
        with pytest.raises(ValueError, match="max_violation_rate"):
            plan_capacity(SCENARIO, max_violation_rate=1.5, service=SERVICE)
