"""Unit tests for the GraphSAGE extension (paper generality claim)."""

import numpy as np
import pytest
from scipy import sparse

from repro.gnn.ops import softmax_cross_entropy
from repro.gnn.sage import GraphSAGE, SAGELayer, mean_adjacency
from repro.gnn.training import ClusterGCNTrainer
from repro.graph.clustering import ClusterBatcher


class TestMeanAdjacency:
    def test_rows_sum_to_one(self, tiny_graph):
        a = mean_adjacency(tiny_graph)
        sums = np.asarray(a.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_isolated_node_row_is_zero(self):
        from repro.graph.graph import CSRGraph

        g = CSRGraph.from_edges(3, np.array([[0, 1]]))
        a = mean_adjacency(g)
        assert np.asarray(a.sum(axis=1)).ravel()[2] == 0.0

    def test_no_self_loops(self, tiny_graph):
        assert np.allclose(mean_adjacency(tiny_graph).diagonal(), 0.0)


class TestSAGELayer:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = SAGELayer(weight=rng.normal(size=(2 * 6, 4)))
        a = sparse.identity(5, format="csr")
        out = layer.forward(a, rng.normal(size=(5, 6)))
        assert out.shape == (5, 4)

    def test_identity_aggregation_semantics(self):
        """With A = I, the layer computes [h || h] @ W."""
        rng = np.random.default_rng(1)
        w = rng.normal(size=(6, 2))
        layer = SAGELayer(weight=w, activation="linear")
        h = rng.normal(size=(4, 3))
        out = layer.forward(sparse.identity(4, format="csr"), h)
        assert np.allclose(out, np.concatenate([h, h], axis=1) @ w)

    def test_rejects_odd_fan_in(self):
        with pytest.raises(ValueError, match="stack"):
            SAGELayer(weight=np.zeros((5, 2)))

    def test_backward_before_forward(self):
        layer = SAGELayer(weight=np.zeros((4, 2)))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((3, 2)))

    def test_gradient_numerical(self):
        rng = np.random.default_rng(2)
        n, din, dout = 5, 3, 4
        dense = (rng.random((n, n)) < 0.4).astype(float)
        np.fill_diagonal(dense, 0)
        deg = np.maximum(dense.sum(axis=1), 1)
        a_mean = sparse.csr_matrix(dense / deg[:, None])
        x = rng.normal(size=(n, din))
        labels = rng.integers(0, dout, size=n)
        w = rng.normal(size=(2 * din, dout)) * 0.5
        layer = SAGELayer(weight=w.copy(), activation="relu")
        out = layer.forward(a_mean, x)
        _, grad_out = softmax_cross_entropy(out, labels)
        grad_w, grad_x = layer.backward(grad_out)

        eps = 1e-6

        def loss_with(weight=None, features=None):
            probe = SAGELayer(
                weight=w if weight is None else weight, activation="relu"
            )
            loss, _ = softmax_cross_entropy(
                probe.forward(a_mean, x if features is None else features), labels
            )
            return loss

        for i in range(2 * din):
            for j in range(dout):
                bump = w.copy()
                bump[i, j] += eps
                up = loss_with(weight=bump)
                bump[i, j] -= 2 * eps
                down = loss_with(weight=bump)
                assert grad_w[i, j] == pytest.approx((up - down) / (2 * eps), abs=1e-5)
        for i in range(n):
            for j in range(din):
                bump = x.copy()
                bump[i, j] += eps
                up = loss_with(features=bump)
                bump[i, j] -= 2 * eps
                down = loss_with(features=bump)
                assert grad_x[i, j] == pytest.approx((up - down) / (2 * eps), abs=1e-5)


class TestGraphSAGEModel:
    def test_interface_matches_gcn(self):
        model = GraphSAGE(feature_dim=8, hidden_dim=6, num_classes=3, num_layers=3, seed=0)
        assert model.num_layers == 3
        assert model.layer_dims == [(16, 6), (12, 6), (12, 3)]
        assert model.num_parameters() == 16 * 6 + 12 * 6 + 12 * 3

    def test_forward(self, small_graph):
        model = GraphSAGE(
            small_graph.feature_dim, 8, small_graph.num_classes, num_layers=2, seed=0
        )
        logits = model.forward(mean_adjacency(small_graph), small_graph.features)
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    def test_trains_with_cluster_gcn_trainer(self, small_graph, small_partition):
        """The Cluster-GCN trainer is model-agnostic enough to train SAGE
        when the sub-graph operator is swapped — the paper's 'equally
        applicable to other GNNs' claim, executed."""
        model = GraphSAGE(
            small_graph.feature_dim, 16, small_graph.num_classes, num_layers=2, seed=0
        )
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=0)
        trainer = ClusterGCNTrainer(model, small_graph, batcher, lr=0.02, seed=0)
        history = trainer.fit(8)
        assert history.final_val_accuracy > 0.5

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GraphSAGE(4, 4, 2, num_layers=0)

    def test_hardware_mapping_accepts_sage_dims(self, accelerator, ppi_workload):
        """SAGE layer shapes schedule on the architecture unchanged."""
        from repro.core.traffic import GNNTrafficModel
        from repro.core.mapping import contiguous_mapping

        spec = ppi_workload.spec
        model = GraphSAGE(spec.feature_dim, spec.hidden_dim, spec.num_classes, seed=0)
        traffic = GNNTrafficModel(
            accelerator.config,
            contiguous_mapping(accelerator.config),
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            model.layer_dims,
        )
        assert len(traffic.messages()) > 0
