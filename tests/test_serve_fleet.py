"""Typed instances, fleet specs, and the heterogeneous replica pool."""

import pytest

from repro.serve.autoscale import allocate_fleet
from repro.serve.fleet import (
    INSTANCE_TYPES,
    FleetSpec,
    InstanceType,
    TypedReplicaPool,
    coerce_fleet,
    fleet_with_total,
    get_instance_type,
)


class TestInstanceType:
    def test_registry_has_the_standard_flavors(self):
        assert set(INSTANCE_TYPES) == {"small", "default", "large"}
        assert INSTANCE_TYPES["default"].service_scale == 1.0
        assert INSTANCE_TYPES["default"].cost_per_second == 1.0
        # large is faster but costlier; small the reverse.
        assert INSTANCE_TYPES["large"].service_scale < 1.0
        assert INSTANCE_TYPES["large"].cost_per_second > 1.0
        assert INSTANCE_TYPES["small"].service_scale > 1.0
        assert INSTANCE_TYPES["small"].cost_per_second < 1.0

    def test_cost_per_capacity_orders_small_cheapest(self):
        # small is the most cost-efficient per unit of work, large the
        # least — the premise of cost-weighted scale-out.
        ranked = sorted(
            INSTANCE_TYPES.values(), key=lambda t: t.cost_per_capacity
        )
        assert [t.name for t in ranked] == ["small", "default", "large"]

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType(name="")
        with pytest.raises(ValueError):
            InstanceType(name="x", tiers=0)
        with pytest.raises(ValueError):
            InstanceType(name="x", service_scale=0.0)
        with pytest.raises(ValueError):
            InstanceType(name="x", cost_per_second=0.0)
        with pytest.raises(ValueError):
            InstanceType(name="x", max_batch=-1)
        with pytest.raises(ValueError):
            InstanceType(name="x", warmup_seconds=-0.1)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown instance type"):
            get_instance_type("gpu9000")


class TestFleetSpec:
    def test_parse_render_round_trip(self):
        spec = FleetSpec.parse("small:2, large:1")
        assert spec.slices == (("small", 2), ("large", 1))
        assert spec.render() == "small:2,large:1"
        assert FleetSpec.parse(spec.render()) == spec

    def test_totals_counts_and_cost(self):
        spec = FleetSpec.parse("small:2,large:1")
        assert spec.total() == 3
        assert spec.counts() == {"small": 2, "large": 1}
        assert spec.cost_rate() == pytest.approx(2 * 0.5 + 2.5)
        assert [t.name for t in spec.types()] == ["small", "large"]

    def test_declaration_order_preserved(self):
        # Order is semantic (dispatch / allocation tie-break): no sorting.
        assert FleetSpec.parse("large:1,small:2").slices == (
            ("large", 1),
            ("small", 2),
        )

    def test_is_default_only_for_pure_default(self):
        assert FleetSpec.homogeneous("default", 3).is_default
        assert not FleetSpec.homogeneous("large", 3).is_default
        assert not FleetSpec.parse("default:1,small:1").is_default

    def test_parse_rejects_malformed_specs(self):
        for bad in ("", "  ", "small", "small:x", "small:1,small:2", "nope:1"):
            with pytest.raises(ValueError):
                FleetSpec.parse(bad)

    def test_zero_count_slice_allowed_but_empty_fleet_is_not(self):
        assert FleetSpec.parse("small:0,large:1").total() == 1
        with pytest.raises(ValueError):
            FleetSpec.parse("small:0")

    def test_coerce_fleet(self):
        assert coerce_fleet(None, 3) == FleetSpec.homogeneous("default", 3)
        assert coerce_fleet("large:2", 1) == FleetSpec.parse("large:2")
        spec = FleetSpec.parse("small:1")
        assert coerce_fleet(spec, 5) is spec
        assert coerce_fleet([("small", 2)], 0) == FleetSpec.parse("small:2")


class TestAllocateFleet:
    TYPES = (
        INSTANCE_TYPES["small"],
        INSTANCE_TYPES["default"],
        INSTANCE_TYPES["large"],
    )

    def test_identity_when_total_matches(self):
        assert allocate_fleet([2, 1, 1], 4, self.TYPES) == [2, 1, 1]

    def test_total_always_honored(self):
        for total in range(1, 12):
            counts = allocate_fleet([2, 1, 1], total, self.TYPES)
            assert sum(counts) == total
            assert all(c >= 0 for c in counts)

    def test_grow_is_proportional_with_cheap_remainder(self):
        # Doubling a 2:1:1 fleet keeps the composition exact.
        assert allocate_fleet([2, 1, 1], 8, self.TYPES) == [4, 2, 2]
        # An odd remainder lands on the most cost-efficient slice (small).
        assert allocate_fleet([2, 1, 1], 5, self.TYPES) == [3, 1, 1]

    def test_zero_weight_slices_never_receive_instances(self):
        types = (INSTANCE_TYPES["small"], INSTANCE_TYPES["large"])
        counts = allocate_fleet([0, 2], 5, types, weights=[0, 2])
        assert counts[0] == 0
        assert sum(counts) == 5

    def test_deterministic(self):
        a = allocate_fleet([1, 2, 1], 7, self.TYPES)
        assert a == allocate_fleet([1, 2, 1], 7, self.TYPES)


class TestTypedReplicaPool:
    def spec(self):
        return FleetSpec.parse("small:2,large:1")

    def test_aggregates_match_slice_sums(self):
        fleet = TypedReplicaPool(self.spec())
        assert fleet.provisioned == 3
        assert fleet.target_size == 3
        assert fleet.ready_count == 3
        assert fleet.busy_count == 0
        assert fleet.has_free()
        assert fleet.is_typed

    def test_default_fleet_is_not_typed(self):
        fleet = TypedReplicaPool(FleetSpec.homogeneous("default", 2))
        assert not fleet.is_typed
        # Pre-fleet traces used bare integer instance ids.
        assert fleet.label((0, 1)) == 1

    def test_acquire_release_by_handle(self):
        fleet = TypedReplicaPool(self.spec())
        handle = fleet.acquire(1, now=0.0)  # slice 1 = the large slice
        assert handle == (1, 0)
        assert fleet.busy_count == 1
        assert fleet.label(handle) == "large:0"
        assert fleet.release(handle, now=1.0)
        assert fleet.busy_count == 0

    def test_billing_integrates_per_type_cost(self):
        fleet = TypedReplicaPool(self.spec())
        # 2 small @ $0.5/s + 1 large @ $2.5/s, all billed for 2 s.
        assert fleet.cost_dollars(2.0) == pytest.approx(2 * 0.5 * 2 + 2.5 * 2)
        usage = {u.name: u for u in fleet.usage(2.0)}
        assert usage["small"].instance_seconds == pytest.approx(4.0)
        assert usage["large"].cost_dollars == pytest.approx(5.0)
        assert usage["small"].busy_seconds == 0.0

    def test_busy_seconds_accrue_only_while_busy(self):
        fleet = TypedReplicaPool(self.spec())
        handle = fleet.acquire(0, now=1.0)
        fleet.release(handle, now=3.0)
        usage = {u.name: u for u in fleet.usage(4.0)}
        assert usage["small"].busy_seconds == pytest.approx(2.0)
        assert usage["small"].batches == 1
        assert usage["large"].busy_seconds == 0.0

    def test_scale_out_prefers_cheap_capacity(self):
        fleet = TypedReplicaPool(self.spec())
        started = fleet.scale_to(5, now=0.0)
        assert fleet.target_size == 5
        # 3 -> 5 with weights (2, 1): both new instances are small.
        assert {
            name for name, _, _ in fleet.last_scale_detail
        } == {"small"}
        assert all(ready == 0.0 for _, ready in started)  # no warm-up

    def test_scale_in_can_empty_a_slice_but_not_the_fleet(self):
        fleet = TypedReplicaPool(self.spec())
        fleet.scale_to(1, now=0.0)
        assert fleet.target_size == 1
        with pytest.raises(ValueError):
            fleet.scale_to(0, now=0.0)

    def test_per_type_warmup_overrides_engine_default(self):
        spec = FleetSpec.parse("default:1,large:1")
        fleet = TypedReplicaPool(spec, default_warmup_seconds=0.5)
        # Both types inherit the engine default (None in the registry).
        for s in fleet.slices:
            assert s.pool.warmup_seconds == 0.5


class TestFleetWithTotal:
    def test_rescale_preserves_composition(self):
        spec = FleetSpec.parse("small:2,large:1")
        grown = fleet_with_total(spec, 6)
        assert grown.total() == 6
        assert grown.counts() == {"small": 4, "large": 2}
        shrunk = fleet_with_total(spec, 1)
        assert shrunk.total() == 1

    def test_matches_live_pool_allocation(self):
        # A statically rescaled spec and a scaled live pool agree.
        spec = FleetSpec.parse("small:2,large:1")
        fleet = TypedReplicaPool(spec)
        fleet.scale_to(6, now=0.0)
        live = {
            s.itype.name: s.pool.target_size for s in fleet.slices
        }
        assert live == fleet_with_total(spec, 6).counts()
