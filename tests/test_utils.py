"""Unit tests for shared utilities (RNG handling, units, formatting)."""

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.units import (
    GHZ,
    MHZ,
    NANO,
    PICO,
    format_seconds,
    format_si,
)


class TestRng:
    def test_int_seed_deterministic(self):
        a = rng_from_seed(7).random(5)
        b = rng_from_seed(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [c.random(8) for c in children]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_deterministic(self):
        a = [c.random(4) for c in spawn_rngs(5, 3)]
        b = [c.random(4) for c in spawn_rngs(5, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestUnits:
    def test_constants(self):
        assert MHZ == 1e6
        assert GHZ == 1e9
        assert NANO == 1e-9
        assert PICO == 1e-12

    def test_format_si_basic(self):
        assert format_si(2.5e-6, "s") == "2.5 us"
        assert format_si(3e9, "Hz") == "3 GHz"
        assert format_si(0) == "0"
        assert format_si(1.0, "J") == "1 J"

    def test_format_si_tiny(self):
        assert "p" in format_si(2e-12, "J")

    def test_format_si_negative(self):
        assert format_si(-4e-3, "s") == "-4 ms"

    def test_format_seconds_ranges(self):
        assert format_seconds(0.5) == "500 ms"
        assert format_seconds(5.0) == "5 s"
        assert format_seconds(125) == "2m 5s"
        assert format_seconds(3725) == "1h 2m 5s"

    def test_format_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
