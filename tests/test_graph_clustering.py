"""Unit tests for stochastic multi-cluster batching."""

import numpy as np
import pytest

from repro.graph.clustering import ClusterBatcher, merge_partitions


class TestMergePartitions:
    def test_merges_requested_clusters(self, small_graph, small_partition):
        batch = merge_partitions(small_graph, small_partition, (0, 1))
        expected = set(small_partition.part_nodes(0)) | set(
            small_partition.part_nodes(1)
        )
        assert set(batch.nodes.tolist()) == expected
        assert batch.subgraph.num_nodes == len(expected)

    def test_cluster_nodes_contiguous(self, small_graph, small_partition):
        """Cluster-GCN layout: each cluster's nodes occupy a contiguous
        range of the merged ordering."""
        batch = merge_partitions(small_graph, small_partition, (2, 5))
        n0 = len(small_partition.part_nodes(2))
        assert np.array_equal(batch.nodes[:n0], small_partition.part_nodes(2))
        assert np.array_equal(batch.nodes[n0:], small_partition.part_nodes(5))

    def test_recovers_between_cluster_edges(self, small_graph, small_partition):
        """The merged sub-graph keeps edges between its clusters."""
        batch = merge_partitions(
            small_graph, small_partition, tuple(range(small_partition.num_parts))
        )
        assert batch.subgraph.num_edges == small_graph.num_edges

    def test_duplicate_clusters_rejected(self, small_graph, small_partition):
        with pytest.raises(ValueError, match="duplicate"):
            merge_partitions(small_graph, small_partition, (1, 1))

    def test_features_carried(self, small_graph, small_partition):
        batch = merge_partitions(small_graph, small_partition, (0,))
        assert np.array_equal(
            batch.subgraph.features, small_graph.features[batch.nodes]
        )


class TestClusterBatcher:
    def test_num_inputs(self, small_graph, small_partition):
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=0)
        assert batcher.num_inputs == 4

    def test_epoch_covers_all_clusters(self, small_graph, small_partition):
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=0)
        seen: set[int] = set()
        for batch in batcher.epoch():
            seen.update(batch.cluster_ids)
        assert seen == set(range(8))

    def test_epoch_covers_all_nodes_when_divisible(
        self, small_graph, small_partition
    ):
        batcher = ClusterBatcher(small_graph, small_partition, 4, seed=1)
        nodes = np.concatenate([b.nodes for b in batcher.epoch()])
        assert sorted(nodes.tolist()) == list(range(small_graph.num_nodes))

    def test_epochs_reshuffle(self, small_graph, small_partition):
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=0)
        first = [b.cluster_ids for b in batcher.epoch()]
        second = [b.cluster_ids for b in batcher.epoch()]
        assert first != second  # overwhelmingly likely with 8 clusters

    def test_deterministic_per_seed(self, small_graph, small_partition):
        a = ClusterBatcher(small_graph, small_partition, 2, seed=9).epoch()
        b = ClusterBatcher(small_graph, small_partition, 2, seed=9).epoch()
        assert [x.cluster_ids for x in a] == [y.cluster_ids for y in b]

    def test_ragged_tail_dropped(self, small_graph, small_partition):
        batcher = ClusterBatcher(small_graph, small_partition, 3, seed=0)
        assert batcher.num_inputs == 2  # 8 // 3
        assert len(batcher.epoch()) == 2

    def test_average_input_size(self, small_graph, small_partition):
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=0)
        avg = batcher.average_input_size()
        assert avg == pytest.approx(small_graph.num_nodes / 4, rel=0.01)

    def test_rejects_bad_batch_size(self, small_graph, small_partition):
        with pytest.raises(ValueError):
            ClusterBatcher(small_graph, small_partition, 0)
        with pytest.raises(ValueError):
            ClusterBatcher(small_graph, small_partition, 99)
