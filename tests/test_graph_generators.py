"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_community_graph, random_features_and_labels


class TestPowerlawCommunityGraph:
    def test_hits_node_and_edge_targets(self):
        g = powerlaw_community_graph(500, 3000, num_communities=10, seed=0)
        assert g.num_nodes == 500
        assert g.num_edges == 3000

    def test_deterministic_per_seed(self):
        g1 = powerlaw_community_graph(200, 800, seed=42)
        g2 = powerlaw_community_graph(200, 800, seed=42)
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)

    def test_different_seeds_differ(self):
        g1 = powerlaw_community_graph(200, 800, seed=1)
        g2 = powerlaw_community_graph(200, 800, seed=2)
        assert not (
            np.array_equal(g1.indptr, g2.indptr)
            and np.array_equal(g1.indices, g2.indices)
        )

    def test_community_attribute_attached(self):
        g = powerlaw_community_graph(300, 1200, num_communities=6, seed=0)
        assert g.community.shape == (300,)
        assert g.community.max() < 6

    def test_low_mixing_clusters_edges(self):
        clustered = powerlaw_community_graph(
            600, 4000, num_communities=6, mixing=0.02, seed=0
        )
        mixed = powerlaw_community_graph(
            600, 4000, num_communities=6, mixing=0.9, seed=0
        )
        def cross_fraction(g):
            src = np.repeat(np.arange(g.num_nodes), g.degrees)
            cross = g.community[src] != g.community[g.indices]
            return cross.mean()
        assert cross_fraction(clustered) < cross_fraction(mixed) / 2

    def test_powerlaw_has_hubs(self):
        g = powerlaw_community_graph(1000, 5000, exponent=2.1, seed=0)
        degrees = np.sort(g.degrees)[::-1]
        # Heavy tail: the top node far exceeds the average degree.
        assert degrees[0] > 3 * g.average_degree

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError, match="two nodes"):
            powerlaw_community_graph(1, 0)

    def test_rejects_bad_mixing(self):
        with pytest.raises(ValueError, match="mixing"):
            powerlaw_community_graph(10, 5, mixing=1.5)

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError, match="at most"):
            powerlaw_community_graph(10, 100)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            powerlaw_community_graph(10, 5, exponent=0.9)

    def test_rejects_zero_communities(self):
        with pytest.raises(ValueError, match="community"):
            powerlaw_community_graph(10, 5, num_communities=0)


class TestFeaturesAndLabels:
    def test_shapes(self):
        g = powerlaw_community_graph(100, 400, num_communities=5, seed=0)
        g = random_features_and_labels(g, feature_dim=12, num_classes=4, seed=0)
        assert g.features.shape == (100, 12)
        assert g.labels.shape == (100,)
        assert g.labels.max() < 4

    def test_labels_follow_communities(self):
        g = powerlaw_community_graph(100, 400, num_communities=3, seed=0)
        g = random_features_and_labels(g, feature_dim=8, num_classes=3, seed=0)
        assert np.array_equal(g.labels, np.asarray(g.community) % 3)

    def test_features_correlate_with_labels(self):
        g = powerlaw_community_graph(400, 1600, num_communities=4, seed=0)
        g = random_features_and_labels(g, 16, 4, noise=0.3, seed=0)
        # Class centroids should be far apart relative to in-class spread.
        centroids = np.stack(
            [g.features[g.labels == c].mean(axis=0) for c in range(4)]
        )
        spread = g.features.std()
        gaps = np.linalg.norm(centroids[0] - centroids[1])
        assert gaps > spread

    def test_deterministic(self):
        g = powerlaw_community_graph(50, 200, seed=0)
        a = random_features_and_labels(g, 4, 3, seed=5)
        b = random_features_and_labels(g, 4, 3, seed=5)
        assert np.array_equal(a.features, b.features)

    def test_without_community_uses_components(self, tiny_graph):
        out = random_features_and_labels(tiny_graph, 4, 2, seed=0)
        assert out.labels.shape == (8,)

    def test_rejects_bad_dims(self, tiny_graph):
        with pytest.raises(ValueError):
            random_features_and_labels(tiny_graph, 0, 3)
        with pytest.raises(ValueError):
            random_features_and_labels(tiny_graph, 3, 0)
