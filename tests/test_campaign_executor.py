"""Tests for the campaign executor: caching, parallelism, determinism.

The scenarios here use PPI at scale 0.05 (the cheapest real workload) and
one shared module-scoped first run, so the whole file costs only a
handful of evaluations.
"""

import json

import pytest

from repro.campaign.executor import ProgressEvent, run_campaign, run_scenarios
from repro.campaign.results import CampaignResult, ScenarioRecord
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import ResultStore

SCENARIOS = [
    Scenario(dataset="ppi", scale=0.05, tiers=2, label="2-tier"),
    Scenario(dataset="ppi", scale=0.05, tiers=3, label="3-tier"),
    Scenario(dataset="ppi", scale=0.05, tiers=3, multicast=False, label="3-tier-uni"),
]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ResultStore(tmp_path_factory.mktemp("repro_cache"))


@pytest.fixture(scope="module")
def first_run(store):
    return run_scenarios(SCENARIOS, store=store, name="exec-test")


class TestCaching:
    def test_first_run_evaluates_everything(self, first_run, store):
        assert first_run.misses == len(SCENARIOS)
        assert first_run.hits == 0
        assert not any(r.cached for r in first_run.records)
        assert len(store) == len(SCENARIOS)

    def test_second_run_is_pure_cache_hits(self, first_run, store, monkeypatch):
        # Prove "zero re-evaluations": any evaluation would blow up.
        def boom(*args, **kwargs):
            raise AssertionError("cache hit expected; evaluator was called")

        monkeypatch.setattr("repro.campaign.executor.evaluate_scenario", boom)
        second = run_scenarios(SCENARIOS, store=store, name="exec-test")
        assert second.hits == len(SCENARIOS)
        assert second.misses == 0
        assert all(r.cached for r in second.records)
        assert [r.metrics() for r in second.records] == [
            r.metrics() for r in first_run.records
        ]
        assert [r.key for r in second.records] == [r.key for r in first_run.records]

    def test_no_store_never_persists(self, tmp_path):
        result = run_scenarios(SCENARIOS[:1], store=None, name="volatile")
        assert result.misses == 1
        # And an unrelated store directory stays empty.
        assert len(ResultStore(tmp_path)) == 0

    def test_cache_shared_across_campaign_shapes(self, first_run, store, monkeypatch):
        """A CampaignSpec naming the same points reuses the sweep's records."""

        def boom(*args, **kwargs):
            raise AssertionError("cross-campaign cache hit expected")

        monkeypatch.setattr("repro.campaign.executor.evaluate_scenario", boom)
        spec = CampaignSpec(
            name="reshaped",
            base=Scenario(dataset="ppi", scale=0.05),
            axes=(("tiers", (2, 3)),),
        )
        result = run_campaign(spec, store=store)
        assert result.hits == 2 and result.misses == 0
        # Cached records carry the *current* campaign's labels.
        assert [r.label for r in result.records] == [
            s.display_label for s in spec.scenarios()
        ]

    def test_records_in_scenario_order(self, first_run):
        assert [r.label for r in first_run.records] == [
            s.label for s in SCENARIOS
        ]


class TestParallel:
    def test_parallel_matches_serial(self, first_run, tmp_path):
        parallel = run_scenarios(
            SCENARIOS,
            jobs=2,
            store=ResultStore(tmp_path / "fresh"),
            name="exec-test",
        )
        assert parallel.misses == len(SCENARIOS)
        assert [r.label for r in parallel.records] == [
            r.label for r in first_run.records
        ]
        assert [r.metrics() for r in parallel.records] == [
            r.metrics() for r in first_run.records
        ]
        assert [r.key for r in parallel.records] == [
            r.key for r in first_run.records
        ]

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            run_scenarios(SCENARIOS, jobs=0)


class TestProgressEvents:
    def test_cache_hits_stream_terminal_events_only(self, first_run, store):
        events = []
        run_scenarios(SCENARIOS, store=store, on_event=events.append)
        assert [e.kind for e in events] == ["cache-hit"] * len(SCENARIOS)
        assert [e.done for e in events] == [1, 2, 3]
        assert events[-1].hits == len(SCENARIOS)
        assert events[-1].computed == 0
        assert all(e.eta_seconds is None for e in events)

    def test_computed_runs_announce_then_finish(self):
        events = []
        run_scenarios(SCENARIOS[:2], store=None, on_event=events.append)
        assert [e.kind for e in events] == [
            "started", "finished", "started", "finished",
        ]
        # The first finish projects the remaining uncached work; the last
        # one has nothing left to project.
        assert events[1].eta_seconds is not None
        assert events[1].eta_seconds > 0
        assert events[3].eta_seconds is None
        assert events[3].computed == 2
        assert all(e.total == 2 for e in events)
        assert [e.label for e in events] == [
            "2-tier", "2-tier", "3-tier", "3-tier",
        ]

    def test_event_and_string_progress_agree(self, first_run, store):
        lines, events = [], []
        run_scenarios(
            SCENARIOS, store=store, progress=lines.append,
            on_event=events.append,
        )
        assert lines == [e.render() for e in events]

    def test_render_formats(self):
        started = ProgressEvent(
            kind="started", index=0, total=4, done=0, label="point",
        )
        assert started.render() == "[0/4] point  (running)"
        hit = ProgressEvent(
            kind="cache-hit", index=0, total=4, done=1, label="point", hits=1,
        )
        assert hit.render() == "[1/4] point  (cache hit)"
        finished = ProgressEvent(
            kind="finished", index=1, total=4, done=2, label="point",
            eval_seconds=1.26, computed=1, eta_seconds=12.4,
        )
        assert finished.render() == "[2/4] point  (1.3s, eta 12s)"


class TestProgressAndExport:
    def test_progress_reports_every_scenario(self, store):
        lines = []
        run_scenarios(SCENARIOS, store=store, progress=lines.append)
        assert len(lines) == len(SCENARIOS)
        assert all("cache hit" in line for line in lines)

    def test_json_export_roundtrip(self, first_run, tmp_path):
        path = first_run.to_json(tmp_path / "out" / "campaign.json")
        payload = json.loads(path.read_text())
        assert payload["campaign"] == "exec-test"
        assert payload["num_scenarios"] == len(SCENARIOS)
        reloaded = CampaignResult.from_json(path)
        assert [r.metrics() for r in reloaded.records] == [
            r.metrics() for r in first_run.records
        ]

    def test_csv_export_one_row_per_scenario(self, first_run, tmp_path):
        import csv

        path = first_run.to_csv(tmp_path / "out" / "campaign.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(SCENARIOS)
        assert rows[0]["label"] == "2-tier"
        assert float(rows[0]["epoch_seconds"]) > 0
        assert {"dataset", "tiers", "multicast", "edp"} <= set(rows[0])

    def test_table_renders(self, first_run):
        text = first_run.table().render()
        assert "exec-test" in text and "2-tier" in text

    def test_record_roundtrip_preserves_metrics(self, first_run):
        record = first_run.records[0]
        rebuilt = ScenarioRecord.from_dict(record.to_dict(), cached=True)
        assert rebuilt.metrics() == record.metrics()
        assert rebuilt.cached
