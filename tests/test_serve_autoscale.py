"""Tests for the autoscaler policies and the dynamic replica pool.

The headline assertion reproduces the PR's acceptance criterion: on the
bursty MMPP workload, the target-utilization autoscaler meets the same
p99 SLO as static peak provisioning while spending at least 20% fewer
instance-seconds (deterministic from the seed).
"""

import pytest

from repro.serve.arrivals import MMPPArrivals, TenantMix
from repro.serve.autoscale import (
    AUTOSCALERS,
    FleetSnapshot,
    QueueDepthPIDAutoscaler,
    TargetUtilizationAutoscaler,
    make_autoscaler,
)
from repro.serve.engine import ReplicaPool, ServingEngine
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import LinearServiceModel


def snapshot(now=1.0, provisioned=2, ready=2, busy=0, warming=0,
             queue_depth=0, utilization=0.0):
    return FleetSnapshot(
        now=now, provisioned=provisioned, ready=ready, busy=busy,
        warming=warming, queue_depth=queue_depth, utilization=utilization,
    )


def engine(instances=1, autoscaler=None, warmup=0.0, max_batch=4,
           max_wait=0.002, slo=0.05):
    return ServingEngine(
        scheduler=BatchingScheduler(max_batch=max_batch, max_wait_seconds=max_wait),
        service=LinearServiceModel(base_seconds=0.004, per_node_seconds=2e-6),
        instances=instances,
        slo_seconds=slo,
        autoscaler=autoscaler,
        warmup_seconds=warmup,
    )


class TestReplicaPool:
    def test_initial_fleet_is_ready(self):
        pool = ReplicaPool(3, warmup_seconds=0.5)
        assert pool.provisioned == pool.ready_count == 3
        assert pool.warming_count == 0

    def test_acquire_release_cycle(self):
        pool = ReplicaPool(2)
        a = pool.acquire()
        assert pool.busy_count == 1 and pool.ready_count == 2
        assert pool.release(a) is True
        assert pool.busy_count == 0

    def test_scale_out_warms_then_serves(self):
        pool = ReplicaPool(1, warmup_seconds=0.1)
        started = pool.scale_to(3, now=1.0)
        assert [(i, t) for i, t in started] == [(1, 1.1), (2, 1.1)]
        assert pool.provisioned == 3 and pool.ready_count == 1
        assert pool.warmed(1) is True
        assert pool.ready_count == 2

    def test_scale_out_without_warmup_is_immediate(self):
        pool = ReplicaPool(1, warmup_seconds=0.0)
        started = pool.scale_to(2, now=1.0)
        assert started == [(1, 1.0)]
        assert pool.ready_count == 2

    def test_scale_in_cancels_warming_first(self):
        pool = ReplicaPool(1, warmup_seconds=0.1)
        pool.scale_to(3, now=0.0)
        pool.scale_to(1, now=0.05)
        assert pool.provisioned == 1
        # The cancelled warm-up completion is a no-op.
        assert pool.warmed(2) is False

    def test_scale_in_removes_idle_then_drains_busy(self):
        pool = ReplicaPool(3)
        first = pool.acquire()
        second = pool.acquire()
        pool.scale_to(1, now=0.0)
        # The idle instance left immediately; one busy instance still
        # bills until it finishes, then retires instead of rejoining.
        assert pool.provisioned == 2 and pool.target_size == 1
        released = [pool.release(first), pool.release(second)]
        assert sorted(released) == [False, True]
        assert pool.provisioned == 1

    def test_scale_out_rescues_draining_instances(self):
        pool = ReplicaPool(2)
        first = pool.acquire()
        second = pool.acquire()
        pool.scale_to(1, now=0.0)   # one busy instance marked to retire
        started = pool.scale_to(2, now=0.1)
        assert started == []        # un-retired, nothing new provisioned
        assert pool.release(first) is True
        assert pool.release(second) is True
        assert pool.provisioned == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaPool(0)
        with pytest.raises(ValueError):
            ReplicaPool(1, warmup_seconds=-1.0)
        with pytest.raises(ValueError):
            ReplicaPool(1).scale_to(0, now=0.0)


class TestPolicies:
    def test_registry(self):
        assert set(AUTOSCALERS) == {"target-util", "queue-pid"}
        assert isinstance(make_autoscaler("target-util"),
                          TargetUtilizationAutoscaler)
        with pytest.raises(ValueError, match="unknown autoscaler"):
            make_autoscaler("magic")

    def test_clamps(self):
        policy = TargetUtilizationAutoscaler(
            target=0.5, min_instances=2, max_instances=4
        )
        grow = policy.decide(snapshot(provisioned=4, ready=4, busy=4,
                                      utilization=1.0, queue_depth=100))
        assert grow == 4    # already at the ceiling
        shrink = policy.decide(snapshot(provisioned=2, ready=2, utilization=0.0))
        assert shrink == 2  # already at the floor

    def test_target_util_scales_with_utilization(self):
        policy = TargetUtilizationAutoscaler(target=0.5, max_instances=16)
        want = policy.decide(snapshot(provisioned=4, ready=4, busy=4,
                                      utilization=1.0))
        assert want == 8    # ceil(4 * 1.0 / 0.5)

    def test_target_util_queue_override(self):
        policy = TargetUtilizationAutoscaler(
            target=0.9, max_instances=16, queue_headroom=4
        )
        want = policy.decide(snapshot(provisioned=2, ready=2, busy=2,
                                      utilization=0.5, queue_depth=16))
        assert want == 6    # ready + ceil(16 / 4)

    def test_target_util_warming_counts_toward_backlog(self):
        policy = TargetUtilizationAutoscaler(
            target=0.9, max_instances=16, queue_headroom=4
        )
        want = policy.decide(snapshot(provisioned=6, ready=2, busy=2,
                                      warming=4, utilization=0.5,
                                      queue_depth=16))
        assert want == 6    # the 4 warming instances already cover it

    def test_scale_in_cooldown_suppresses_flapping(self):
        policy = TargetUtilizationAutoscaler(
            target=0.5, max_instances=8, scale_in_cooldown_seconds=1.0
        )
        assert policy.decide(snapshot(now=0.5, provisioned=2, ready=2, busy=2,
                                      utilization=1.0)) == 4
        # Immediately after the scale-out, an idle reading may not shrink.
        assert policy.decide(snapshot(now=0.6, provisioned=4, ready=4,
                                      utilization=0.0)) == 4
        assert policy.decide(snapshot(now=1.6, provisioned=4, ready=4,
                                      utilization=0.0)) == 1

    def test_pid_is_deterministic_and_resettable(self):
        def run(policy):
            out = []
            for i, depth in enumerate((0, 8, 16, 8, 0, 0)):
                out.append(policy.decide(snapshot(
                    now=0.1 * (i + 1), provisioned=2, ready=2,
                    queue_depth=depth,
                )))
            return out

        policy = QueueDepthPIDAutoscaler(target=2.0, max_instances=16,
                                         scale_in_cooldown_seconds=0.0)
        first = run(policy)
        policy.reset()
        assert run(policy) == first
        assert max(first) > 2   # overload pushed it to grow

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetUtilizationAutoscaler(target=1.5)
        with pytest.raises(ValueError):
            TargetUtilizationAutoscaler(min_instances=0)
        with pytest.raises(ValueError):
            TargetUtilizationAutoscaler(min_instances=4, max_instances=2)
        with pytest.raises(ValueError):
            QueueDepthPIDAutoscaler(kp=-1.0)
        with pytest.raises(ValueError):
            QueueDepthPIDAutoscaler(integral_limit=0.0)


class TestEngineAutoscaling:
    def bursty(self, qps=250.0, horizon=3.0, seed=1):
        return MMPPArrivals(qps, mix=TenantMix.uniform(2), seed=seed).generate(
            horizon
        )

    def test_fleet_grows_under_burst_and_shrinks_after(self):
        policy = TargetUtilizationAutoscaler(target=0.6, max_instances=8)
        report = engine(instances=1, autoscaler=policy, warmup=0.01).run(
            requests=self.bursty(), horizon_seconds=3.0
        )
        stats = report.autoscale
        assert stats is not None and stats.policy == "target-util"
        assert stats.peak_instances > 1
        assert stats.scale_out_events > 0
        assert stats.scale_in_events > 0
        assert stats.min_instances >= 1
        assert report.completed == report.offered

    def test_instance_seconds_static_fleet_identity(self):
        report = engine(instances=3).run(
            requests=self.bursty(qps=100.0), horizon_seconds=3.0
        )
        assert report.instance_seconds == pytest.approx(
            3 * report.makespan_seconds, rel=1e-9
        )
        assert report.peak_instances == 3
        assert report.autoscale is None

    def test_autoscaled_run_is_deterministic(self):
        def go():
            policy = TargetUtilizationAutoscaler(target=0.6, max_instances=8)
            return engine(instances=1, autoscaler=policy, warmup=0.01).run(
                requests=self.bursty(), horizon_seconds=3.0
            )

        assert go() == go()

    def test_pinned_band_matches_static_fleet(self):
        # min == max == N: the policy can never move, so the run must be
        # identical to a static N-instance fleet.
        policy = TargetUtilizationAutoscaler(
            target=0.6, min_instances=2, max_instances=2
        )
        requests = self.bursty(qps=150.0)
        dynamic = engine(instances=2, autoscaler=policy).run(
            requests=list(requests), horizon_seconds=3.0
        )
        static = engine(instances=2).run(
            requests=list(requests), horizon_seconds=3.0
        )
        assert dynamic.latency == static.latency
        assert dynamic.instance_seconds == pytest.approx(
            static.instance_seconds, rel=1e-9
        )
        assert dynamic.autoscale.events == ()

    def test_utilization_stays_bounded(self):
        policy = QueueDepthPIDAutoscaler(target=1.0, max_instances=8)
        report = engine(instances=1, autoscaler=policy, warmup=0.02).run(
            requests=self.bursty(), horizon_seconds=3.0
        )
        assert 0.0 < report.utilization <= 1.0
        assert report.instance_seconds > 0.0

    def test_warmup_delays_capacity(self):
        # Identical workloads; a long warm-up must not serve requests
        # faster than an instantaneous one.
        def p99(warmup):
            policy = TargetUtilizationAutoscaler(target=0.5, max_instances=8)
            return engine(
                instances=1, autoscaler=policy, warmup=warmup
            ).run(
                requests=self.bursty(qps=400.0, horizon=1.5),
                horizon_seconds=1.5,
            ).latency.p99

        assert p99(0.3) >= p99(0.0)


class TestAcceptanceCriterion:
    """The ISSUE's headline numbers, pinned as a deterministic test."""

    @pytest.fixture(scope="class")
    def fig10(self):
        from repro.experiments.fig10_autoscale import run_fig10

        return run_fig10(seed=0)

    def test_autoscaler_meets_static_peak_p99_slo(self, fig10):
        static = fig10.point("static-peak")
        auto = fig10.point("autoscale-util")
        assert static.meets_slo
        assert auto.meets_slo
        assert auto.p99_latency_seconds <= fig10.slo_seconds

    def test_autoscaler_saves_at_least_20_percent(self, fig10):
        assert fig10.savings >= 0.20

    def test_static_min_underprovisioning_misses_the_slo(self, fig10):
        # The floor alone cannot absorb the burst: the comparison is
        # meaningful only if under-provisioning actually fails.
        assert not fig10.point("static-min").meets_slo


class TestSweepAutoscalerTargets:
    def test_records_in_target_order(self):
        from repro.core.dse import sweep_autoscaler_targets

        records = sweep_autoscaler_targets(
            [0.5, 0.9], duration_seconds=0.5, qps=100.0, max_instances=4
        )
        assert [r.scenario["autoscale_target"] for r in records] == [0.5, 0.9]
        assert all(r.scenario["autoscaler"] == "target-util" for r in records)

    def test_validation(self):
        from repro.core.dse import sweep_autoscaler_targets

        with pytest.raises(ValueError):
            sweep_autoscaler_targets([])
        with pytest.raises(ValueError):
            sweep_autoscaler_targets([-0.5])
