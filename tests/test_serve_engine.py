"""Tests for the discrete-event serving engine and its SLO analytics."""

import pytest

from repro.serve.arrivals import ClosedLoopPool, PoissonArrivals, Request, TenantMix
from repro.serve.engine import ServingEngine, ServingReport
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import AcceleratorServiceModel, LinearServiceModel


def engine(max_batch=4, max_wait=0.002, instances=2, slo=0.05, policy="fifo",
           base=0.002, per_node=1e-6):
    return ServingEngine(
        scheduler=BatchingScheduler(
            max_batch=max_batch, max_wait_seconds=max_wait, policy=policy
        ),
        service=LinearServiceModel(base_seconds=base, per_node_seconds=per_node),
        instances=instances,
        slo_seconds=slo,
    )


def workload(qps=200.0, horizon=2.0, seed=0, tenants=2):
    return PoissonArrivals(
        qps, mix=TenantMix.uniform(tenants), seed=seed
    ).generate(horizon)


class TestOpenLoop:
    def test_everything_admitted_is_served(self):
        requests = workload()
        report = engine().run(requests=requests, horizon_seconds=2.0)
        assert report.offered == len(requests)
        assert report.completed == len(requests)
        assert report.latency.count == len(requests)

    def test_report_internal_consistency(self):
        report = engine().run(requests=workload(), horizon_seconds=2.0)
        assert report.latency.p50 <= report.latency.p95 <= report.latency.p99
        assert report.latency.p99 <= report.latency.max
        assert 0.0 < report.utilization <= 1.0
        assert 0.0 <= report.slo_violation_rate <= 1.0
        assert report.mean_batch_size >= 1.0
        assert report.peak_queue_depth >= 1
        assert sum(t.completed for t in report.tenants.values()) == report.completed
        assert report.makespan_seconds >= max(r.arrival_time for r in workload())

    def test_latency_includes_queueing_and_service(self):
        # A single request: waits out the deadline, then is served alone.
        request = Request(tenant="t", graph_size=1000, arrival_time=0.5)
        report = engine(max_wait=0.004).run(requests=[request])
        expected = 0.004 + 0.002 + 1e-6 * 1000
        assert report.latency.max == pytest.approx(expected, abs=1e-9)

    def test_stale_timeouts_do_not_inflate_makespan(self):
        # With max_batch=1 the lone request dispatches immediately at
        # arrival; its armed TIMEOUT fires later as a no-op and must not
        # stretch the throughput/utilization window.
        request = Request(tenant="t", graph_size=1000, arrival_time=0.5)
        report = engine(max_batch=1, max_wait=0.1).run(requests=[request])
        service = 0.002 + 1e-6 * 1000
        assert report.makespan_seconds == pytest.approx(0.5 + service)
        assert report.throughput_qps == pytest.approx(1.0 / (0.5 + service))

    def test_deterministic_for_fixed_seed(self):
        a = engine().run(requests=workload(seed=3), horizon_seconds=2.0)
        b = engine().run(requests=workload(seed=3), horizon_seconds=2.0)
        assert a == b

    def test_batching_beats_no_batching_under_load(self):
        # Base cost dominates: batching amortizes it, no-batching saturates.
        requests = workload(qps=800.0, horizon=1.0)
        batched = engine(max_batch=16).run(requests=requests, horizon_seconds=1.0)
        serial = engine(max_batch=1).run(requests=requests, horizon_seconds=1.0)
        assert batched.latency.p99 < serial.latency.p99
        assert batched.throughput_qps > serial.throughput_qps

    def test_more_instances_lower_latency_under_load(self):
        requests = workload(qps=900.0, horizon=1.0)
        few = engine(instances=1).run(requests=requests, horizon_seconds=1.0)
        many = engine(instances=4).run(requests=requests, horizon_seconds=1.0)
        assert many.latency.p99 <= few.latency.p99
        assert many.mean_queue_depth <= few.mean_queue_depth

    def test_overload_grows_the_tail(self):
        light = engine().run(requests=workload(qps=50.0), horizon_seconds=2.0)
        heavy = engine().run(requests=workload(qps=3000.0), horizon_seconds=2.0)
        assert heavy.latency.p99 > light.latency.p99
        assert heavy.slo_violation_rate >= light.slo_violation_rate

    def test_requests_after_horizon_dropped(self):
        requests = [
            Request(tenant="t", graph_size=10, arrival_time=0.1, request_id=0),
            Request(tenant="t", graph_size=10, arrival_time=5.0, request_id=1),
        ]
        report = engine().run(requests=requests, horizon_seconds=1.0)
        assert report.offered == 1
        assert report.completed == 1

    def test_empty_workload(self):
        report = engine().run(requests=[], horizon_seconds=1.0)
        assert report.completed == 0
        assert report.utilization == 0.0
        assert report.latency.count == 0

    def test_per_tenant_split(self):
        report = engine().run(requests=workload(tenants=3), horizon_seconds=2.0)
        assert set(report.tenants) == {"tenant-0", "tenant-1", "tenant-2"}
        for tenant in report.tenants.values():
            assert tenant.completed == tenant.latency.count > 0


class TestClosedLoop:
    def test_runs_to_completion(self):
        pool = ClosedLoopPool(num_clients=3, think_seconds=0.01, seed=0)
        report = engine().run(closed_loop=pool, horizon_seconds=1.0)
        assert report.completed > 0
        assert report.completed == report.latency.count

    def test_in_flight_bounded_by_clients(self):
        pool = ClosedLoopPool(num_clients=2, think_seconds=0.0, seed=0)
        report = engine(max_batch=8).run(closed_loop=pool, horizon_seconds=0.5)
        # With 2 clients, at most 2 requests can ever be queued at once.
        assert report.peak_queue_depth <= 2

    def test_deterministic(self):
        a = engine().run(
            closed_loop=ClosedLoopPool(num_clients=3, seed=1), horizon_seconds=0.5
        )
        b = engine().run(
            closed_loop=ClosedLoopPool(num_clients=3, seed=1), horizon_seconds=0.5
        )
        assert a == b

    def test_needs_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            engine().run(closed_loop=ClosedLoopPool())


class TestValidation:
    def test_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            engine().run()
        with pytest.raises(ValueError, match="exactly one"):
            engine().run(requests=[], closed_loop=ClosedLoopPool())

    def test_engine_parameters(self):
        with pytest.raises(ValueError, match="instance"):
            engine(instances=0)
        with pytest.raises(ValueError, match="SLO"):
            engine(slo=0.0)


class TestRender:
    def test_report_mentions_the_slo_metrics(self):
        report = engine().run(requests=workload(), horizon_seconds=2.0)
        text = report.render()
        assert "p50" in text and "p95" in text and "p99" in text
        assert "violation rate" in text
        assert "tenant-0" in text

    def test_report_type(self):
        assert isinstance(
            engine().run(requests=workload(), horizon_seconds=2.0), ServingReport
        )


class TestAcceleratorServiceModel:
    def test_calibrates_once_and_memoizes_by_shape(self):
        model = AcceleratorServiceModel(dataset="ppi", scale=0.05, seed=0)
        a = model.batch_service_seconds((100, 200))
        b = model.batch_service_seconds((200, 100))  # same multiset
        assert a == b
        assert (100, 200) in model._memo and len(model._memo) == 1

    def test_service_scales_with_batch_and_size(self):
        model = AcceleratorServiceModel(dataset="ppi", scale=0.05, seed=0)
        one = model.batch_service_seconds((500,))
        two = model.batch_service_seconds((500, 500))
        big = model.batch_service_seconds((2000,))
        assert two > one  # more requests occupy the pipeline longer
        assert big > one  # larger graphs stretch the period
        # Marginal cost of the second request is one scaled period, far
        # less than a whole second batch (that's what batching buys).
        assert two - one < one

    def test_matches_the_pipeline_numbers(self):
        # One reference-sized request = pipeline fill + exactly one period.
        model = AcceleratorServiceModel(dataset="ppi", scale=0.05, seed=0)
        n = model.reference_nodes
        assert model.batch_service_seconds((n,)) == pytest.approx(
            model.fill_seconds + model.period_seconds
        )

    def test_rejects_bad_batches(self):
        model = AcceleratorServiceModel()
        with pytest.raises(ValueError, match="at least one request"):
            model.batch_service_seconds(())
        with pytest.raises(ValueError, match="positive"):
            model.batch_service_seconds((0,))


class TestCLISmoke:
    def test_serve_command_reports_percentiles(self, capsys):
        from repro.__main__ import main

        main([
            "serve", "--qps", "30", "--duration", "0.5", "--instances", "1",
            "--no-cache",
        ])
        out = capsys.readouterr().out
        assert "p99" in out
        assert "violation rate" in out
        assert "tenant-0" in out
