"""Engine-level telemetry tests: traces, metrics, burn rate, end to end.

One overloaded MMPP scenario with autoscaling and shedding drives most of
the file (module-scoped, so it simulates once); the assertions cover the
trace round-trip invariants the ISSUE pins — lifecycle span ordering,
monotonic timestamps, per-request completeness — plus registry totals,
the sampled fleet series, burn-rate surfacing, and the zero-impact
guarantee: telemetry must never change what the engine measures.
"""

import json

import pytest

from repro.obs import (
    SPAN_ADMIT,
    SPAN_ARRIVE,
    SPAN_DEPART,
    SPAN_DISPATCH,
    SPAN_ENQUEUE,
    SPAN_SHED,
    SPAN_TARPIT,
    TERMINAL_SPANS,
    MemoryTraceRecorder,
    MetricRegistry,
    NullRecorder,
    Sampler,
)
from repro.serve.scenario import ServingScenario, simulate_serving_scenario
from repro.serve.scenario import ServingRecord

SCENARIO = ServingScenario(
    arrival="mmpp",
    qps=400.0,
    duration_seconds=0.4,
    instances=1,
    autoscaler="target-util",
    max_instances=4,
    admission="shed",
    queue_budget=16,
    seed=3,
)

LIFECYCLE_ORDER = {
    SPAN_ARRIVE: 0, SPAN_TARPIT: 1, SPAN_SHED: 2, SPAN_ADMIT: 2,
    SPAN_ENQUEUE: 3, SPAN_DISPATCH: 4, SPAN_DEPART: 5,
}


@pytest.fixture(scope="module")
def traced_run():
    recorder = MemoryTraceRecorder(sample="all")
    registry = MetricRegistry()
    sampler = Sampler(interval_seconds=SCENARIO.duration_seconds / 20.0)
    report = simulate_serving_scenario(
        SCENARIO, recorder=recorder, registry=registry, sampler=sampler
    )
    return report, recorder, registry, sampler


class TestTraceRoundTrip:
    """Satellite: export, re-read, and pin the lifecycle invariants."""

    def test_exported_jsonl_reproduces_the_spans(self, traced_run, tmp_path):
        _, recorder, _, _ = traced_run
        path = recorder.export_jsonl(tmp_path / "trace.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == recorder.spans()
        assert len(rows) > 100  # an overloaded run has a real trace

    def test_seq_is_a_global_emission_order(self, traced_run):
        _, recorder, _, _ = traced_run
        seqs = [s["seq"] for s in recorder.spans()]
        assert seqs == list(range(len(seqs)))

    def test_timestamps_are_monotonic_in_emission_order(self, traced_run):
        _, recorder, _, _ = traced_run
        times = [s["time"] for s in recorder.spans()]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_every_request_follows_the_lifecycle_order(self, traced_run):
        _, recorder, _, _ = traced_run
        for request_id in recorder.request_ids():
            spans = recorder.spans_for(request_id)
            ranks = [LIFECYCLE_ORDER[s["kind"]] for s in spans]
            # Tarpitted requests loop arrive -> tarpit; within one pass
            # the rank sequence never goes backwards except at a retry,
            # which restarts from arrive.
            for a, b in zip(ranks, ranks[1:]):
                assert b >= a or b == LIFECYCLE_ORDER[SPAN_ARRIVE]
            times = [s["time"] for s in spans]
            assert all(x <= y for x, y in zip(times, times[1:]))

    def test_every_request_reaches_exactly_one_terminal_span(self, traced_run):
        report, recorder, _, _ = traced_run
        terminal_counts = {
            request_id: sum(
                1 for s in recorder.spans_for(request_id)
                if s["kind"] in TERMINAL_SPANS
            )
            for request_id in recorder.request_ids()
        }
        assert all(count == 1 for count in terminal_counts.values())
        departs = sum(
            1 for s in recorder.spans() if s["kind"] == SPAN_DEPART
        )
        sheds = sum(1 for s in recorder.spans() if s["kind"] == SPAN_SHED)
        assert departs == report.completed
        assert sheds == (report.admission.shed if report.admission else 0)

    def test_departs_carry_latency_and_verdict(self, traced_run):
        report, recorder, _, _ = traced_run
        violated = 0
        for span in recorder.spans():
            if span["kind"] == SPAN_DEPART:
                assert span["latency"] > 0
                violated += span["violated"]
        assert violated / report.completed == pytest.approx(
            report.slo_violation_rate
        )

    def test_fleet_spans_record_the_scaling_story(self, traced_run):
        report, recorder, _, _ = traced_run
        scale_spans = [s for s in recorder.spans() if s["kind"] == "scale"]
        assert report.autoscale is not None
        assert len(scale_spans) == len(report.autoscale.events)
        for span, event in zip(scale_spans, report.autoscale.events):
            assert (span["previous"], span["target"]) == (
                event.previous, event.target,
            )


class TestMetricsAndSampling:
    def test_registry_totals_match_the_report(self, traced_run):
        report, _, registry, _ = traced_run
        value = {m.name: m for m in registry}
        assert value["requests_completed"].value == report.completed
        assert value["requests_offered"].value == report.offered
        assert value["batches_dispatched"].value == report.batches
        assert value["admission_shed"].value == report.admission.shed
        assert value["peak_instances"].value == report.peak_instances
        assert value["latency_seconds"].count == report.completed

    def test_per_tenant_histograms_attached(self, traced_run):
        report, _, registry, _ = traced_run
        for tenant in report.tenants:
            assert f"latency_seconds[{tenant}]" in registry

    def test_sampler_series_has_deterministic_cadence(self, traced_run):
        report, _, _, sampler = traced_run
        # End-of-run flush guarantees ticks at 0, interval, ..., horizon.
        assert len(sampler) >= 21
        times = [row["time"] for row in sampler.rows]
        assert times[0] == 0.0
        assert times == sorted(times)
        expected = {
            "ready", "warming", "busy", "retiring", "provisioned",
            "queue_depth", "arrived", "admitted", "shed", "tarpitted",
            "completed", "utilization",
        }
        assert expected <= set(sampler.rows[0])
        assert sampler.rows[-1]["completed"] == report.completed


class TestBurnSurfacing:
    def test_burn_report_attached_and_rendered(self, traced_run):
        report, _, _, _ = traced_run
        assert report.burn is not None
        assert report.burn.completed == report.completed
        assert report.burn.overall_burn_rate == pytest.approx(
            report.slo_violation_rate / 0.01
        )
        text = report.render()
        assert "SLO burn (budget 1.00%" in text
        assert "burn/window" in text

    def test_trajectory_line_rendered_with_scale_events(self, traced_run):
        report, _, _, _ = traced_run
        assert report.autoscale is not None and report.autoscale.events
        assert "trajectory:" in report.render()

    def test_record_carries_burn_metrics(self, traced_run):
        report, _, _, _ = traced_run
        record = ServingRecord.from_report(
            SCENARIO, report, key="k", eval_seconds=0.1
        )
        assert record.overall_burn_rate == pytest.approx(
            report.burn.overall_burn_rate
        )
        assert record.peak_burn_rate == pytest.approx(
            report.burn.peak_burn_rate
        )
        assert "peak_burn_rate" in record.metrics()
        rebuilt = ServingRecord.from_dict(record.to_dict(), cached=True)
        assert rebuilt.peak_burn_rate == record.peak_burn_rate


class TestZeroImpact:
    """Telemetry observes the run; it must never change it."""

    def test_traced_and_untraced_reports_are_identical(self, traced_run):
        traced_report, _, _, _ = traced_run
        plain = simulate_serving_scenario(SCENARIO)
        assert plain.render() == traced_report.render()

    def test_null_recorder_matches_no_recorder(self):
        scenario = ServingScenario(qps=150.0, duration_seconds=0.3, seed=1)
        a = simulate_serving_scenario(scenario, recorder=NullRecorder())
        b = simulate_serving_scenario(scenario)
        assert a.render() == b.render()

    def test_traces_are_deterministic(self):
        def spans():
            recorder = MemoryTraceRecorder(sample="all")
            simulate_serving_scenario(SCENARIO, recorder=recorder)
            return recorder.spans()

        assert spans() == spans()


class TestP2Backend:
    def test_p2_scenario_runs_and_tracks_exact(self):
        exact = simulate_serving_scenario(SCENARIO)
        approx = simulate_serving_scenario(
            ServingScenario(**{**SCENARIO.__dict__, "metrics_backend": "p2"})
        )
        assert approx.completed == exact.completed
        assert approx.latency.p99 == pytest.approx(exact.latency.p99, rel=0.05)
        assert approx.latency.max == exact.latency.max

    def test_unknown_backend_rejected_at_scenario_level(self):
        with pytest.raises(ValueError, match="backend"):
            ServingScenario(metrics_backend="hdr")


class TestAdaptiveMsFormatting:
    """Satellite: sub-0.1 ms latencies must not render as '0.00 ms'."""

    def test_small_latencies_get_more_precision(self, traced_run):
        report, _, _, _ = traced_run
        from dataclasses import replace

        from repro.noc.stats import LatencySummary

        tiny = replace(
            report,
            latency=LatencySummary(
                count=10, mean=4e-6, p50=4e-6, p95=8e-6, p99=9.5e-6, max=1e-5,
            ),
            tenants={},
        )
        text = tiny.render()
        assert "p50 0.004 ms" in text
        assert "0.00 ms" not in text.split("SLO")[0]

    def test_regular_latencies_keep_fixed_precision(self, traced_run):
        report, _, _, _ = traced_run
        assert "SLO 50.00 ms" in report.render()


FAULTED_SCENARIO = ServingScenario(
    qps=150.0,
    duration_seconds=2.0,
    instances=4,
    fleet="small:2,default:2",
    routing="size_affinity",
    slo_seconds=0.1,
    faults="default",
    retry="backoff",
    hedge_seconds=0.04,
    seed=0,
)


@pytest.fixture(scope="module")
def faulted_run():
    recorder = MemoryTraceRecorder(sample="all")
    registry = MetricRegistry()
    report = simulate_serving_scenario(
        FAULTED_SCENARIO, recorder=recorder, registry=registry
    )
    return report, recorder, registry


class TestFaultedTelemetry:
    """Satellite: the reliability spans round-trip and stay consistent.

    A faulted run with retries and hedging is the stress case for the
    terminal-span invariant: a request may fail, retry, hedge, and race
    two copies -- but it must still settle exactly once.
    """

    def test_run_actually_exercises_the_reliability_paths(self, faulted_run):
        report, _, _ = faulted_run
        assert report.crashes > 0
        assert report.retries > 0
        assert report.hedges_fired > 0

    def test_every_request_settles_exactly_once_under_retries(
        self, faulted_run
    ):
        from repro.obs import TERMINAL_SPANS

        _, recorder, _ = faulted_run
        for request_id in recorder.request_ids():
            terminal = [
                s for s in recorder.spans_for(request_id)
                if s["kind"] in TERMINAL_SPANS
            ]
            assert len(terminal) == 1, (
                f"request {request_id} settled {len(terminal)} times"
            )

    def test_reliability_span_counts_match_the_report(self, faulted_run):
        from repro.obs import (
            SPAN_FAIL,
            SPAN_HEDGE_CANCELLED,
            SPAN_HEDGE_FIRED,
            SPAN_RETRY,
        )

        report, recorder, _ = faulted_run
        kinds = [s["kind"] for s in recorder.spans()]
        assert kinds.count(SPAN_FAIL) == report.failed
        assert kinds.count(SPAN_RETRY) == report.retries
        assert kinds.count(SPAN_HEDGE_FIRED) == report.hedges_fired
        assert kinds.count(SPAN_HEDGE_CANCELLED) == report.hedges_cancelled
        assert kinds.count(SPAN_DEPART) == report.completed

    def test_fleet_spans_tell_the_crash_story(self, faulted_run):
        from repro.obs import FLEET_CRASH, FLEET_RECOVER

        report, recorder, _ = faulted_run
        kinds = [s["kind"] for s in recorder.spans()]
        assert kinds.count(FLEET_CRASH) == report.crashes
        assert kinds.count(FLEET_RECOVER) == report.recoveries

    def test_registry_carries_the_reliability_counters(self, faulted_run):
        report, _, registry = faulted_run
        value = {m.name: m for m in registry}
        assert value["requests_failed"].value == report.failed
        assert value["requests_retried"].value == report.retries
        assert value["instances_crashed"].value == report.crashes
        assert value["instances_recovered"].value == report.recoveries
        assert value["hedges_fired"].value == report.hedges_fired
        assert value["hedges_cancelled"].value == report.hedges_cancelled

    def test_killed_instances_rendered_in_the_report(self, faulted_run):
        report, _, _ = faulted_run
        text = report.render()
        assert f"killed {report.crashes} instance(s)" in text
        assert "availability" in text

    def test_default_registry_has_no_reliability_counters(self, traced_run):
        _, _, registry, _ = traced_run
        names = {m.name for m in registry}
        assert "requests_failed" not in names
        assert "hedges_fired" not in names
