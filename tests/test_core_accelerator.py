"""Tests for the ReGraphX façade, evaluation, and GPU comparison."""

import numpy as np
import pytest

from repro.baselines.gpu import GPUModel, GPUSpec
from repro.core.accelerator import ReGraphX
from repro.core.config import ReGraphXConfig
from repro.core.evaluation import FullSystemComparison, compare_with_gpu
from repro.core.heterogeneity import epe_demand_for_beta, zero_storage_study
from repro.core.mapping import random_mapping


@pytest.fixture(scope="module")
def report(accelerator, ppi_workload):
    return accelerator.evaluate(ppi_workload, multicast=True, use_sa=False)


class TestWorkload:
    def test_build_defaults_to_paper_beta(self, ppi_workload):
        assert ppi_workload.batch_size == 5
        assert ppi_workload.spec.name == "ppi"

    def test_full_scale_num_inputs(self, ppi_workload):
        assert ppi_workload.full_scale_num_inputs == 50  # Table II

    def test_layer_dims_follow_spec(self, ppi_workload):
        spec = ppi_workload.spec
        dims = ppi_workload.layer_dims
        assert len(dims) == 4
        assert dims[0][0] == spec.feature_dim
        assert dims[-1][1] == spec.num_classes
        for (_, a), (b, _) in zip(dims[:-1], dims[1:]):
            assert a == b

    def test_rep_subgraph_matches_per_input_stats(self, ppi_workload):
        spec = ppi_workload.spec
        n = ppi_workload.num_nodes_per_input
        assert abs(n - spec.nodes_per_input) / spec.nodes_per_input < 0.25

    def test_block_mapping_uses_e_crossbar_size(self, ppi_workload, accelerator):
        assert (
            ppi_workload.block_mapping.block_size
            == accelerator.config.e_tile.crossbar_size
        )

    def test_custom_beta(self, accelerator, ppi_workload):
        wl = accelerator.build_workload(
            "ppi",
            scale=0.02,
            seed=0,
            batch_size=1,
            graph=ppi_workload.graph,
            partition=ppi_workload.partition,
        )
        assert wl.batch_size == 1
        assert wl.full_scale_num_inputs == 250
        assert wl.num_nodes_per_input < ppi_workload.num_nodes_per_input

    def test_rejects_bad_beta(self, accelerator):
        with pytest.raises(ValueError):
            accelerator.build_workload("ppi", scale=0.02, batch_size=0)


class TestEvaluate:
    def test_report_sanity(self, report):
        assert report.worst_compute > 0
        assert report.worst_communication > 0
        assert report.epoch_seconds > 0
        assert report.pipeline.num_inputs == 50
        assert report.multicast

    def test_energy_breakdown_positive(self, report):
        assert report.compute_energy_per_input > 0
        assert report.write_energy_per_input > 0
        assert report.noc_energy_per_input > 0
        assert report.energy_per_input == pytest.approx(
            report.compute_energy_per_input
            + report.write_energy_per_input
            + report.noc_energy_per_input
        )

    def test_epoch_energy_includes_static(self, report):
        dynamic = report.energy_per_input * report.pipeline.num_inputs
        assert report.epoch_energy == pytest.approx(
            dynamic + report.static_epoch_energy
        )
        assert report.static_epoch_energy > 0

    def test_every_stage_costed(self, report, accelerator):
        from repro.core.mapping import stage_names

        for stage in stage_names(accelerator.config.num_layers):
            assert stage in report.compute_seconds

    def test_unicast_never_faster(self, accelerator, ppi_workload, report):
        unicast = accelerator.evaluate(
            ppi_workload, multicast=False, stage_map=report.stage_map
        )
        assert unicast.worst_communication >= report.worst_communication

    def test_communication_dominates(self, report):
        """Paper Fig. 7: communication delay exceeds computation delay."""
        assert report.worst_communication > report.worst_compute

    def test_deterministic(self, accelerator, ppi_workload):
        a = accelerator.evaluate(ppi_workload, use_sa=False)
        b = accelerator.evaluate(ppi_workload, use_sa=False)
        assert a.epoch_seconds == b.epoch_seconds
        assert a.epoch_energy == b.epoch_energy

    def test_random_mapping_not_better_than_contiguous(
        self, accelerator, ppi_workload, report
    ):
        randomized = accelerator.evaluate(
            ppi_workload, stage_map=random_mapping(accelerator.config, seed=2)
        )
        assert randomized.worst_communication >= 0.9 * report.worst_communication


class TestHeterogeneity:
    def test_zero_storage_ratio_exceeds_one(self, ppi_workload):
        result = zero_storage_study(ppi_workload.graph)
        assert result.ratio > 1.0

    def test_zero_storage_validation(self, ppi_workload):
        with pytest.raises(ValueError):
            zero_storage_study(ppi_workload.graph, 128, 8)

    def test_epe_demand_monotone_in_beta(self, ppi_workload):
        demands = [
            epe_demand_for_beta(
                ppi_workload.graph, ppi_workload.partition, beta, seed=0
            )
            for beta in (1, 2, 5)
        ]
        blocks = [d.block_mapping.nnz_blocks for d in demands]
        assert blocks[0] < blocks[1] < blocks[2]
        tiles = [d.tiles_needed for d in demands]
        assert tiles[0] <= tiles[1] <= tiles[2]

    def test_epe_demand_fields(self, ppi_workload):
        demand = epe_demand_for_beta(ppi_workload.graph, ppi_workload.partition, 5)
        assert demand.num_inputs == ppi_workload.partition.num_parts // 5
        assert demand.subgraph_nodes > 0


class TestGPUBaseline:
    model = GPUModel()

    def test_step_cost_components(self):
        cost = self.model.step_cost(1000, 20000, [(602, 512), (512, 41)])
        assert cost.compute_seconds > 0
        assert cost.memory_seconds > 0
        assert cost.overhead_seconds == GPUSpec().step_overhead
        assert cost.total_seconds >= cost.overhead_seconds

    def test_epoch_linear_in_inputs(self):
        t1 = self.model.epoch_time(10, 1000, 5000, [(16, 8)])
        t2 = self.model.epoch_time(20, 1000, 5000, [(16, 8)])
        assert t2 == pytest.approx(2 * t1)

    def test_energy_is_power_times_time(self):
        assert self.model.epoch_energy(2.0) == pytest.approx(2.0 * 250.0)

    def test_compute_scales_with_dims(self):
        small = self.model.step_cost(1000, 5000, [(64, 64)])
        big = self.model.step_cost(1000, 5000, [(512, 512)])
        assert big.compute_seconds > small.compute_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            self.model.step_cost(0, 10, [(4, 4)])
        with pytest.raises(ValueError):
            self.model.step_cost(10, -1, [(4, 4)])
        with pytest.raises(ValueError):
            self.model.step_cost(10, 10, [])
        with pytest.raises(ValueError):
            self.model.epoch_time(0, 10, 10, [(4, 4)])
        with pytest.raises(ValueError):
            self.model.epoch_energy(-1.0)
        with pytest.raises(ValueError):
            GPUSpec(dense_efficiency=0.0)
        with pytest.raises(ValueError):
            GPUSpec(average_power=0.0)


class TestComparison:
    def test_fields_and_identities(self, report):
        cmp = compare_with_gpu(report)
        assert cmp.dataset == "ppi"
        assert cmp.speedup == pytest.approx(
            cmp.gpu_epoch_seconds / cmp.regraphx_epoch_seconds
        )
        assert cmp.edp_improvement == pytest.approx(cmp.speedup * cmp.energy_ratio)

    def test_regraphx_wins(self, report):
        """Paper Fig. 8 headline: ReGraphX beats the GPU on every axis."""
        cmp = compare_with_gpu(report)
        assert cmp.speedup > 1.5
        assert cmp.energy_ratio > 3.0
        assert cmp.edp_improvement > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FullSystemComparison("x", 0.0, 1.0, 1.0, 1.0)


class TestBaselinesPlanar:
    def test_flatten_preserves_router_count(self):
        from repro.baselines.planar import planar_mesh_for, planar_router_map
        from repro.noc.topology import Mesh3D

        topo = Mesh3D(8, 8, 3)
        flat = planar_mesh_for(topo)
        assert flat.tiers == 1
        assert flat.num_routers == topo.num_routers
        mapping = planar_router_map(topo)
        assert len(set(mapping.values())) == topo.num_routers

    def test_flatten_is_identity_for_2d(self):
        from repro.baselines.planar import planar_mesh_for
        from repro.noc.topology import Mesh2D

        flat = Mesh2D(4, 4)
        assert planar_mesh_for(flat) is flat

    def test_vertical_neighbors_become_distant(self):
        from repro.baselines.planar import planar_mesh_for, planar_router_map
        from repro.noc.topology import Mesh3D

        topo = Mesh3D(8, 8, 3)
        flat = planar_mesh_for(topo)
        mapping = planar_router_map(topo)
        a = topo.router_id(0, 0, 0)
        b = topo.router_id(0, 0, 1)
        assert topo.distance(a, b) == 1
        assert flat.distance(mapping[a], mapping[b]) == 8


class TestInferenceMode:
    """Forward-only deployment of the same chip (2L stages)."""

    @pytest.fixture(scope="class")
    def pair(self, accelerator, ppi_workload):
        train = accelerator.evaluate(ppi_workload, use_sa=False)
        infer = accelerator.evaluate(ppi_workload, use_sa=False, training=False)
        return train, infer

    def test_half_the_stages(self, pair, accelerator):
        train, infer = pair
        assert train.pipeline.num_stages == 4 * accelerator.config.num_layers
        assert infer.pipeline.num_stages == 2 * accelerator.config.num_layers

    def test_only_forward_stages_costed(self, pair):
        _, infer = pair
        assert not any(s.startswith("B") for s in infer.compute_seconds)
        assert not any(s.startswith("B") for s in infer.communication_seconds)

    def test_no_backward_traffic(self, pair):
        _, infer = pair
        tags = {t for t in infer.schedule.tag_finish}
        assert not any("B" in t for t in tags)

    def test_inference_cheaper_per_input(self, pair):
        train, infer = pair
        assert infer.energy_per_input < train.energy_per_input
        assert infer.compute_energy_per_input < train.compute_energy_per_input

    def test_inference_not_slower(self, pair):
        train, infer = pair
        assert infer.pipeline.period <= train.pipeline.period
        assert infer.epoch_seconds <= train.epoch_seconds

    def test_stage_budget_doubles(self, accelerator):
        v_train, e_train = accelerator._stage_budgets(training=True)
        v_infer, e_infer = accelerator._stage_budgets(training=False)
        assert v_infer == 2 * v_train
        assert e_infer == 2 * e_train


class TestInferenceMapping:
    def test_contiguous_inference_mapping_complete(self, accelerator):
        from repro.core.mapping import contiguous_mapping, stage_names

        sm = contiguous_mapping(accelerator.config, training=False)
        assert set(sm.stages) == set(stage_names(4, training=False))
        routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(set(routers)) == 192

    def test_stage_names_inference(self):
        from repro.core.mapping import stage_names

        assert stage_names(2, training=False) == ["V1", "E1", "V2", "E2"]

    def test_legs_inference(self):
        from repro.core.mapping import communication_legs

        legs = communication_legs(2, training=False)
        assert legs == [("V1", "E1"), ("E1", "V2"), ("V2", "E2")]
