"""Tests for the experiment drivers (paper tables and figures).

These run at reduced scales but assert the *shapes* the paper reports.
"""

import pytest

from repro.experiments.common import ExperimentTable
from repro.experiments.fig3_zeros import run_fig3
from repro.experiments.fig5_accuracy import run_fig5
from repro.experiments.fig6_batch import run_fig6
from repro.experiments.fig7_noc import run_fig7
from repro.experiments.fig8_fullsystem import run_fig8
from repro.experiments.tables import table1_parameters, table2_datasets

TINY_SCALES = {"ppi": 0.05, "reddit": 0.01, "amazon2m": 0.002}


class TestExperimentTable:
    def test_render(self):
        t = ExperimentTable("T", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "T" in text and "a" in text and "2.5" in text

    def test_row_width_checked(self):
        t = ExperimentTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_empty(self):
        assert "T" in ExperimentTable("T", ["a"]).render()


class TestTables:
    def test_table1_contains_parameters(self):
        text = table1_parameters().render()
        assert "128x128" in text
        assert "8x8" in text

    def test_table2_contains_paper_stats(self):
        text = table2_datasets().render()
        assert "232965" in text
        assert "61859140" in text

    def test_table2_with_generation_check(self):
        table = table2_datasets(check_scale=0.005)
        assert len(table.columns) == 8


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(scales=TINY_SCALES, seed=0)

    def test_large_blocks_store_more_zeros_everywhere(self, result):
        for name in ("ppi", "reddit", "amazon2m"):
            assert result.ratio(name) > 1.0

    def test_table_renders(self, result):
        assert "Fig. 3" in result.table().render()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(
            scale=0.008,
            num_partitions=20,
            betas=(1, 5, 10),
            num_epochs=10,
            hidden_dim=16,
        )

    def test_all_betas_trained(self, result):
        assert set(result.histories) == {1, 5, 10}
        for history in result.histories.values():
            assert len(history.epochs) == 10

    def test_accuracy_above_chance(self, result):
        # 41 classes -> chance ~2.4%.
        for beta in (5, 10):
            assert result.final_accuracy(beta) > 0.3

    def test_table_renders(self, result):
        assert "Fig. 5" in result.table().render()

    def test_beta_must_divide_partitions(self):
        with pytest.raises(ValueError, match="divide"):
            run_fig5(num_partitions=10, betas=(3,), num_epochs=1)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(dataset="reddit", scale=0.01, betas=(1, 5, 10))

    def test_training_time_drops_from_beta1(self, result):
        """Paper Fig. 6: larger beta trains faster (diminishing returns)."""
        times = result.normalized_training_time()
        assert times[0] == 1.0
        assert times[1] < 0.7
        assert times[2] < 0.7

    def test_epe_demand_grows(self, result):
        demand = result.normalized_epe_demand()
        assert demand[0] == 1.0
        assert demand[1] > 1.0
        assert demand[2] > demand[1]

    def test_numinput_inverse_in_beta(self, result):
        assert [p.num_inputs for p in result.points] == [1500, 300, 150]

    def test_betas_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            run_fig6(betas=(5, 1))

    def test_table_renders(self, result):
        assert "Fig. 6" in result.table().render()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(seed=0)

    def test_communication_dominates_computation(self, result):
        """Paper: comm delay always exceeds comp delay (with multicast)."""
        for point in result.points.values():
            assert point.communication_multicast > point.computation

    def test_unicast_worse_than_multicast(self, result):
        """Paper: unicast ~57% worse on average; we assert 20-120%."""
        for point in result.points.values():
            assert point.unicast_penalty > 1.0
        assert 1.2 < result.mean_unicast_penalty < 2.2

    def test_table_renders(self, result):
        text = result.table().render()
        assert "comm-U" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(seed=0)

    def test_regraphx_wins_everywhere(self, result):
        for cmp in result.comparisons.values():
            assert cmp.speedup > 1.0
            assert cmp.energy_ratio > 1.0
            assert cmp.edp_improvement > 1.0

    def test_headline_numbers_in_paper_band(self, result):
        """Paper: ~3X speedup (up to 3.5X), up to ~11X energy, ~34X EDP."""
        assert 2.0 < result.mean_speedup < 4.5
        assert result.max_speedup < 5.0
        assert 5.0 < result.mean_energy_ratio < 16.0
        assert 15.0 < result.mean_edp_improvement < 60.0

    def test_table_renders(self, result):
        assert "speedup" in result.table().render()


class TestRunner:
    def test_selected_subset(self):
        from repro.experiments.runner import run

        out = run(["table1"])
        assert "table1" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import run

        with pytest.raises(ValueError, match="unknown"):
            run(["fig99"])

    def test_registry_covers_all_experiments(self):
        from repro.experiments.runner import ALL_EXPERIMENTS, EXPERIMENTS

        assert tuple(EXPERIMENTS) == ALL_EXPERIMENTS
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig3", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12",
        }
        assert all(callable(fn) for fn in EXPERIMENTS.values())

    def test_run_dispatches_through_registry_with_seed(self):
        from repro.experiments import runner

        runner.EXPERIMENTS["fake"] = lambda seed: f"fake-table seed={seed}"
        try:
            out = runner.run(["fake"], seed=7)
        finally:
            del runner.EXPERIMENTS["fake"]
        assert "seed=7" in out["fake"]

    def test_parallel_matches_serial(self):
        from repro.experiments.runner import run

        serial = run(["table1", "table2"], jobs=1)
        parallel = run(["table1", "table2"], jobs=2)
        # Same tables in the same order (timing suffix differs).
        assert list(serial) == list(parallel) == ["table1", "table2"]
        strip = lambda text: text.rsplit("\n[", 1)[0]
        assert {k: strip(v) for k, v in serial.items()} == {
            k: strip(v) for k, v in parallel.items()
        }

    def test_main_parses_seed_and_names(self, capsys):
        from repro.experiments.runner import main

        main(["table1", "--seed", "3"])
        out = capsys.readouterr().out
        assert "128x128" in out
