"""Unit tests for the deterministic ReRAM timing and energy models."""

import pytest

from repro.reram.energy import EnergyModel, ReRAMEnergySpec
from repro.reram.timing import ReRAMTimingModel


class TestTiming:
    model = ReRAMTimingModel()

    def test_cycle_time(self):
        assert self.model.cycle_time == pytest.approx(100e-9)

    def test_vector_cycles(self):
        assert self.model.vector_cycles == 16  # 16-bit through 1-bit DACs

    def test_v_layer_blocks(self):
        assert self.model.v_layer_blocks(128, 128) == 1
        assert self.model.v_layer_blocks(129, 128) == 2
        assert self.model.v_layer_blocks(602, 512) == 5 * 4

    def test_v_layer_replication(self):
        # 1 block, 10 IMAs -> 10 copies -> 100 vectors in 10 waves.
        lat = self.model.v_layer_latency(100, 128, 128, num_imas=10)
        assert lat == pytest.approx(10 * 16 * 100e-9)

    def test_v_layer_serialized_rounds(self):
        # 4 blocks, 2 IMAs -> 2 rounds per vector.
        lat = self.model.v_layer_latency(10, 256, 256, num_imas=2)
        assert lat == pytest.approx(10 * 2 * 16 * 100e-9)

    def test_v_layer_zero_vectors(self):
        assert self.model.v_layer_latency(0, 128, 128, 1) == 0.0

    def test_v_layer_rejects_bad_args(self):
        with pytest.raises(ValueError):
            self.model.v_layer_latency(-1, 128, 128, 1)
        with pytest.raises(ValueError):
            self.model.v_layer_latency(1, 128, 128, 0)
        with pytest.raises(ValueError):
            self.model.v_layer_blocks(0, 5)

    def test_e_layer_fixed_below_capacity(self):
        """Below the crossbar budget the latency is independent of blocks."""
        a = self.model.e_layer_latency(128, 100, num_crossbars=6144)
        b = self.model.e_layer_latency(128, 6144, num_crossbars=6144)
        assert a == b == pytest.approx(128 * 16 * 100e-9)

    def test_e_layer_rounds_above_capacity(self):
        one = self.model.e_layer_latency(128, 6144, 6144)
        three = self.model.e_layer_latency(128, 3 * 6144, 6144)
        assert three == pytest.approx(3 * one)

    def test_e_layer_zero_blocks(self):
        assert self.model.e_layer_latency(128, 0, 100) == 0.0

    def test_e_layer_rejects_bad_args(self):
        with pytest.raises(ValueError):
            self.model.e_layer_latency(0, 10, 10)
        with pytest.raises(ValueError):
            self.model.e_layer_latency(10, -1, 10)
        with pytest.raises(ValueError):
            self.model.e_layer_latency(10, 1, 0)

    def test_write_latencies(self):
        lat = self.model.adjacency_write_latency(100, 6144)
        assert lat == pytest.approx(8 * 10 * 100e-9)
        assert self.model.adjacency_write_latency(0, 1) == 0.0
        rounds2 = self.model.adjacency_write_latency(2 * 6144, 6144)
        assert rounds2 == pytest.approx(2 * lat)

    def test_weight_write_latency(self):
        lat = self.model.weight_write_latency(10, 10)
        assert lat == pytest.approx(128 * 10 * 100e-9)
        assert self.model.weight_write_latency(0, 1) == 0.0

    def test_latency_monotone_in_vectors(self):
        lats = [
            self.model.v_layer_latency(n, 256, 256, num_imas=8)
            for n in (10, 100, 1000)
        ]
        assert lats[0] <= lats[1] <= lats[2]

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            ReRAMTimingModel(clock_hz=0)


class TestEnergy:
    model = EnergyModel()

    def test_adc_walden_scaling(self):
        spec = ReRAMEnergySpec()
        assert spec.adc_sample(8) == pytest.approx(spec.adc_sample_8bit)
        assert spec.adc_sample(6) == pytest.approx(spec.adc_sample_8bit / 4)
        assert spec.adc_sample(10) == pytest.approx(spec.adc_sample_8bit * 4)

    def test_mac_wave_energy_positive_and_scales(self):
        small = self.model.mac_wave_energy(8, 8, 6, slices=1)
        big = self.model.mac_wave_energy(128, 128, 8, slices=8)
        assert 0 < small < big

    def test_v_layer_energy_linear_in_vectors(self):
        e1 = self.model.v_layer_energy(10, 128, 128)
        e2 = self.model.v_layer_energy(20, 128, 128)
        assert e2 == pytest.approx(2 * e1)

    def test_v_layer_energy_scales_with_blocks(self):
        e1 = self.model.v_layer_energy(10, 128, 128)
        e4 = self.model.v_layer_energy(10, 256, 256)
        assert e4 == pytest.approx(4 * e1)

    def test_e_layer_energy_linear_in_blocks(self):
        e1 = self.model.e_layer_energy(128, 100)
        e2 = self.model.e_layer_energy(128, 200)
        assert e2 == pytest.approx(2 * e1)

    def test_write_energies(self):
        assert self.model.adjacency_write_energy(10) == pytest.approx(
            10 * 64 * ReRAMEnergySpec().cell_write
        )
        assert self.model.weight_write_energy(0) == 0.0

    def test_zero_work_zero_energy(self):
        assert self.model.v_layer_energy(0, 128, 128) == 0.0
        assert self.model.e_layer_energy(128, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            self.model.v_layer_energy(-1, 128, 128)
        with pytest.raises(ValueError):
            self.model.e_layer_energy(0, 10)
        with pytest.raises(ValueError):
            self.model.adjacency_write_energy(-1)
        with pytest.raises(ValueError):
            self.model.mac_wave_energy(0, 8, 6, 1)
        with pytest.raises(ValueError):
            ReRAMEnergySpec().adc_sample(0)

    def test_spec_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            ReRAMEnergySpec(cell_write=-1.0)
