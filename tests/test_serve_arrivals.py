"""Tests for the serving engine's arrival processes.

Covers the ISSUE-mandated properties: seeded determinism, empirical rate
matching the nominal rate within tolerance, and trace replay
round-tripping through CSV export.
"""

import pytest

from repro.serve.arrivals import (
    ARRIVALS,
    ClosedLoopPool,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    TenantMix,
    TraceArrivals,
    empirical_qps,
    load_trace,
    make_arrivals,
    save_trace,
)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="tenant"):
            Request(tenant="", graph_size=10, arrival_time=0.0)
        with pytest.raises(ValueError, match="graph_size"):
            Request(tenant="t", graph_size=0, arrival_time=0.0)
        with pytest.raises(ValueError, match="arrival_time"):
            Request(tenant="t", graph_size=10, arrival_time=-1.0)


class TestTenantMix:
    def test_uniform_names_and_weights(self):
        mix = TenantMix.uniform(3)
        assert mix.tenant_names == ("tenant-0", "tenant-1", "tenant-2")
        assert all(w == 1.0 for w in mix.weights.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            TenantMix(tenants=())
        with pytest.raises(ValueError, match="duplicate"):
            TenantMix(tenants=(("a", 1.0), ("a", 2.0)))
        with pytest.raises(ValueError, match="positive"):
            TenantMix(tenants=(("a", 0.0),))
        with pytest.raises(ValueError, match="graph sizes"):
            TenantMix(graph_sizes=())
        with pytest.raises(ValueError, match="size_weights"):
            TenantMix(graph_sizes=(10, 20), size_weights=(1.0,))

    def test_draws_come_from_the_alphabet(self):
        from repro.utils.rng import rng_from_seed

        mix = TenantMix.uniform(2, graph_sizes=(64, 256))
        rng = rng_from_seed(0)
        for _ in range(50):
            tenant, size = mix.draw(rng)
            assert tenant in mix.tenant_names
            assert size in (64, 256)


class TestSeededDeterminism:
    @pytest.mark.parametrize("kind", sorted(ARRIVALS))
    def test_same_seed_same_stream(self, kind):
        a = make_arrivals(kind, 150.0, seed=7).generate(5.0)
        b = make_arrivals(kind, 150.0, seed=7).generate(5.0)
        assert a == b
        assert len(a) > 0

    @pytest.mark.parametrize("kind", sorted(ARRIVALS))
    def test_different_seed_different_stream(self, kind):
        a = make_arrivals(kind, 150.0, seed=1).generate(5.0)
        b = make_arrivals(kind, 150.0, seed=2).generate(5.0)
        assert a != b

    def test_streams_are_time_ordered_with_sequential_ids(self):
        requests = PoissonArrivals(100.0, seed=3).generate(4.0)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        assert all(t < 4.0 for t in times)


class TestEmpiricalRates:
    def test_poisson_rate_matches_nominal(self):
        rate = 200.0
        requests = PoissonArrivals(rate, seed=0).generate(30.0)
        assert empirical_qps(requests, 30.0) == pytest.approx(rate, rel=0.10)

    def test_mmpp_time_average_matches_nominal(self):
        # Burst/quiet cycles are ~1.25 s; average over many cycles.
        rate = 200.0
        requests = MMPPArrivals(rate, seed=0).generate(120.0)
        assert empirical_qps(requests, 120.0) == pytest.approx(rate, rel=0.15)

    def test_mmpp_is_burstier_than_poisson(self):
        import numpy as np

        def cov_of_counts(requests, horizon, bins=200):
            counts, _ = np.histogram(
                [r.arrival_time for r in requests], bins=bins, range=(0, horizon)
            )
            return counts.std() / counts.mean()

        horizon = 60.0
        poisson = PoissonArrivals(200.0, seed=0).generate(horizon)
        mmpp = MMPPArrivals(200.0, seed=0, burst_ratio=16.0).generate(horizon)
        assert cov_of_counts(mmpp, horizon) > 1.5 * cov_of_counts(poisson, horizon)

    def test_diurnal_rate_matches_nominal_over_whole_periods(self):
        # The sine modulation integrates to zero over whole periods only.
        rate = 200.0
        process = DiurnalArrivals(rate, seed=0, period_seconds=5.0, amplitude=0.8)
        requests = process.generate(20.0)
        assert empirical_qps(requests, 20.0) == pytest.approx(rate, rel=0.10)

    def test_diurnal_peak_vs_trough(self):
        process = DiurnalArrivals(
            200.0, seed=1, period_seconds=10.0, amplitude=0.9
        )
        requests = process.generate(10.0)
        # First half-period is the peak of the sine, second the trough.
        peak = sum(1 for r in requests if r.arrival_time < 5.0)
        trough = len(requests) - peak
        assert peak > 2 * trough

    def test_empirical_qps_empty(self):
        assert empirical_qps([]) == 0.0


class TestTraceReplay:
    def test_csv_round_trip(self, tmp_path):
        original = MMPPArrivals(120.0, mix=TenantMix.uniform(3), seed=5).generate(3.0)
        path = save_trace(original, tmp_path / "trace.csv")
        replay = load_trace(path)
        assert list(replay.requests) == original
        assert replay.generate(3.0) == original

    def test_generate_clips_to_horizon(self):
        requests = [
            Request(tenant="t", graph_size=10, arrival_time=float(i), request_id=i)
            for i in range(5)
        ]
        trace = TraceArrivals(requests)
        assert [r.arrival_time for r in trace.generate(2.5)] == [0.0, 1.0, 2.0]

    def test_trace_orders_by_time(self):
        requests = [
            Request(tenant="t", graph_size=10, arrival_time=2.0, request_id=0),
            Request(tenant="t", graph_size=10, arrival_time=1.0, request_id=1),
        ]
        trace = TraceArrivals(requests)
        assert [r.request_id for r in trace.requests] == [1, 0]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            TraceArrivals([])


class TestClosedLoopPool:
    def test_initial_requests_one_per_client(self):
        pool = ClosedLoopPool(num_clients=5, think_seconds=0.1, seed=0)
        initial = pool.initial_requests()
        assert len(initial) == 5
        assert [r.request_id for r in initial] == list(range(5))

    def test_next_request_after_completion(self):
        pool = ClosedLoopPool(num_clients=1, think_seconds=0.05, seed=0)
        pool.initial_requests()
        follow_up = pool.next_request(completion_time=2.0)
        assert follow_up.arrival_time >= 2.0
        assert follow_up.request_id == 1

    def test_zero_think_time(self):
        pool = ClosedLoopPool(num_clients=2, think_seconds=0.0, seed=0)
        assert all(r.arrival_time == 0.0 for r in pool.initial_requests())
        assert pool.next_request(1.5).arrival_time == 1.5

    def test_deterministic(self):
        a = ClosedLoopPool(num_clients=3, think_seconds=0.1, seed=4)
        b = ClosedLoopPool(num_clients=3, think_seconds=0.1, seed=4)
        assert a.initial_requests() == b.initial_requests()
        assert a.next_request(1.0) == b.next_request(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="client"):
            ClosedLoopPool(num_clients=0)
        with pytest.raises(ValueError, match="[Tt]hink"):
            ClosedLoopPool(think_seconds=-1.0)


class TestValidation:
    def test_unknown_arrival_model(self):
        with pytest.raises(ValueError, match="unknown arrival model"):
            make_arrivals("uniform", 100.0)

    def test_make_arrivals_forwards_model_kwargs(self):
        process = make_arrivals("mmpp", 100.0, burst_ratio=4.0)
        assert process.burst_ratio == 4.0
        diurnal = make_arrivals("diurnal", 100.0, period_seconds=3.0)
        assert diurnal.period_seconds == 3.0

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(0.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            PoissonArrivals(10.0).generate(0.0)

    def test_mmpp_parameters(self):
        with pytest.raises(ValueError, match="burst_ratio"):
            MMPPArrivals(10.0, burst_ratio=0.5)
        with pytest.raises(ValueError, match="sojourn"):
            MMPPArrivals(10.0, mean_quiet_seconds=0.0)

    def test_diurnal_parameters(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(10.0, amplitude=1.5)
        with pytest.raises(ValueError, match="period"):
            DiurnalArrivals(10.0, period_seconds=0.0)
