"""Unit tests for the Table II dataset registry."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    get_dataset_spec,
    load_dataset,
)


class TestSpecs:
    def test_table2_values(self):
        """The registry mirrors the paper's Table II exactly."""
        ppi = DATASETS["ppi"]
        assert (ppi.num_nodes, ppi.num_edges) == (56_944, 818_716)
        assert (ppi.num_partitions, ppi.batch_size, ppi.num_inputs) == (250, 5, 50)
        reddit = DATASETS["reddit"]
        assert (reddit.num_nodes, reddit.num_edges) == (232_965, 11_606_919)
        assert (reddit.num_partitions, reddit.batch_size, reddit.num_inputs) == (
            1500,
            10,
            150,
        )
        amazon = DATASETS["amazon2m"]
        assert (amazon.num_nodes, amazon.num_edges) == (2_449_029, 61_859_140)
        assert (amazon.num_partitions, amazon.batch_size, amazon.num_inputs) == (
            15_000,
            10,
            1500,
        )

    def test_four_layers_everywhere(self):
        for spec in DATASETS.values():
            assert spec.num_layers == 4

    def test_numinput_consistency_enforced(self):
        with pytest.raises(ValueError, match="NumInput"):
            DatasetSpec(
                name="bad",
                num_nodes=100,
                num_edges=200,
                num_partitions=10,
                batch_size=5,
                num_inputs=3,  # should be 2
                feature_dim=4,
                num_classes=2,
                hidden_dim=8,
            )

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            DatasetSpec(
                name="bad",
                num_nodes=100,
                num_edges=200,
                num_partitions=10,
                batch_size=3,
                num_inputs=3,
                feature_dim=4,
                num_classes=2,
                hidden_dim=8,
            )

    def test_average_degree(self):
        spec = DATASETS["reddit"]
        assert spec.average_degree == pytest.approx(2 * 11_606_919 / 232_965)

    def test_nodes_per_input(self):
        spec = DATASETS["ppi"]
        assert spec.nodes_per_input == pytest.approx(56_944 / 50)

    def test_scaled_preserves_degree(self):
        spec = DATASETS["ppi"]
        nodes, edges, _ = spec.scaled(0.1)
        assert 2 * edges / nodes == pytest.approx(spec.average_degree, rel=0.01)

    def test_scaled_partitions_divisible_by_beta(self):
        for spec in DATASETS.values():
            for scale in (0.002, 0.01, 0.05, 0.3):
                _, _, parts = spec.scaled(scale)
                assert parts % spec.batch_size == 0
                assert parts >= spec.batch_size

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            DATASETS["ppi"].scaled(0.0)
        with pytest.raises(ValueError):
            DATASETS["ppi"].scaled(1.5)

    def test_lookup(self):
        assert get_dataset_spec("PPI").name == "ppi"
        with pytest.raises(KeyError):
            get_dataset_spec("cora")

    def test_names_order(self):
        assert dataset_names() == ["ppi", "reddit", "amazon2m"]


class TestLoad:
    @pytest.mark.parametrize("name", ["ppi", "reddit", "amazon2m"])
    def test_load_matches_scaled_targets(self, name):
        spec = get_dataset_spec(name)
        scale = 0.01 if name != "amazon2m" else 0.001
        nodes, edges, _ = spec.scaled(scale)
        g = load_dataset(name, scale=scale, seed=0, with_features=False)
        assert g.num_nodes == nodes
        assert g.num_edges == edges

    def test_load_with_features(self):
        g = load_dataset("ppi", scale=0.01, seed=0)
        spec = get_dataset_spec("ppi")
        assert g.features.shape == (g.num_nodes, spec.feature_dim)
        assert g.labels.max() < spec.num_classes

    def test_load_without_features(self):
        g = load_dataset("ppi", scale=0.01, seed=0, with_features=False)
        assert g.features is None

    def test_load_deterministic(self):
        import numpy as np

        g1 = load_dataset("ppi", scale=0.01, seed=3)
        g2 = load_dataset("ppi", scale=0.01, seed=3)
        assert np.array_equal(g1.indices, g2.indices)
        assert np.array_equal(g1.features, g2.features)

    def test_feature_noise_scales_spread(self):
        import numpy as np

        calm = load_dataset("ppi", scale=0.01, seed=0, feature_noise=0.1)
        noisy = load_dataset("ppi", scale=0.01, seed=0, feature_noise=5.0)
        assert np.std(noisy.features) > np.std(calm.features)
