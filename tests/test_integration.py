"""Cross-module integration tests.

These exercise complete paths through the library: GCN math running on the
functional crossbar models, workload evaluation end-to-end, and agreement
between the two NoC performance models on workload-derived traffic.
"""

import numpy as np
import pytest

from repro.core.accelerator import ReGraphX
from repro.core.config import ReGraphXConfig
from repro.core.evaluation import compare_with_gpu
from repro.core.mapping import contiguous_mapping
from repro.core.traffic import GNNTrafficModel, cross_validate_traffic
from repro.gnn.layers import GCNLayer
from repro.gnn.model import GCN
from repro.graph.clustering import ClusterBatcher
from repro.graph.datasets import load_dataset
from repro.graph.partition import partition_graph
from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.simulator import FlitSimulator
from repro.reram.ima import IMASpec
from repro.reram.tile import ReRAMTile, TileSpec, v_tile_spec


class TestGCNOnReRAM:
    """The V-layer math of a GCN runs bit-exactly on the crossbar model
    (up to 16-bit fixed-point quantization)."""

    def test_layer_forward_matches_crossbars(self):
        rng = np.random.default_rng(0)
        graph = load_dataset("ppi", scale=0.004, seed=0)
        n = 16
        x = graph.features[:n] * 0.05
        w = rng.normal(scale=0.2, size=(graph.feature_dim, 40))

        tile = ReRAMTile(v_tile_spec())
        tile.program_layer(w)
        v_out_analog = tile.matmul(x)

        a_hat = graph.normalized_adjacency()[:n, :n]
        layer = GCNLayer(weight=w, activation="relu")
        reference = layer.forward(a_hat, x)
        analog_full = np.maximum(np.asarray(a_hat @ v_out_analog), 0.0)
        assert np.abs(analog_full - reference).max() < 1e-2

    def test_small_crossbar_tile_runs_adjacency_blocks(self):
        """An 8x8 E-crossbar applies one binary adjacency block exactly."""
        from repro.reram.crossbar import Crossbar

        rng = np.random.default_rng(1)
        block = (rng.random((8, 8)) < 0.3).astype(np.int64)
        xb = Crossbar(8, 8)
        xb.program(block)
        wave = (rng.random(8) < 0.5).astype(np.int64)
        assert np.array_equal(xb.mac_wave(wave), wave @ block)


class TestEndToEndEvaluation:
    def test_full_flow_from_raw_graph(self):
        """graph -> partition -> workload -> evaluate -> compare, all from
        public API calls."""
        accelerator = ReGraphX()
        graph = load_dataset("reddit", scale=0.008, seed=1, with_features=False)
        partition = partition_graph(graph, 10, seed=1)
        workload = accelerator.build_workload(
            "reddit", seed=1, graph=graph, partition=partition
        )
        report = accelerator.evaluate(workload, multicast=True, use_sa=False)
        comparison = compare_with_gpu(report)
        assert comparison.speedup > 0
        assert report.pipeline.num_inputs == 150

    def test_training_and_hardware_agree_on_shapes(self, small_graph):
        """The GCN the trainer runs and the layer dims the hardware maps
        are the same shapes."""
        partition = partition_graph(small_graph, 4, seed=0)
        batcher = ClusterBatcher(small_graph, partition, 2, seed=0)
        model = GCN(
            small_graph.feature_dim, 32, small_graph.num_classes, num_layers=4, seed=0
        )
        batch = batcher.epoch()[0]
        logits = model.forward(
            batch.subgraph.normalized_adjacency(), batch.subgraph.features
        )
        assert logits.shape == (batch.subgraph.num_nodes, small_graph.num_classes)

    def test_custom_config_smaller_mesh(self):
        """The whole stack works on a non-default architecture."""
        config = ReGraphXConfig(mesh_width=4, mesh_height=4, num_layers=2)
        accelerator = ReGraphX(config)
        assert config.num_pipeline_stages == 8
        graph = load_dataset("ppi", scale=0.01, seed=0, with_features=False)
        partition = partition_graph(graph, 5, seed=0)
        from repro.graph.datasets import DatasetSpec

        spec = DatasetSpec(
            name="mini",
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_partitions=5,
            batch_size=1,
            num_inputs=5,
            feature_dim=50,
            num_classes=10,
            hidden_dim=64,
            num_layers=2,
        )
        workload = accelerator.build_workload(
            spec, seed=0, graph=graph, partition=partition
        )
        report = accelerator.evaluate(workload, use_sa=False)
        assert report.epoch_seconds > 0


class TestNoCModelAgreement:
    """The static scheduler and the flit simulator agree on workload traffic."""

    def test_workload_traffic_cross_validation(self, accelerator, ppi_workload):
        sm = contiguous_mapping(accelerator.config)
        traffic = GNNTrafficModel(
            accelerator.config,
            sm,
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        # Subsample one leg to keep the flit-level run fast.
        msgs = [m for m in traffic.messages() if m.tag == "E1->V2"][:40]
        assert msgs
        cfg = accelerator.config.noc
        sched = StaticScheduler(accelerator.config.topology, cfg)
        sim = FlitSimulator(accelerator.config.topology, cfg)
        res_sched = sched.simulate(msgs, multicast=False)
        res_sim = sim.simulate(msgs)
        # Same work delivered...
        assert res_sim.link_stats.total_flit_hops == res_sched.total_flit_hops
        # ...and the two contention models agree within 2x.
        ratio = res_sched.makespan_cycles / res_sim.makespan_cycles
        assert 0.5 <= ratio <= 2.0

    def test_full_traffic_cross_validation_event_backend(
        self, accelerator, ppi_workload
    ):
        """The event engine makes the *entire* pipeline message set cheap to
        validate — no subsampling, unlike the cycle-era test above."""
        sm = contiguous_mapping(accelerator.config)
        traffic = GNNTrafficModel(
            accelerator.config,
            sm,
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        msgs = traffic.messages()
        validation = cross_validate_traffic(
            accelerator.config.topology, accelerator.config.noc, msgs
        )
        assert validation.num_messages == len(msgs)
        assert validation.flit_hops_match
        # The static schedule is conservative: never faster than the
        # flit-level dynamics, and within an order of magnitude of them.
        assert 1.0 <= validation.makespan_ratio < 10.0

    def test_atomic_bounds_pipelined_on_workload(self, accelerator, ppi_workload):
        sm = contiguous_mapping(accelerator.config)
        traffic = GNNTrafficModel(
            accelerator.config,
            sm,
            ppi_workload.block_mapping,
            ppi_workload.num_nodes_per_input,
            ppi_workload.layer_dims,
        )
        msgs = traffic.messages()[:200]
        topo = accelerator.config.topology
        pipelined = StaticScheduler(topo, NoCConfig(schedule_mode="pipelined"))
        atomic = StaticScheduler(topo, NoCConfig(schedule_mode="atomic"))
        assert (
            pipelined.simulate(msgs).makespan_cycles
            <= atomic.simulate(msgs).makespan_cycles
        )


class TestScaleInvariance:
    """Per-input statistics are approximately scale-invariant — the property
    that lets reduced-scale experiments project full-scale results."""

    @pytest.mark.parametrize("scales", [(0.1, 0.2)])
    def test_per_input_nodes_stable(self, accelerator, scales):
        # Exact NumPart rounding at tiny scales adds variance, so compare
        # two scales where the partition count is a faithful fraction.
        sizes = []
        for scale in scales:
            wl = accelerator.build_workload("ppi", scale=scale, seed=0)
            sizes.append(wl.num_nodes_per_input)
        assert abs(sizes[0] - sizes[1]) / max(sizes) < 0.2

    def test_full_scale_inputs_independent_of_scale(self, accelerator):
        for scale in (0.05, 0.1):
            wl = accelerator.build_workload("ppi", scale=scale, seed=0)
            assert wl.full_scale_num_inputs == 50
