"""Unit tests for GCN layers and the full model, including gradient checks."""

import numpy as np
import pytest
from scipy import sparse

from repro.gnn.layers import GCNLayer
from repro.gnn.model import GCN
from repro.gnn.ops import softmax_cross_entropy


def make_a_hat(n: int, seed: int = 0) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 1.0)
    deg = dense.sum(axis=1)
    d_inv = np.diag(1.0 / np.sqrt(deg))
    return sparse.csr_matrix(d_inv @ dense @ d_inv)


class TestGCNLayer:
    def test_forward_shape(self):
        layer = GCNLayer(weight=np.random.default_rng(0).normal(size=(6, 4)))
        a_hat = make_a_hat(10)
        out = layer.forward(a_hat, np.random.default_rng(1).normal(size=(10, 6)))
        assert out.shape == (10, 4)

    def test_relu_clips_negative(self):
        layer = GCNLayer(weight=-np.eye(3))
        a_hat = sparse.identity(4, format="csr")
        out = layer.forward(a_hat, np.ones((4, 3)))
        assert np.all(out == 0)

    def test_linear_activation_passthrough(self):
        layer = GCNLayer(weight=np.eye(3), activation="linear")
        a_hat = sparse.identity(4, format="csr")
        x = np.random.default_rng(0).normal(size=(4, 3))
        assert np.allclose(layer.forward(a_hat, x), x)

    def test_forward_is_a_hat_x_w(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(5, 3))
        layer = GCNLayer(weight=w, activation="linear")
        a_hat = make_a_hat(7, seed=2)
        x = rng.normal(size=(7, 5))
        assert np.allclose(layer.forward(a_hat, x), a_hat @ (x @ w))

    def test_backward_before_forward_raises(self):
        layer = GCNLayer(weight=np.eye(2))
        with pytest.raises(RuntimeError, match="backward"):
            layer.backward(np.zeros((3, 2)))

    def test_backward_shape_checked(self):
        layer = GCNLayer(weight=np.eye(2))
        layer.forward(sparse.identity(3, format="csr"), np.ones((3, 2)))
        with pytest.raises(ValueError, match="grad_out"):
            layer.backward(np.zeros((4, 2)))

    def test_input_width_checked(self):
        layer = GCNLayer(weight=np.eye(2))
        with pytest.raises(ValueError, match="width"):
            layer.forward(sparse.identity(3, format="csr"), np.ones((3, 5)))

    def test_bad_activation_rejected(self):
        with pytest.raises(ValueError, match="activation"):
            GCNLayer(weight=np.eye(2), activation="tanh")

    def test_weight_gradient_numerical(self):
        """Full numerical gradient check of one layer through a loss."""
        rng = np.random.default_rng(3)
        n, din, dout = 6, 4, 3
        a_hat = make_a_hat(n, seed=3)
        x = rng.normal(size=(n, din))
        labels = rng.integers(0, dout, size=n)
        w = rng.normal(size=(din, dout)) * 0.5

        def loss_at(weight):
            layer = GCNLayer(weight=weight.copy(), activation="relu")
            out = layer.forward(a_hat, x)
            loss, _ = softmax_cross_entropy(out, labels)
            return loss

        layer = GCNLayer(weight=w.copy(), activation="relu")
        out = layer.forward(a_hat, x)
        _, grad_out = softmax_cross_entropy(out, labels)
        grad_w, _ = layer.backward(grad_out)

        eps = 1e-6
        for i in range(din):
            for j in range(dout):
                bumped = w.copy()
                bumped[i, j] += eps
                up = loss_at(bumped)
                bumped[i, j] -= 2 * eps
                down = loss_at(bumped)
                numeric = (up - down) / (2 * eps)
                assert grad_w[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(4)
        n, din, dout = 5, 3, 4
        a_hat = make_a_hat(n, seed=4)
        x = rng.normal(size=(n, din))
        labels = rng.integers(0, dout, size=n)
        w = rng.normal(size=(din, dout)) * 0.5
        layer = GCNLayer(weight=w, activation="relu")
        out = layer.forward(a_hat, x)
        _, grad_out = softmax_cross_entropy(out, labels)
        _, grad_x = layer.backward(grad_out)

        eps = 1e-6
        for i in range(n):
            for j in range(din):
                bumped = x.copy()
                bumped[i, j] += eps
                up, _ = softmax_cross_entropy(layer.forward(a_hat, bumped), labels)
                bumped[i, j] -= 2 * eps
                down, _ = softmax_cross_entropy(layer.forward(a_hat, bumped), labels)
                numeric = (up - down) / (2 * eps)
                assert grad_x[i, j] == pytest.approx(numeric, abs=1e-5)


class TestGCNModel:
    def test_layer_dims(self):
        model = GCN(feature_dim=10, hidden_dim=8, num_classes=3, num_layers=4, seed=0)
        assert model.layer_dims == [(10, 8), (8, 8), (8, 8), (8, 3)]

    def test_last_layer_linear_others_relu(self):
        model = GCN(5, 4, 3, num_layers=3, seed=0)
        assert [l.activation for l in model.layers] == ["relu", "relu", "linear"]

    def test_num_parameters(self):
        model = GCN(10, 8, 3, num_layers=2, seed=0)
        assert model.num_parameters() == 10 * 8 + 8 * 3

    def test_forward_shape(self):
        model = GCN(6, 4, 3, num_layers=2, seed=0)
        a_hat = make_a_hat(9)
        logits = model.forward(a_hat, np.random.default_rng(0).normal(size=(9, 6)))
        assert logits.shape == (9, 3)

    def test_single_layer_model(self):
        model = GCN(6, 4, 3, num_layers=1, seed=0)
        assert model.layer_dims == [(6, 3)]

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GCN(6, 4, 3, num_layers=0)

    def test_model_gradient_numerical(self):
        """End-to-end gradient check through a 2-layer GCN."""
        rng = np.random.default_rng(5)
        n = 6
        a_hat = make_a_hat(n, seed=5)
        x = rng.normal(size=(n, 4))
        labels = rng.integers(0, 3, size=n)
        model = GCN(4, 5, 3, num_layers=2, seed=7)
        loss, grads, _ = model.loss_and_gradients(a_hat, x, labels)
        assert loss > 0

        eps = 1e-6
        for layer_idx, layer in enumerate(model.layers):
            w = layer.weight
            for i in range(w.shape[0]):
                for j in range(w.shape[1]):
                    orig = w[i, j]
                    w[i, j] = orig + eps
                    up, _, _ = model.loss_and_gradients(a_hat, x, labels)
                    w[i, j] = orig - eps
                    down, _, _ = model.loss_and_gradients(a_hat, x, labels)
                    w[i, j] = orig
                    numeric = (up - down) / (2 * eps)
                    assert grads[layer_idx][i, j] == pytest.approx(
                        numeric, abs=1e-5
                    ), f"layer {layer_idx} weight ({i},{j})"

    def test_predict_shapes(self):
        model = GCN(6, 4, 3, num_layers=2, seed=0)
        a_hat = make_a_hat(9)
        x = np.random.default_rng(0).normal(size=(9, 6))
        preds = model.predict(a_hat, x)
        probs = model.predict_proba(a_hat, x)
        assert preds.shape == (9,)
        assert probs.shape == (9, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.array_equal(preds, probs.argmax(axis=1))

    def test_deterministic_init(self):
        m1 = GCN(6, 4, 3, seed=2)
        m2 = GCN(6, 4, 3, seed=2)
        for w1, w2 in zip(m1.parameters(), m2.parameters()):
            assert np.array_equal(w1, w2)
