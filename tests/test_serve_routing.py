"""Routing policies: determinism, balancing, and type affinity."""

import pytest

from repro.serve.arrivals import Request
from repro.serve.fleet import INSTANCE_TYPES, FleetSpec
from repro.serve.routing import (
    ROUTING_POLICIES,
    SHARED,
    PowerOfTwoRouting,
    SharedQueueRouting,
    SizeAffinityRouting,
    TenantPinRouting,
    make_routing,
)

SMALL_LARGE = (INSTANCE_TYPES["small"], INSTANCE_TYPES["large"])
ALL_TYPES = tuple(INSTANCE_TYPES[n] for n in ("small", "default", "large"))


def req(graph_size=256, tenant="a", t=0.0, rid=0):
    return Request(
        tenant=tenant, graph_size=graph_size, arrival_time=t, request_id=rid
    )


class TestRegistry:
    def test_registered_policies(self):
        assert set(ROUTING_POLICIES) == {
            "shared_queue", "size_affinity", "po2", "tenant_pin",
        }

    def test_make_routing_dispatch_and_kwargs(self):
        policy = make_routing(
            "size_affinity", SMALL_LARGE, large_threshold=512
        )
        assert isinstance(policy, SizeAffinityRouting)
        assert policy.large_threshold == 512
        with pytest.raises(ValueError, match="unknown routing"):
            make_routing("random", SMALL_LARGE)

    def test_policies_need_at_least_one_type(self):
        with pytest.raises(ValueError):
            SharedQueueRouting(())


class TestSharedQueue:
    def test_single_target_for_everyone(self):
        policy = SharedQueueRouting(ALL_TYPES)
        assert policy.targets() == (SHARED,)
        for t in ALL_TYPES:
            assert policy.serves(t.name) == (SHARED,)
        assert policy.route(req(4096), lambda t: 0) == SHARED


class TestSizeAffinity:
    def test_fast_target_is_lowest_service_scale(self):
        policy = SizeAffinityRouting(ALL_TYPES)
        assert policy.fast_target == "large"
        assert policy.small_targets == ("small", "default")

    def test_large_graphs_route_to_the_fast_type(self):
        policy = SizeAffinityRouting(SMALL_LARGE)
        deep_fast = {"small": 0, "large": 99}.__getitem__
        # Affinity, not balancing: even a deep fast queue gets the
        # large graphs — their service time dominates their latency.
        assert policy.route(req(4096), deep_fast) == "large"
        assert policy.route(req(2048), deep_fast) == "large"

    def test_small_graphs_join_the_shallowest_slow_queue(self):
        policy = SizeAffinityRouting(ALL_TYPES)
        depths = {"small": 5, "default": 2, "large": 0}
        assert policy.route(req(256), depths.__getitem__) == "default"
        depths["default"] = 9
        assert policy.route(req(256), depths.__getitem__) == "small"

    def test_single_type_routes_everything_to_it(self):
        policy = SizeAffinityRouting((INSTANCE_TYPES["large"],))
        assert policy.route(req(1), lambda t: 0) == "large"
        assert policy.route(req(4096), lambda t: 0) == "large"

    def test_each_type_drains_only_its_own_queue(self):
        policy = SizeAffinityRouting(ALL_TYPES)
        assert policy.targets() == ("small", "default", "large")
        assert policy.serves("small") == ("small",)
        assert policy.serves("large") == ("large",)


class TestPowerOfTwo:
    def depths(self, mapping, queried):
        def depth_of(target):
            queried.append(target)
            return mapping[target]

        return depth_of

    def test_picks_the_shallower_of_the_sampled_pair(self):
        mapping = {"small": 7, "default": 3, "large": 5}
        policy = PowerOfTwoRouting(ALL_TYPES, seed=0)
        for i in range(200):
            queried = []
            pick = policy.route(req(rid=i), self.depths(mapping, queried))
            assert len(queried) == 2
            # Never the strictly deeper queue of the sampled pair.
            assert mapping[pick] == min(mapping[t] for t in queried)

    def test_deterministic_under_a_fixed_seed(self):
        mapping = {"small": 1, "default": 1, "large": 1}

        def picks(seed):
            policy = PowerOfTwoRouting(ALL_TYPES, seed=seed)
            return [
                policy.route(req(rid=i), mapping.__getitem__)
                for i in range(50)
            ]

        assert picks(3) == picks(3)
        assert picks(3) != picks(4)  # the seed actually matters

    def test_depth_ties_break_to_declaration_order(self):
        policy = PowerOfTwoRouting(SMALL_LARGE, seed=0)
        for i in range(50):
            assert policy.route(req(rid=i), lambda t: 0) == "small"

    def test_single_type_short_circuits(self):
        policy = PowerOfTwoRouting((INSTANCE_TYPES["small"],), seed=0)
        assert policy.route(req(), lambda t: 0) == "small"


class TestTenantPin:
    def test_first_seen_round_robin(self):
        policy = TenantPinRouting(SMALL_LARGE)
        assert policy.route(req(tenant="t0"), lambda t: 0) == "small"
        assert policy.route(req(tenant="t1"), lambda t: 0) == "large"
        assert policy.route(req(tenant="t2"), lambda t: 0) == "small"

    def test_pins_are_sticky(self):
        policy = TenantPinRouting(SMALL_LARGE)
        first = policy.route(req(tenant="t0", rid=0), lambda t: 0)
        for i in range(1, 20):
            assert (
                policy.route(req(tenant="t0", rid=i, graph_size=4096), lambda t: 0)
                == first
            )
        assert policy.pin_for("t0") == first


class TestRoutedServing:
    """Routing inside the full engine: determinism and batch ceilings."""

    def scenario(self, **overrides):
        from repro.serve.scenario import ServingScenario

        params = dict(
            dataset="ppi",
            scale=0.05,
            qps=100.0,
            duration_seconds=0.5,
            num_tenants=3,
            max_batch=8,
            fleet="small:2,large:1",
            seed=1,
        )
        params.update(overrides)
        return ServingScenario(**params)

    @pytest.mark.parametrize(
        "routing", ["size_affinity", "po2", "tenant_pin"]
    )
    def test_repeated_runs_are_identical(self, routing):
        from repro.serve.scenario import run_serving_scenario

        a = run_serving_scenario(self.scenario(routing=routing))
        b = run_serving_scenario(self.scenario(routing=routing))
        assert a.metrics() == b.metrics()
        assert (a.fleet, a.routing) == (b.fleet, b.routing)

    def test_size_affinity_respects_the_small_batch_ceiling(self):
        from repro.serve.scenario import simulate_serving_scenario

        report = simulate_serving_scenario(
            self.scenario(routing="size_affinity", qps=200.0)
        )
        usage = {u.name: u for u in report.per_type}
        # The aggregate busy integral is maintained incrementally in the
        # typed pool; a drifting cache shows up here as utilization
        # outside [0, 1].
        assert 0.0 <= report.utilization <= 1.0
        small = usage["small"]
        assert small.batches > 0
        # small's hardware ceiling is 4 even though the scheduler's
        # max_batch is 8: no batch may exceed it, so on average too.
        assert small.completed <= 4 * small.batches
        assert usage["large"].completed > 0

    @pytest.mark.parametrize(
        "faults",
        [
            "default",
            "mtbf=0.2,mttr=0.05",
            "zones=2,zone_mtbf=0.3,zone_mttr=0.1",
        ],
    )
    def test_crash_paths_keep_utilization_in_bounds(self, faults):
        from repro.serve.scenario import simulate_serving_scenario

        report = simulate_serving_scenario(
            self.scenario(routing="size_affinity", qps=200.0, faults=faults)
        )
        # Crash teardown accrues the interrupted instance's partial busy
        # time and shrinks the cached aggregates in lockstep; a double
        # bill or a negative cached busy count shows up here as
        # utilization outside [0, 1] (per slice too).
        assert report.crashes > 0
        assert 0.0 <= report.utilization <= 1.0
        for usage in report.per_type:
            assert usage.busy_seconds >= 0.0
            assert usage.instance_seconds >= 0.0
            assert usage.busy_seconds <= usage.instance_seconds + 1e-9

    def test_tenant_pin_keeps_each_tenant_on_one_type(self):
        from repro.serve.scenario import simulate_serving_scenario

        report = simulate_serving_scenario(
            self.scenario(routing="tenant_pin", num_tenants=2)
        )
        usage = {u.name: u for u in report.per_type}
        # Two tenants, two types: both slices see traffic.
        assert usage["small"].completed > 0
        assert usage["large"].completed > 0
