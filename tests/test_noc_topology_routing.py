"""Unit tests for mesh topology and deterministic routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import multicast_tree, route_links, tree_depth_order, xyz_route
from repro.noc.topology import Mesh2D, Mesh3D


class TestMesh3D:
    topo = Mesh3D(8, 8, 3)

    def test_router_count(self):
        assert self.topo.num_routers == 192
        assert self.topo.routers_per_tier == 64

    def test_coords_roundtrip_exhaustive(self):
        for r in range(self.topo.num_routers):
            x, y, z = self.topo.coords(r)
            assert self.topo.router_id(x, y, z) == r

    def test_coords_out_of_range(self):
        with pytest.raises(IndexError):
            self.topo.coords(192)
        with pytest.raises(IndexError):
            self.topo.router_id(8, 0, 0)

    def test_corner_neighbors(self):
        assert len(self.topo.neighbors(0)) == 3  # corner of bottom tier

    def test_center_neighbors(self):
        center = self.topo.router_id(4, 4, 1)
        assert len(self.topo.neighbors(center)) == 6

    def test_neighbors_symmetric(self):
        for r in range(0, self.topo.num_routers, 7):
            for n in self.topo.neighbors(r):
                assert r in self.topo.neighbors(n)

    def test_link_count_formula(self):
        # Directed links: 2 * (links_x + links_y + links_z)
        w, h, t = 8, 8, 3
        expected = 2 * ((w - 1) * h * t + w * (h - 1) * t + w * h * (t - 1))
        assert len(self.topo.links()) == expected

    def test_vertical_detection(self):
        a = self.topo.router_id(2, 2, 0)
        b = self.topo.router_id(2, 2, 1)
        assert self.topo.is_vertical((a, b))
        c = self.topo.router_id(3, 2, 0)
        assert not self.topo.is_vertical((a, c))

    def test_local_ports(self):
        inj = self.topo.injection_link(5)
        ej = self.topo.ejection_link(5)
        assert inj == (5 + 192, 5)
        assert ej == (5, 5 + 192)
        assert self.topo.is_local(inj)
        assert self.topo.is_local(ej)
        assert not self.topo.is_vertical(inj)

    def test_local_port_range_check(self):
        with pytest.raises(IndexError):
            self.topo.injection_link(192)

    def test_distance(self):
        a = self.topo.router_id(0, 0, 0)
        b = self.topo.router_id(3, 4, 2)
        assert self.topo.distance(a, b) == 9
        assert self.topo.distance(a, a) == 0

    def test_tier_routers(self):
        tier1 = self.topo.tier_routers(1)
        assert len(tier1) == 64
        assert all(self.topo.coords(r)[2] == 1 for r in tier1)
        with pytest.raises(IndexError):
            self.topo.tier_routers(3)

    def test_mesh2d_is_single_tier(self):
        flat = Mesh2D(4, 5)
        assert flat.tiers == 1
        assert flat.num_routers == 20

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh3D(0, 8, 3)


class TestRouting:
    topo = Mesh3D(8, 8, 3)

    def test_route_endpoints(self):
        path = xyz_route(self.topo, 0, 100)
        assert path[0] == 0
        assert path[-1] == 100

    def test_route_is_minimal(self):
        for src, dst in [(0, 191), (5, 77), (64, 10)]:
            path = xyz_route(self.topo, src, dst)
            assert len(path) - 1 == self.topo.distance(src, dst)

    def test_route_steps_are_links(self):
        path = xyz_route(self.topo, 3, 150)
        for a, b in route_links(path):
            assert b in self.topo.neighbors(a)

    def test_dimension_order(self):
        """X must be fully resolved before Y, and Y before Z."""
        src = self.topo.router_id(0, 0, 0)
        dst = self.topo.router_id(3, 2, 1)
        path = xyz_route(self.topo, src, dst)
        coords = [self.topo.coords(r) for r in path]
        xs = [c[0] for c in coords]
        # x changes first, then stays; y after; z last.
        assert xs == [0, 1, 2, 3, 3, 3, 3]
        assert [c[2] for c in coords][:-1] == [0] * 6

    def test_self_route(self):
        assert xyz_route(self.topo, 7, 7) == [7]

    def test_multicast_tree_is_tree(self):
        src = 0
        dests = tuple(self.topo.tier_routers(2)[:10])
        tree = multicast_tree(self.topo, src, dests)
        # Every link has exactly one parent entry; parents are in the tree.
        for link, parent in tree.items():
            assert parent is None or parent in tree
        # The set of link destinations is unique (no reconvergence).
        heads = [l[1] for l in tree]
        assert len(heads) == len(set(heads))

    def test_multicast_tree_reaches_all_dests(self):
        src = 5
        dests = (17, 100, 189)
        tree = multicast_tree(self.topo, src, dests)
        reached = {l[1] for l in tree}
        assert set(dests) <= reached

    def test_multicast_tree_smaller_than_unicast_paths(self):
        src = 0
        dests = tuple(self.topo.tier_routers(0)[1:17])
        tree = multicast_tree(self.topo, src, dests)
        total_unicast = sum(
            len(xyz_route(self.topo, src, d)) - 1 for d in dests
        )
        assert len(tree) < total_unicast

    def test_multicast_rejects_empty(self):
        with pytest.raises(ValueError):
            multicast_tree(self.topo, 0, ())

    def test_multicast_rejects_self(self):
        with pytest.raises(ValueError):
            multicast_tree(self.topo, 0, (0,))

    def test_tree_depth_order_parents_first(self):
        tree = multicast_tree(self.topo, 0, tuple(range(20, 30)))
        order = tree_depth_order(tree)
        seen = set()
        for link in order:
            parent = tree[link]
            if parent is not None:
                assert parent in seen
            seen.add(link)

    @given(src=st.integers(0, 191), dst=st.integers(0, 191))
    @settings(max_examples=60, deadline=None)
    def test_route_valid_property(self, src, dst):
        path = xyz_route(self.topo, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == self.topo.distance(src, dst)
        assert len(set(path)) == len(path)  # no revisits
