"""Tests for configurable dimension-order routing (vertical-first ablation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import dimension_order_route, multicast_tree
from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.packet import Message
from repro.noc.topology import Mesh3D

TOPO = Mesh3D(8, 8, 3)


class TestDimensionOrderRoute:
    def test_zxy_resolves_z_first(self):
        src = TOPO.router_id(0, 0, 0)
        dst = TOPO.router_id(2, 1, 2)
        path = dimension_order_route(TOPO, src, dst, "zxy")
        zs = [TOPO.coords(r)[2] for r in path]
        assert zs[:3] == [0, 1, 2]  # both vertical hops happen first
        assert all(z == 2 for z in zs[3:])

    def test_all_orders_minimal(self):
        src, dst = 3, 180
        expected = TOPO.distance(src, dst)
        for order in ("xyz", "zxy", "yxz", "zyx", "xzy", "yzx"):
            path = dimension_order_route(TOPO, src, dst, order)
            assert len(path) - 1 == expected, order

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            dimension_order_route(TOPO, 0, 1, "xxz")

    def test_tree_valid_for_zxy(self):
        dests = tuple(TOPO.tier_routers(0)[:8])
        tree = multicast_tree(TOPO, TOPO.router_id(4, 4, 1), dests, order="zxy")
        heads = [l[1] for l in tree]
        assert len(heads) == len(set(heads))  # still a tree
        assert set(dests) <= set(heads)

    @given(
        src=st.integers(0, 191),
        dst=st.integers(0, 191),
        order=st.sampled_from(["xyz", "zxy", "yzx"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_route_property(self, src, dst, order):
        path = dimension_order_route(TOPO, src, dst, order)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == TOPO.distance(src, dst)


class TestSchedulerRoutingOrder:
    def test_config_accepts_order(self):
        cfg = NoCConfig(routing_order="zxy")
        assert cfg.routing_order == "zxy"
        with pytest.raises(ValueError):
            NoCConfig(routing_order="abc")

    def test_uncontended_latency_order_invariant(self):
        """Minimal routes have equal length, so a single message's latency
        is identical under any dimension order."""
        msg = Message(src=0, dests=(TOPO.router_id(5, 3, 2),), size_bits=640, msg_id=0)
        results = {
            order: StaticScheduler(TOPO, NoCConfig(routing_order=order))
            .simulate([msg])
            .makespan_cycles
            for order in ("xyz", "zxy")
        }
        assert results["xyz"] == results["zxy"]

    def test_orders_use_different_links(self):
        msgs = [
            Message(
                src=TOPO.router_id(0, 0, 1),
                dests=(TOPO.router_id(4, 4, 0),),
                size_bits=640,
                msg_id=0,
            )
        ]
        xyz = StaticScheduler(TOPO, NoCConfig(routing_order="xyz")).simulate(msgs)
        zxy = StaticScheduler(TOPO, NoCConfig(routing_order="zxy")).simulate(msgs)
        assert set(xyz.link_stats.flits) != set(zxy.link_stats.flits)
        assert xyz.total_flit_hops == zxy.total_flit_hops
