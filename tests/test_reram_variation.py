"""Unit tests for ReRAM device-variation and fault injection."""

import numpy as np
import pytest

from repro.reram.variation import (
    NoisyCrossbar,
    VariationModel,
    noisy_matvec,
    relative_error_study,
)


class TestVariationModel:
    def test_ideal_flag(self):
        assert VariationModel().is_ideal
        assert not VariationModel(sigma=0.1).is_ideal

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationModel(sigma=-0.1)
        with pytest.raises(ValueError):
            VariationModel(stuck_off_rate=1.5)
        with pytest.raises(ValueError):
            VariationModel(stuck_off_rate=0.6, stuck_on_rate=0.6)

    def test_ideal_perturb_is_identity(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, size=(8, 8))
        out = VariationModel().perturb(codes, 4, rng)
        assert np.array_equal(out, codes)

    def test_stuck_off_zeros_cells(self):
        rng = np.random.default_rng(0)
        codes = np.full((50, 50), 3)
        out = VariationModel(stuck_off_rate=0.3).perturb(codes, 4, rng)
        frac_zero = (out == 0).mean()
        assert 0.2 < frac_zero < 0.4

    def test_stuck_on_saturates_cells(self):
        rng = np.random.default_rng(0)
        codes = np.zeros((50, 50), dtype=int)
        out = VariationModel(stuck_on_rate=0.3).perturb(codes, 4, rng)
        frac_on = (out == 3).mean()
        assert 0.2 < frac_on < 0.4

    def test_sigma_spreads_values(self):
        rng = np.random.default_rng(0)
        codes = np.full((100, 100), 2)
        out = VariationModel(sigma=0.2).perturb(codes, 4, rng)
        assert out.std() > 0
        assert abs(out.mean() / 2 - 1.0) < 0.1  # lognormal(0, s) mean ~ e^{s^2/2}


class TestNoisyCrossbar:
    def test_ideal_matches_exact(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 4, size=(8, 8))
        ideal = NoisyCrossbar(8, 8, variation=VariationModel())
        ideal.program(codes)
        wave = rng.integers(0, 2, size=8)
        assert np.allclose(ideal.mac_wave(wave), wave @ codes)

    def test_noisy_deviates(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(1, 4, size=(16, 16))
        noisy = NoisyCrossbar(16, 16, variation=VariationModel(sigma=0.3, seed=1))
        noisy.program(codes)
        wave = np.ones(16, dtype=int)
        assert not np.allclose(noisy.mac_wave(wave), wave @ codes)

    def test_faults_fixed_noise_redrawn(self):
        codes = np.full((8, 8), 2)
        xb = NoisyCrossbar(8, 8, variation=VariationModel(sigma=0.2, seed=3))
        xb.program(codes)
        first = xb.mac_wave(np.ones(8, dtype=int))
        xb.program(codes)
        second = xb.mac_wave(np.ones(8, dtype=int))
        assert not np.allclose(first, second)  # reprogramming redraws error

    def test_rejects_non_binary_wave(self):
        xb = NoisyCrossbar(4, 4)
        xb.program(np.zeros((4, 4), dtype=int))
        with pytest.raises(ValueError, match="binary"):
            xb.mac_wave(np.array([0, 2, 0, 0]))


class TestNoisyMatvec:
    def test_ideal_matches_quantized(self):
        rng = np.random.default_rng(0)
        w = rng.normal(scale=0.3, size=(32, 24))
        x = rng.normal(scale=0.3, size=32)
        got = noisy_matvec(w, x, VariationModel())
        assert np.abs(got - x @ w).max() < 5e-3

    def test_error_grows_with_sigma(self):
        errors = [
            relative_error_study(VariationModel(sigma=s), shape=(32, 32), trials=3)
            for s in (0.0, 0.1, 0.4)
        ]
        assert errors[0] < 0.01
        assert errors[0] < errors[1] < errors[2]

    def test_error_grows_with_fault_rate(self):
        clean = relative_error_study(VariationModel(), shape=(32, 32), trials=3)
        faulty = relative_error_study(
            VariationModel(stuck_off_rate=0.05), shape=(32, 32), trials=3
        )
        assert faulty > clean

    def test_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            noisy_matvec(np.zeros((4, 4)), np.zeros(5), VariationModel())

    def test_study_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            relative_error_study(VariationModel(), trials=0)

    def test_moderate_variation_tolerable(self):
        """The robustness headline: typical device variation (sigma ~ 0.1)
        keeps MAC error in the low percent range."""
        err = relative_error_study(VariationModel(sigma=0.1), shape=(64, 64), trials=3)
        assert err < 0.15
