"""Fault injection, retries/hedging, and availability-aware planning.

Four layers under test:

* the declarative pieces — :class:`FaultSpec` parsing/rendering and the
  deterministic :class:`RetryPolicy` delays;
* the seeded :class:`FaultInjector` decision stream;
* the engine under fire — crashes, slowdowns, and zone outages against
  a loaded accelerator-calibrated workload, with the conservation and
  determinism invariants the fig. 12 experiment leans on;
* the N+k capacity planner — ``plan_fleet(availability=k)`` must agree
  with brute-force enumeration over reduced fleets.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.arrivals import Request
from repro.serve.capacity import (
    enumerate_fleets,
    meets_slo,
    plan_fleet,
    survivable_fleets,
)
from repro.serve.faults import (
    DEFAULT_FAULT_SPEC_TEXT,
    FaultInjector,
    FaultSpec,
    coerce_faults,
)
from repro.serve.fleet import FleetSpec, TypedReplicaPool
from repro.serve.retry import RetryPolicy, make_retry_policy
from repro.serve.scenario import (
    ServingScenario,
    run_serving_scenario,
    scenario_with,
    simulate_serving_scenario,
)
from repro.serve.service import LinearServiceModel

# ---------------------------------------------------------------------------
# FaultSpec
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_round_trips_through_render(self):
        spec = FaultSpec.parse("mtbf=0.4,mttr=0.1,zones=2,zone_mtbf=4.0")
        assert FaultSpec.parse(spec.render()) == spec

    def test_default_keyword_expands_to_the_stock_zoo(self):
        assert FaultSpec.parse("default") == FaultSpec.parse(
            DEFAULT_FAULT_SPEC_TEXT
        )
        assert FaultSpec.parse("default").enabled

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultSpec.parse("mtbf=0.4,typo=1")

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            FaultSpec.parse("mtbf=fast")
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("mtbf")
        with pytest.raises(ValueError, match="empty"):
            FaultSpec.parse("  ")

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(mtbf=-1.0)
        with pytest.raises(ValueError, match="positive"):
            FaultSpec(mtbf=1.0, mttr=0.0)
        with pytest.raises(ValueError, match="slow_factor"):
            FaultSpec(slow_mtbf=1.0, slow_factor=1.0)
        with pytest.raises(ValueError, match="zones"):
            FaultSpec(zones=0)

    def test_disabled_when_every_rate_is_zero(self):
        assert not FaultSpec().enabled
        assert FaultSpec(mtbf=0.5).enabled
        assert FaultSpec(slow_mtbf=0.5).enabled
        assert FaultSpec(zones=2, zone_mtbf=0.5).enabled

    def test_coerce_faults(self):
        assert coerce_faults(None) is None
        assert coerce_faults("") is None
        assert coerce_faults("   ") is None
        assert coerce_faults(FaultSpec()) is None  # disabled spec
        spec = coerce_faults("mtbf=0.5")
        assert isinstance(spec, FaultSpec) and spec.mtbf == 0.5


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def _request(self, rid: int = 7, arrival: float = 0.0) -> Request:
        return Request(
            tenant="t", graph_size=100, arrival_time=arrival, request_id=rid
        )

    def test_none_mode_never_retries(self):
        assert make_retry_policy("none") is None
        policy = RetryPolicy(mode="none")
        assert not policy.enabled
        assert policy.next_delay(self._request(), 1, 0.0) is None

    def test_backoff_doubles_and_respects_max_attempts(self):
        policy = RetryPolicy(mode="backoff", max_attempts=3, base_seconds=0.01)
        request = self._request()
        d1 = policy.next_delay(request, 1, 0.0)
        d2 = policy.next_delay(request, 2, 0.0)
        assert d1 is not None and d2 is not None
        # Jitter scales each delay into [0.5, 1.0) of its nominal value.
        assert 0.005 <= d1 < 0.01
        assert 0.01 <= d2 < 0.02
        assert policy.next_delay(request, 3, 0.0) is None

    def test_jitter_is_deterministic_and_request_dependent(self):
        policy = RetryPolicy(mode="backoff", seed=5)
        a = policy.next_delay(self._request(rid=1), 1, 0.0)
        b = policy.next_delay(self._request(rid=1), 1, 0.0)
        c = policy.next_delay(self._request(rid=2), 1, 0.0)
        assert a == b
        assert a != c

    def test_deadline_mode_gives_up_on_doomed_retries(self):
        policy = RetryPolicy(
            mode="deadline", max_attempts=10, base_seconds=0.01,
            deadline_seconds=0.1,
        )
        request = self._request(arrival=0.0)
        assert policy.next_delay(request, 1, 0.05) is not None
        assert policy.next_delay(request, 1, 0.099) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown retry mode"):
            RetryPolicy(mode="always")
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(mode="backoff", max_attempts=0)
        with pytest.raises(ValueError, match="base_seconds"):
            RetryPolicy(mode="backoff", base_seconds=0.0)


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_decision_stream(self):
        spec = FaultSpec.parse("default")
        a = FaultInjector(spec, seed=3, slices=2)
        b = FaultInjector(spec, seed=3, slices=2)
        assert [a.next_crash_gap(2) for _ in range(5)] == [
            b.next_crash_gap(2) for _ in range(5)
        ]
        assert a.pick_victim((4, 5, 6)) == b.pick_victim((4, 5, 6))
        assert a.pick_zone() == b.pick_zone()

    def test_different_seeds_diverge(self):
        spec = FaultSpec.parse("default")
        a = FaultInjector(spec, seed=0, slices=1)
        b = FaultInjector(spec, seed=1, slices=1)
        assert [a.next_crash_gap(1) for _ in range(4)] != [
            b.next_crash_gap(1) for _ in range(4)
        ]

    def test_empty_slice_has_no_victim_but_a_finite_gap(self):
        injector = FaultInjector(FaultSpec(mtbf=0.5), seed=0, slices=1)
        assert injector.pick_victim(()) is None
        assert injector.next_crash_gap(0) > 0.0

    def test_zone_mapping_is_modular(self):
        injector = FaultInjector(
            FaultSpec(zones=3, zone_mtbf=1.0), seed=0, slices=1
        )
        assert [injector.zone_of(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]


# ---------------------------------------------------------------------------
# The engine under fire
# ---------------------------------------------------------------------------
#: A loaded regime on the accelerator-calibrated service model: crashes
#: regularly hit busy instances, so the reliability paths actually run.
_FAULTED = ServingScenario(
    qps=150.0,
    duration_seconds=2.0,
    instances=4,
    fleet="small:2,default:2",
    routing="size_affinity",
    slo_seconds=0.1,
    faults="default",
    seed=0,
)


class TestFaultedEngine:
    def test_faulted_run_is_deterministic(self):
        a = run_serving_scenario(_FAULTED, store=None)
        b = run_serving_scenario(_FAULTED, store=None)
        assert a.metrics() == b.metrics()
        assert a.crashes > 0

    def test_crashes_fail_requests_and_conserve_the_offered_load(self):
        report = simulate_serving_scenario(_FAULTED)
        assert report.crashes > 0
        assert report.failed > 0  # some in-flight batch died
        assert report.completed + report.failed == report.offered
        assert report.availability == report.completed / report.offered
        assert 0.0 < report.availability < 1.0
        assert "killed" in report.render()
        assert "availability" in report.render()

    def test_recoveries_replace_non_retiring_crash_victims(self):
        report = simulate_serving_scenario(_FAULTED)
        assert 0 < report.recoveries <= report.crashes

    def test_retries_recover_failed_requests(self):
        bare = simulate_serving_scenario(_FAULTED)
        retried = simulate_serving_scenario(
            scenario_with(_FAULTED, retry="backoff")
        )
        assert retried.retries > 0
        assert retried.failed < bare.failed
        assert retried.availability > bare.availability

    def test_hedging_fires_and_settles_every_copy(self):
        report = simulate_serving_scenario(
            scenario_with(_FAULTED, retry="backoff", hedge_seconds=0.04)
        )
        assert report.hedges_fired > 0
        # Every fired hedge settles exactly once: cancelled at a losing
        # departure or absorbed by a crash -- never double-served.
        assert report.hedges_cancelled <= report.hedges_fired
        assert report.completed + report.failed == report.offered

    def test_slowdowns_degrade_latency_without_failures(self):
        slow = simulate_serving_scenario(
            scenario_with(
                _FAULTED,
                faults="slow_mtbf=0.4,slow_factor=4.0,slow_duration=0.2",
            )
        )
        clean = simulate_serving_scenario(scenario_with(_FAULTED, faults=""))
        assert slow.failed == 0
        assert slow.crashes == 0
        assert slow.slowdowns > 0
        assert slow.latency.p99 > clean.latency.p99

    def test_zone_outage_kills_correlated_instances(self):
        report = simulate_serving_scenario(
            scenario_with(
                _FAULTED, faults="zones=2,zone_mtbf=0.5,zone_mttr=0.1"
            )
        )
        assert report.zone_outages > 0
        assert report.crashes > 0  # outage victims count as crashes

    def test_faults_off_is_the_plain_engine_bit_for_bit(self):
        plain = simulate_serving_scenario(scenario_with(_FAULTED, faults=""))
        spec = ServingScenario(
            qps=_FAULTED.qps,
            duration_seconds=_FAULTED.duration_seconds,
            instances=_FAULTED.instances,
            fleet=_FAULTED.fleet,
            routing=_FAULTED.routing,
            slo_seconds=_FAULTED.slo_seconds,
            seed=_FAULTED.seed,
        )
        baseline = simulate_serving_scenario(spec)
        assert plain.render() == baseline.render()
        assert plain.latency.p99 == baseline.latency.p99
        assert plain.completed == baseline.completed

    def test_autoscaler_rescues_a_faulted_fleet(self):
        report = simulate_serving_scenario(
            scenario_with(
                _FAULTED,
                autoscaler="target-util",
                min_instances=2,
                max_instances=8,
            )
        )
        assert report.crashes > 0
        assert report.completed > 0


class TestScenarioKnobs:
    def test_faults_string_normalized_to_canonical_form(self):
        scenario = scenario_with(_FAULTED, faults="mtbf=0.5, mttr=0.1")
        assert scenario.faults == "mtbf=0.5,mttr=0.1"

    def test_disabled_faults_normalize_to_empty(self):
        assert scenario_with(_FAULTED, faults="mtbf=0").faults == ""

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            scenario_with(_FAULTED, faults="nope=1")
        with pytest.raises(ValueError, match="retry"):
            scenario_with(_FAULTED, retry="sometimes")
        with pytest.raises(ValueError):
            scenario_with(_FAULTED, hedge_seconds=-0.01)

    def test_auto_label_names_the_reliability_stance(self):
        label = scenario_with(
            _FAULTED, retry="backoff", hedge_seconds=0.04
        ).display_label
        assert "faulted" in label
        assert "retry-backoff" in label
        assert "hedge40ms" in label


# ---------------------------------------------------------------------------
# Degraded-capacity admission
# ---------------------------------------------------------------------------
class TestAdmissionTightening:
    def test_budget_scales_with_capacity_fraction(self):
        controller = AdmissionController(mode="shed", queue_budget=10)
        assert controller.admit("t", 0.0, queue_depth=5).admitted
        # Half the fleet down -> budget 5 -> depth 5 is refused.
        refused = controller.admit(
            "t", 0.0, queue_depth=5, capacity_fraction=0.5
        )
        assert not refused.admitted and refused.reason == "queue"

    def test_budget_never_drops_below_one_slot(self):
        controller = AdmissionController(mode="shed", queue_budget=10)
        assert controller.admit(
            "t", 0.0, queue_depth=0, capacity_fraction=0.0
        ).admitted
        assert not controller.admit(
            "t", 0.0, queue_depth=1, capacity_fraction=0.0
        ).admitted

    def test_full_capacity_leaves_the_budget_alone(self):
        controller = AdmissionController(mode="shed", queue_budget=10)
        assert controller.admit(
            "t", 0.0, queue_depth=9, capacity_fraction=1.0
        ).admitted


# ---------------------------------------------------------------------------
# Typed-pool crash/restore accounting
# ---------------------------------------------------------------------------
class TestPoolCrashAccounting:
    def test_crash_of_busy_instance_bills_partial_busy_seconds(self):
        pool = TypedReplicaPool(FleetSpec.parse("default:2"))
        handle = pool.acquire(0, now=0.0)
        assert pool.busy_count == 1
        state = pool.crash(handle, now=0.5)
        assert state == "busy"
        assert pool.busy_count == 0
        assert pool.provisioned == 1
        usage = pool.usage(now=1.0)
        # Half a second busy on the crashed instance, never negative.
        assert usage[0].busy_seconds == pytest.approx(0.5)

    def test_crash_of_free_instance_only_sheds_capacity(self):
        pool = TypedReplicaPool(FleetSpec.parse("default:2"))
        victim = pool.instance_ids(0)[0]
        assert pool.crash((0, victim), now=0.25) == "free"
        assert pool.provisioned == 1
        assert pool.busy_count == 0

    def test_restore_reprovisions_with_warmup(self):
        pool = TypedReplicaPool(
            FleetSpec.parse("default:1"), default_warmup_seconds=0.1
        )
        victim = pool.instance_ids(0)[0]
        pool.crash((0, victim), now=0.0)
        assert pool.provisioned == 0
        handle, ready_at = pool.restore(0, now=1.0)
        assert pool.provisioned == 1
        assert ready_at == pytest.approx(1.1)
        assert pool.warming_count == 1
        pool.warmed(handle, now=ready_at)
        assert pool.ready_count == 1

    def test_instance_ids_never_reused_across_crashes(self):
        pool = TypedReplicaPool(FleetSpec.parse("default:1"))
        first = pool.instance_ids(0)[0]
        pool.crash((0, first), now=0.0)
        replacement, _ = pool.restore(0, now=0.1)
        assert replacement[1] != first


# ---------------------------------------------------------------------------
# N+k capacity planning
# ---------------------------------------------------------------------------
#: Fast probes: the heavy accelerator model is irrelevant to planner
#: correctness, and the linear model keeps the brute-force sweep cheap.
_PLAN_SERVICE = LinearServiceModel(base_seconds=0.004, per_node_seconds=2e-6)
_PLAN_SCENARIO = ServingScenario(
    qps=250.0, duration_seconds=1.0, slo_seconds=0.05, seed=3
)


class TestSurvivableFleets:
    def test_single_failure_reductions(self):
        spec = FleetSpec.parse("small:2,large:1")
        reduced = {f.render() for f in survivable_fleets(spec, 1)}
        assert reduced == {"small:1,large:1", "small:2"}

    def test_double_failure_reductions(self):
        spec = FleetSpec.parse("small:2,large:1")
        reduced = {f.render() for f in survivable_fleets(spec, 2)}
        assert reduced == {"small:1", "large:1"}

    def test_reductions_are_deduplicated_and_sorted(self):
        spec = FleetSpec.parse("small:3")
        assert [f.render() for f in survivable_fleets(spec, 1)] == ["small:2"]

    def test_validation(self):
        with pytest.raises(ValueError, match="failures"):
            survivable_fleets(FleetSpec.parse("small:2"), 0)
        with pytest.raises(ValueError, match="cannot survive"):
            survivable_fleets(FleetSpec.parse("small:2"), 2)


class TestAvailabilityPlanning:
    def _brute_force(self, availability: int) -> str | None:
        """Exhaustive N+k search the planner must agree with."""
        def feasible(fleet: FleetSpec) -> bool:
            record = run_serving_scenario(
                scenario_with(
                    _PLAN_SCENARIO,
                    fleet=fleet.render(),
                    routing="size_affinity",
                    autoscaler="none",
                    admission="none",
                ),
                service=_PLAN_SERVICE,
                store=None,
            )
            return meets_slo(record, 0.01)

        for fleet in enumerate_fleets(("small", "default"), 3, 4):
            if fleet.total() <= availability:
                continue
            if not feasible(fleet):
                continue
            if availability and not all(
                feasible(r) for r in survivable_fleets(fleet, availability)
            ):
                continue
            return fleet.render()
        return None

    @pytest.mark.parametrize("availability", [0, 1])
    def test_plan_matches_brute_force(self, availability: int):
        plan = plan_fleet(
            _PLAN_SCENARIO,
            candidate_types=("small", "default"),
            max_per_type=3,
            max_total=4,
            service=_PLAN_SERVICE,
            availability=availability,
        )
        assert plan.fleet == self._brute_force(availability)

    def test_availability_never_gets_cheaper(self):
        plans = {
            k: plan_fleet(
                _PLAN_SCENARIO,
                candidate_types=("small", "default"),
                max_per_type=3,
                max_total=4,
                service=_PLAN_SERVICE,
                availability=k,
            )
            for k in (0, 1)
        }
        assert plans[0].feasible and plans[1].feasible
        assert plans[1].cost_rate >= plans[0].cost_rate

    def test_probes_run_fault_free(self):
        plan = plan_fleet(
            scenario_with(_PLAN_SCENARIO, faults="default", retry="backoff"),
            candidate_types=("small",),
            max_per_type=2,
            service=_PLAN_SERVICE,
            availability=1,
        )
        for record in plan.evaluated.values():
            assert record.crashes == 0
            assert record.failed == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="availability"):
            plan_fleet(_PLAN_SCENARIO, availability=-1)


# ---------------------------------------------------------------------------
# Fig. 12
# ---------------------------------------------------------------------------
class TestFig12:
    def test_retry_plus_hedging_recovers_the_slo_attainment(self):
        from repro.experiments.fig12_availability import (
            RECOVERY_TARGET,
            run_fig12,
        )

        result = run_fig12(seed=0)
        hedged = result.point("faults/retry+hedge")
        bare = result.point("faults/no-retry")
        assert hedged.recovery >= RECOVERY_TARGET
        assert hedged.recovery > bare.recovery
        assert hedged.availability >= bare.availability
        assert result.point("fault-free").recovery == pytest.approx(1.0)
        # The capital alternative is priced, and never cheaper than N+0.
        assert result.plan_fleet_n1
        assert result.plan_cost_n1 >= result.plan_cost_n0
        rendered = result.table().render()
        assert "retry+hedge" in rendered
