"""Differential + property tests for the incremental-cost annealer.

The incremental engine maintains exact integer per-leg distance sums, so
``cost_mode="incremental"`` must be *bit-identical* to the full-recompute
oracle: same seed, same accepted/rejected proposal sequence, same best
:class:`StageMap`.  These tests sweep seeds, layer counts, training and
inference pipelines, and non-uniform leg volumes, and property-test the
running delta-cost state against :func:`_mapping_cost` recomputation
under long random swap sequences (with rejections/reverts mixed in).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ReGraphXConfig
from repro.core.mapping import (
    IncrementalCost,
    _mapping_cost,
    anneal_mapping,
    communication_legs,
    contiguous_mapping,
    default_sa_iterations,
    random_mapping,
    stage_names,
)


def _coords(config: ReGraphXConfig) -> np.ndarray:
    topo = config.topology
    return np.asarray(
        [topo.coords(r) for r in range(topo.num_routers)], dtype=float
    )


def _volumes(num_layers: int, training: bool, scale: float = 1.0):
    legs = communication_legs(num_layers, training)
    return {leg: scale * (i + 1) for i, leg in enumerate(legs)}


class TestDifferential:
    """Incremental vs full cost mode: identical costs and best maps."""

    @pytest.mark.parametrize("num_layers", [1, 2, 3, 4])
    @pytest.mark.parametrize("training", [True, False])
    def test_layers_and_modes(self, num_layers, training):
        config = ReGraphXConfig(num_layers=num_layers)
        volumes = _volumes(num_layers, training, scale=7.25)
        for seed in (0, 1):
            full = anneal_mapping(
                config, volumes, iterations=150, seed=seed,
                training=training, cost_mode="full",
            )
            incremental = anneal_mapping(
                config, volumes, iterations=150, seed=seed,
                training=training, cost_mode="incremental",
            )
            assert incremental.assignment == full.assignment, (seed, num_layers)

    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_seeds_uniform_volumes(self, seed):
        config = ReGraphXConfig()
        full = anneal_mapping(
            config, None, iterations=200, seed=seed, cost_mode="full"
        )
        incremental = anneal_mapping(
            config, None, iterations=200, seed=seed, cost_mode="incremental"
        )
        assert incremental.assignment == full.assignment

    def test_final_costs_bit_identical(self):
        config = ReGraphXConfig(num_layers=2)
        legs = communication_legs(2)
        volumes = _volumes(2, True, scale=0.125)
        coords = _coords(config)
        for seed in range(4):
            maps = [
                anneal_mapping(
                    config, volumes, iterations=120, seed=seed, cost_mode=mode
                )
                for mode in ("full", "incremental")
            ]
            costs = [
                _mapping_cost(m.assignment, legs, volumes, coords) for m in maps
            ]
            assert costs[0] == costs[1]

    def test_nonsquare_mesh(self):
        config = ReGraphXConfig(mesh_width=6, mesh_height=4, num_layers=2)
        full = anneal_mapping(config, iterations=150, seed=9, cost_mode="full")
        incremental = anneal_mapping(
            config, iterations=150, seed=9, cost_mode="incremental"
        )
        assert incremental.assignment == full.assignment

    def test_unknown_cost_mode_rejected(self):
        with pytest.raises(ValueError, match="cost_mode"):
            anneal_mapping(ReGraphXConfig(), iterations=1, cost_mode="magic")


class TestIncrementalCostState:
    """The running delta-cost state tracks full recomputation exactly."""

    def _setup(self, config, training=True):
        legs = communication_legs(config.num_layers, training)
        volumes = _volumes(config.num_layers, training, scale=3.5)
        coords = _coords(config)
        current = {
            s: list(r)
            for s, r in contiguous_mapping(config, training).assignment.items()
        }
        return legs, volumes, coords, current

    def test_initial_cost_matches(self):
        config = ReGraphXConfig()
        legs, volumes, coords, current = self._setup(config)
        state = IncrementalCost(current, legs, volumes, coords)
        expected = _mapping_cost(
            {s: tuple(r) for s, r in current.items()}, legs, volumes, coords
        )
        assert state.total_cost() == expected

    @pytest.mark.parametrize("training", [True, False])
    def test_hundreds_of_random_swaps(self, training):
        """Running state == full recompute after every one of 400 swaps."""
        config = ReGraphXConfig(num_layers=3)
        legs, volumes, coords, current = self._setup(config, training)
        state = IncrementalCost(current, legs, volumes, coords)
        stages = list(current)
        rng = np.random.default_rng(2024)
        v_stages = [s for s in stages if s.lstrip("B").startswith("V")]
        e_stages = [s for s in stages if s.lstrip("B").startswith("E")]
        for step in range(400):
            pool = v_stages if rng.random() < 0.5 else e_stages
            if len(pool) < 2:
                continue
            s1, s2 = rng.choice(len(pool), size=2, replace=False)
            stage_a, stage_b = pool[s1], pool[s2]
            ia = int(rng.integers(len(current[stage_a])))
            ib = int(rng.integers(len(current[stage_b])))
            ra, rb = current[stage_a][ia], current[stage_b][ib]
            current[stage_a][ia], current[stage_b][ib] = rb, ra
            state.swap(stage_a, ra, stage_b, rb)
            if rng.random() < 0.3:  # mix in rejected-proposal reverts
                current[stage_a][ia], current[stage_b][ib] = ra, rb
                state.swap(stage_a, rb, stage_b, ra)
            if step % 25 == 0 or step > 380:
                expected = _mapping_cost(
                    {s: tuple(r) for s, r in current.items()},
                    legs, volumes, coords,
                )
                assert state.total_cost() == expected, step

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_swap_sequences_property(self, seed):
        """Any swap/revert sequence leaves the state exactly consistent."""
        config = ReGraphXConfig(num_layers=2)
        legs, volumes, coords, current = self._setup(config)
        state = IncrementalCost(current, legs, volumes, coords)
        rng = np.random.default_rng(seed)
        v_stages = [s for s in current if s.lstrip("B").startswith("V")]
        e_stages = [s for s in current if s.lstrip("B").startswith("E")]
        for _ in range(30):
            pool = v_stages if rng.random() < 0.5 else e_stages
            s1, s2 = rng.choice(len(pool), size=2, replace=False)
            stage_a, stage_b = pool[s1], pool[s2]
            ia = int(rng.integers(len(current[stage_a])))
            ib = int(rng.integers(len(current[stage_b])))
            ra, rb = current[stage_a][ia], current[stage_b][ib]
            current[stage_a][ia], current[stage_b][ib] = rb, ra
            state.swap(stage_a, ra, stage_b, rb)
        expected = _mapping_cost(
            {s: tuple(r) for s, r in current.items()}, legs, volumes, coords
        )
        assert state.total_cost() == expected


class TestRestartsAndDefaults:
    config = ReGraphXConfig()

    def test_restarts_deterministic(self):
        volumes = _volumes(4, True)
        a = anneal_mapping(self.config, volumes, iterations=120, seed=5, restarts=3)
        b = anneal_mapping(self.config, volumes, iterations=120, seed=5, restarts=3)
        assert a.assignment == b.assignment

    def test_parallel_restarts_match_serial(self):
        volumes = _volumes(4, True)
        serial = anneal_mapping(
            self.config, volumes, iterations=100, seed=7, restarts=3, jobs=1
        )
        parallel = anneal_mapping(
            self.config, volumes, iterations=100, seed=7, restarts=3, jobs=3
        )
        assert serial.assignment == parallel.assignment

    def test_restarts_never_worse_than_single(self):
        legs = communication_legs(4)
        volumes = _volumes(4, True)
        coords = _coords(self.config)
        one = anneal_mapping(self.config, volumes, iterations=150, seed=2)
        many = anneal_mapping(
            self.config, volumes, iterations=150, seed=2, restarts=4
        )
        cost_one = _mapping_cost(one.assignment, legs, volumes, coords)
        cost_many = _mapping_cost(many.assignment, legs, volumes, coords)
        assert cost_many <= cost_one + 1e-9

    def test_single_restart_reproduces_historical_stream(self):
        """restarts=1 must consume the seed exactly like the old annealer."""
        a = anneal_mapping(self.config, iterations=80, seed=5)
        b = anneal_mapping(self.config, iterations=80, seed=5, restarts=1)
        assert a.assignment == b.assignment

    def test_rejects_bad_restarts(self):
        with pytest.raises(ValueError, match="restarts"):
            anneal_mapping(self.config, iterations=1, restarts=0)

    def test_default_iterations_scale_with_mesh(self):
        assert default_sa_iterations(self.config) == 2000
        small = ReGraphXConfig(mesh_width=4, mesh_height=4, num_layers=2)
        big = ReGraphXConfig(mesh_width=12, mesh_height=12)
        assert default_sa_iterations(small) < 2000
        assert default_sa_iterations(big) > 2000
        assert default_sa_iterations(small) >= 200


class TestDegenerateGuards:
    def test_single_stage_pools_inference(self):
        """1-layer inference has one V and one E stage: nothing to swap."""
        config = ReGraphXConfig(num_layers=1)
        sm = anneal_mapping(config, iterations=50, seed=0, training=False)
        assert sm.assignment == contiguous_mapping(config, training=False).assignment

    def test_single_router_stages(self):
        """Stages holding one router each still swap without crashing."""
        config = ReGraphXConfig(mesh_width=4, mesh_height=2, num_layers=4)
        assert config.v_routers_per_stage == 1
        sm = anneal_mapping(config, iterations=60, seed=1)
        routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(routers) == len(set(routers))

    def test_inference_training_disjoint_stage_sets(self):
        config = ReGraphXConfig(num_layers=2)
        train = anneal_mapping(config, iterations=40, seed=0, training=True)
        infer = anneal_mapping(config, iterations=40, seed=0, training=False)
        assert set(train.stages) == set(stage_names(2, training=True))
        assert set(infer.stages) == set(stage_names(2, training=False))


class TestRandomMappingTraining:
    config = ReGraphXConfig()

    def test_inference_uses_forward_stages_only(self):
        sm = random_mapping(self.config, seed=1, training=False)
        assert set(sm.stages) == set(stage_names(4, training=False))

    def test_inference_doubles_routers_per_stage(self):
        train = random_mapping(self.config, seed=1, training=True)
        infer = random_mapping(self.config, seed=1, training=False)
        assert len(infer.routers("V1")) == 2 * len(train.routers("V1"))
        assert len(infer.routers("E1")) == 2 * len(train.routers("E1"))

    def test_inference_complete_and_disjoint(self):
        sm = random_mapping(self.config, seed=4, training=False)
        routers = [r for s in sm.stages for r in sm.routers(s)]
        assert len(routers) == len(set(routers)) == 192

    def test_inference_respects_tiers(self):
        sm = random_mapping(self.config, seed=2, training=False)
        v_set = set(self.config.v_routers())
        e_set = set(self.config.e_routers())
        for stage in sm.stages:
            target = v_set if stage.lstrip("B").startswith("V") else e_set
            assert set(sm.routers(stage)) <= target
