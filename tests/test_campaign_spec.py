"""Tests for the declarative scenario/campaign specification layer."""

import pytest

from repro.campaign.presets import PRESETS, get_preset, preset_names
from repro.campaign.spec import AXIS_FIELDS, CampaignSpec, Scenario
from repro.core.config import ReGraphXConfig


class TestScenario:
    def test_defaults_materialize_paper_design_point(self):
        assert Scenario().to_config() == ReGraphXConfig()

    def test_overrides_compose_on_custom_base(self):
        base = ReGraphXConfig(num_layers=2)
        config = Scenario(tiers=5).to_config(base)
        assert config.tiers == 5
        assert config.v_tier == 2  # re-centered
        assert config.num_layers == 2  # base preserved

    def test_tier_override_scales_static_power(self):
        base = ReGraphXConfig()
        config = Scenario(tiers=5).to_config(base)
        base_tiles = base.num_v_tiles + base.num_e_tiles
        tiles = config.num_v_tiles + config.num_e_tiles
        assert tiles > base_tiles
        assert config.energy.static_power_watts == pytest.approx(
            base.energy.static_power_watts * tiles / base_tiles
        )

    def test_mesh_override_square_by_default(self):
        config = Scenario(mesh_width=6).to_config()
        assert (config.mesh_width, config.mesh_height) == (6, 6)

    def test_noc_clock_override(self):
        config = Scenario(noc_clock_hz=2.0e8).to_config()
        assert config.noc.clock_hz == 2.0e8
        # Everything else untouched.
        assert config.noc.flit_bits == ReGraphXConfig().noc.flit_bits

    def test_effective_scale_defaults_per_dataset(self):
        from repro.experiments.common import DEFAULT_SCALES

        assert Scenario(dataset="reddit").effective_scale == DEFAULT_SCALES["reddit"]
        assert Scenario(dataset="reddit", scale=0.5).effective_scale == 0.5

    def test_effective_scale_unknown_dataset_needs_explicit_scale(self):
        with pytest.raises(ValueError, match="default scale"):
            Scenario(dataset="nope").effective_scale

    def test_auto_label_names_the_knobs(self):
        label = Scenario(
            dataset="ppi", tiers=4, noc_clock_hz=2e8, multicast=False, seed=3
        ).auto_label()
        assert label == "ppi-4t-200MHz-uni-s3"

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(scale=0.0)
        with pytest.raises(ValueError):
            Scenario(tiers=1)
        with pytest.raises(ValueError):
            Scenario(noc_clock_hz=-1.0)

    def test_describe_from_dict_roundtrip(self):
        scenario = Scenario(dataset="ppi", scale=0.05, tiers=4, multicast=False)
        rebuilt = Scenario.from_dict(scenario.describe())
        assert rebuilt.to_config() == scenario.to_config()
        assert rebuilt.display_label == scenario.display_label


class TestCampaignSpec:
    def test_cross_product_count_and_order(self):
        spec = CampaignSpec(
            name="t",
            base=Scenario(dataset="ppi", scale=0.05),
            axes=(("tiers", (2, 3)), ("multicast", (True, False))),
        )
        scenarios = spec.scenarios()
        assert len(spec) == 4 and len(scenarios) == 4
        # Row-major: last axis fastest.
        assert [(s.tiers, s.multicast) for s in scenarios] == [
            (2, True), (2, False), (3, True), (3, False)
        ]

    def test_labels_unique(self):
        spec = CampaignSpec(
            name="t",
            axes=(("tiers", (2, 3, 4)), ("seed", (0, 1))),
        )
        labels = [s.label for s in spec.scenarios()]
        assert len(labels) == len(set(labels)) == 6

    def test_axes_accept_mapping(self):
        spec = CampaignSpec(name="t", axes={"tiers": (2, 3)})
        assert len(spec) == 2

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            CampaignSpec(name="t", axes=(("warp", (1,)),))
        assert "label" not in AXIS_FIELDS

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            CampaignSpec(name="t", axes=(("tiers", ()),))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="t", axes=(("tiers", (2,)), ("tiers", (3,))))

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            CampaignSpec(name="")

    def test_no_axes_is_a_single_point(self):
        spec = CampaignSpec(name="point")
        assert len(spec) == 1
        assert len(spec.scenarios()) == 1


class TestPresets:
    def test_every_preset_enumerates(self):
        for name in preset_names():
            spec = get_preset(name)
            scenarios = spec.scenarios()
            assert len(scenarios) == len(spec) >= 1
            assert len({s.label for s in scenarios}) == len(scenarios)

    def test_tiers_preset_is_at_least_24_scenarios(self):
        assert len(get_preset("tiers")) >= 24

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            get_preset("warp-speed")
        assert set(preset_names()) == set(PRESETS)
