"""Tests for the quantile sketches: P² vs. the exact oracle.

The P² backend is validated differentially — same stream into both
backends, estimates must land within a small relative error of the exact
percentiles — plus the structural properties that make it worth having:
constant state size, exact answers while the startup buffer is small,
and exact streaming count/mean/min/max.
"""

import random

import pytest

from repro.noc.stats import percentile, summarize_latencies
from repro.obs import (
    DEFAULT_QUANTILES,
    SKETCH_BACKENDS,
    ExactSketch,
    P2Quantile,
    P2Sketch,
    make_sketch,
)


def lognormal_stream(n, seed=7):
    rng = random.Random(seed)
    return [rng.lognormvariate(0.0, 0.5) for _ in range(n)]


class TestP2Quantile:
    def test_tracked_quantile_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(100.0)

    def test_empty_answers_zero(self):
        assert P2Quantile(50.0).value == 0.0

    def test_small_streams_answer_exactly(self):
        # Up to five observations the startup buffer holds everything,
        # so the estimate IS the exact percentile.
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        for n in range(1, 6):
            estimator = P2Quantile(95.0)
            for v in values[:n]:
                estimator.add(v)
            assert estimator.value == percentile(values[:n], 95.0)
            assert estimator.count == n

    def test_converges_on_a_long_stream(self):
        values = lognormal_stream(20_000)
        for q in (50.0, 95.0, 99.0):
            estimator = P2Quantile(q)
            for v in values:
                estimator.add(v)
            exact = percentile(values, q)
            assert estimator.value == pytest.approx(exact, rel=0.02)

    def test_handles_a_sorted_stream(self):
        # Monotone input is the adversarial case for marker estimators.
        estimator = P2Quantile(99.0)
        for v in range(10_000):
            estimator.add(float(v))
        assert estimator.value == pytest.approx(
            percentile(list(range(10_000)), 99.0), rel=0.05
        )


class TestP2Sketch:
    def test_streaming_moments_are_exact(self):
        values = lognormal_stream(5_000)
        sketch = P2Sketch()
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.quantile(0) == min(values)
        assert sketch.quantile(100) == max(values)

    def test_state_size_is_constant(self):
        sketch = P2Sketch()
        baseline = sketch.state_size
        for v in lognormal_stream(10_000):
            sketch.add(v)
        assert sketch.state_size == baseline == 15 * len(DEFAULT_QUANTILES) + 4

    def test_untracked_quantile_raises(self):
        sketch = P2Sketch(quantiles=(50.0,))
        sketch.add(1.0)
        with pytest.raises(ValueError, match="not tracked"):
            sketch.quantile(99.0)

    def test_needs_at_least_one_quantile(self):
        with pytest.raises(ValueError, match="at least one"):
            P2Sketch(quantiles=())

    def test_duplicate_quantiles_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            P2Sketch(quantiles=(50.0, 50.0))

    def test_empty_summary_is_all_zero(self):
        summary = P2Sketch().summary()
        assert summary.count == 0
        assert summary.mean == summary.p50 == summary.p99 == summary.max == 0.0

    def test_summary_tracks_exact_within_tolerance(self):
        values = lognormal_stream(20_000)
        sketch = P2Sketch()
        oracle = ExactSketch()
        for v in values:
            sketch.add(v)
            oracle.add(v)
        approx, exact = sketch.summary(), oracle.summary()
        assert approx.count == exact.count
        assert approx.mean == pytest.approx(exact.mean)
        assert approx.max == exact.max
        assert approx.p50 == pytest.approx(exact.p50, rel=0.02)
        assert approx.p95 == pytest.approx(exact.p95, rel=0.02)
        assert approx.p99 == pytest.approx(exact.p99, rel=0.02)


class TestExactSketch:
    def test_summary_matches_summarize_latencies(self):
        values = lognormal_stream(500)
        sketch = ExactSketch()
        for v in values:
            sketch.add(v)
        assert sketch.summary() == summarize_latencies(values)
        assert sketch.values == values
        assert sketch.state_size == len(values)

    def test_empty_sketch_is_all_zero(self):
        sketch = ExactSketch()
        assert sketch.count == 0
        assert sketch.mean == sketch.min == sketch.max == 0.0
        assert sketch.quantile(99.0) == 0.0
        assert sketch.summary().count == 0


class TestMakeSketch:
    def test_backends_registered(self):
        assert set(SKETCH_BACKENDS) == {"exact", "p2"}
        assert isinstance(make_sketch("exact"), ExactSketch)
        assert isinstance(make_sketch("p2"), P2Sketch)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown sketch backend"):
            make_sketch("hdr")

    def test_backend_attribute_round_trips(self):
        for backend in SKETCH_BACKENDS:
            assert make_sketch(backend).backend == backend


class TestSummarizeLatenciesRouting:
    """summarize_latencies accepts a sketch and routes through summary()."""

    def test_exact_sketch_route_is_differential_identity(self):
        values = lognormal_stream(1_000)
        sketch = ExactSketch()
        for v in values:
            sketch.add(v)
        assert summarize_latencies(sketch) == summarize_latencies(values)

    def test_p2_sketch_route_uses_the_streaming_state(self):
        values = lognormal_stream(10_000)
        sketch = P2Sketch()
        for v in values:
            sketch.add(v)
        routed = summarize_latencies(sketch)
        exact = summarize_latencies(values)
        assert routed == sketch.summary()
        assert routed.p99 == pytest.approx(exact.p99, rel=0.02)

    def test_plain_sequences_still_work(self):
        assert summarize_latencies([1.0, 2.0, 3.0]).count == 3
        assert summarize_latencies([]).count == 0
