"""Unit tests for the optimizer, metrics, and Cluster-GCN trainer."""

import numpy as np
import pytest

from repro.gnn.metrics import accuracy, macro_f1, micro_f1
from repro.gnn.model import GCN
from repro.gnn.training import Adam, ClusterGCNTrainer, EpochStats, TrainingHistory
from repro.graph.clustering import ClusterBatcher


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0])
        opt = Adam([x], lr=0.1)
        for _ in range(300):
            opt.step([2 * x])  # gradient of x^2
        assert abs(x[0]) < 0.05

    def test_first_step_size_is_lr(self):
        """Adam's bias correction makes the first step exactly lr-sized."""
        x = np.array([1.0])
        opt = Adam([x], lr=0.01)
        opt.step([np.array([42.0])])
        assert x[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_weight_decay_shrinks(self):
        x = np.array([10.0])
        opt = Adam([x], lr=0.1, weight_decay=1.0)
        for _ in range(200):
            opt.step([np.zeros(1)])
        assert abs(x[0]) < 1.0

    def test_updates_in_place(self):
        x = np.ones((2, 2))
        ref = x
        opt = Adam([x], lr=0.1)
        opt.step([np.ones((2, 2))])
        assert ref is x
        assert not np.allclose(x, 1.0)

    def test_gradient_count_checked(self):
        opt = Adam([np.ones(2)])
        with pytest.raises(ValueError, match="gradients"):
            opt.step([])

    def test_gradient_shape_checked(self):
        opt = Adam([np.ones(2)])
        with pytest.raises(ValueError, match="shape"):
            opt.step([np.ones(3)])

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            Adam([np.ones(1)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([np.ones(1)], beta1=1.0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_micro_f1_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 5, 100)
        labels = rng.integers(0, 5, 100)
        assert micro_f1(preds, labels) == pytest.approx(accuracy(preds, labels))

    def test_macro_f1_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels) == 1.0

    def test_macro_f1_penalizes_rare_class_errors(self):
        labels = np.array([0] * 9 + [1])
        preds = np.zeros(10, dtype=int)  # never predicts the rare class
        assert accuracy(preds, labels) == pytest.approx(0.9)
        assert macro_f1(preds, labels) < 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestTrainingHistory:
    def make(self, accs):
        h = TrainingHistory()
        for i, a in enumerate(accs):
            h.append(EpochStats(i, 0.5, a, a))
        return h

    def test_final_accuracy(self):
        assert self.make([0.1, 0.9]).final_val_accuracy == 0.9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = TrainingHistory().final_val_accuracy

    def test_stability_flat(self):
        assert self.make([0.9] * 10).stability() == 0.0

    def test_stability_detects_drop(self):
        assert self.make([0.9, 0.9, 0.5, 0.9]).stability() == pytest.approx(0.4)

    def test_series_accessors(self):
        h = self.make([0.1, 0.2])
        assert h.val_accuracy == [0.1, 0.2]
        assert h.train_accuracy == [0.1, 0.2]
        assert h.train_loss == [0.5, 0.5]


class TestClusterGCNTrainer:
    def make_trainer(self, small_graph, small_partition, lr=0.01, seed=0):
        model = GCN(
            feature_dim=small_graph.feature_dim,
            hidden_dim=16,
            num_classes=small_graph.num_classes,
            num_layers=2,
            seed=seed,
        )
        batcher = ClusterBatcher(small_graph, small_partition, 2, seed=seed)
        return ClusterGCNTrainer(model, small_graph, batcher, lr=lr, seed=seed)

    def test_training_improves_accuracy(self, small_graph, small_partition):
        trainer = self.make_trainer(small_graph, small_partition)
        before = trainer.evaluate()
        history = trainer.fit(8)
        assert history.final_val_accuracy > before
        assert history.final_val_accuracy > 0.6

    def test_loss_decreases(self, small_graph, small_partition):
        trainer = self.make_trainer(small_graph, small_partition)
        history = trainer.fit(8)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_masks_partition_nodes(self, small_graph, small_partition):
        trainer = self.make_trainer(small_graph, small_partition)
        assert trainer.train_mask.sum() + trainer.val_mask.sum() == small_graph.num_nodes
        assert not np.any(trainer.train_mask & trainer.val_mask)
        assert trainer.train_mask.sum() == int(0.7 * small_graph.num_nodes)

    def test_deterministic(self, small_graph, small_partition):
        h1 = self.make_trainer(small_graph, small_partition, seed=3).fit(3)
        h2 = self.make_trainer(small_graph, small_partition, seed=3).fit(3)
        assert h1.val_accuracy == h2.val_accuracy

    def test_requires_features(self, small_partition, small_graph):
        from repro.graph.graph import CSRGraph

        bare = CSRGraph(indptr=small_graph.indptr, indices=small_graph.indices)
        model = GCN(4, 4, 2, seed=0)
        batcher = ClusterBatcher(bare, small_partition, 2)
        with pytest.raises(ValueError, match="features"):
            ClusterGCNTrainer(model, bare, batcher)

    def test_rejects_bad_fraction(self, small_graph, small_partition):
        model = GCN(small_graph.feature_dim, 8, small_graph.num_classes, seed=0)
        batcher = ClusterBatcher(small_graph, small_partition, 2)
        with pytest.raises(ValueError, match="train_fraction"):
            ClusterGCNTrainer(model, small_graph, batcher, train_fraction=1.5)

    def test_rejects_zero_epochs(self, small_graph, small_partition):
        trainer = self.make_trainer(small_graph, small_partition)
        with pytest.raises(ValueError):
            trainer.fit(0)
