"""Unit tests for ReRAM cell/converter/fixed-point primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.reram.cells import ADCSpec, CellSpec, DACSpec, FixedPointFormat


class TestCellSpec:
    def test_levels(self):
        assert CellSpec(2).levels == 4
        assert CellSpec(1).levels == 2

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            CellSpec(0)


class TestDACSpec:
    def test_bit_serial_cycles(self):
        assert DACSpec(1).cycles_for(16) == 16
        assert DACSpec(2).cycles_for(16) == 8
        assert DACSpec(2).cycles_for(15) == 8  # ceil

    def test_rejects_bad_operand(self):
        with pytest.raises(ValueError):
            DACSpec(1).cycles_for(0)


class TestADCSpec:
    def test_max_code(self):
        assert ADCSpec(8).max_code == 255
        assert ADCSpec(6).max_code == 63

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            ADCSpec(0)


class TestFixedPoint:
    def test_quantize_dequantize_roundtrip_error(self):
        fmt = FixedPointFormat(16, 12)
        values = np.linspace(-3, 3, 101)
        err = np.abs(fmt.round_trip(values) - values).max()
        assert err <= 0.5 / fmt.scale + 1e-12

    def test_saturation(self):
        fmt = FixedPointFormat(16, 12)
        codes = fmt.quantize(np.array([100.0, -100.0]))
        assert codes[0] == fmt.max_int
        assert codes[1] == fmt.min_int

    def test_bounds(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.max_int == 127
        assert fmt.min_int == -128
        assert fmt.scale == 16.0

    def test_slice_combine_identity_positive(self):
        fmt = FixedPointFormat(16, 12)
        codes = np.array([0, 1, 1000, 32767])
        slices = fmt.slice_bits(codes, 2)
        assert len(slices) == 8
        assert np.array_equal(fmt.combine_slices(slices, 2), codes)

    def test_slice_combine_identity_negative(self):
        fmt = FixedPointFormat(16, 12)
        codes = np.array([-1, -1000, -32768])
        slices = fmt.slice_bits(codes, 2)
        assert np.array_equal(fmt.combine_slices(slices, 2), codes)

    def test_slices_fit_cell_levels(self):
        fmt = FixedPointFormat(16, 12)
        codes = np.arange(-100, 100)
        for s in fmt.slice_bits(codes, 2):
            assert s.min() >= 0
            assert s.max() < 4

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(8, 8)

    def test_rejects_bad_slice_width(self):
        with pytest.raises(ValueError):
            FixedPointFormat().slice_bits(np.array([1]), 0)

    @given(
        arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(-7.9, 7.9, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_slice_combine_roundtrip_property(self, values):
        fmt = FixedPointFormat(16, 12)
        codes = fmt.quantize(values)
        for width in (1, 2, 4):
            assert np.array_equal(
                fmt.combine_slices(fmt.slice_bits(codes, width), width), codes
            )

    @given(
        arrays(
            np.float64,
            10,
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_quantization_error_bound_property(self, values):
        fmt = FixedPointFormat(16, 12)
        err = np.abs(fmt.round_trip(values) - values)
        assert err.max() <= 0.5 / fmt.scale + 1e-12
