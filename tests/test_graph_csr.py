"""Unit tests for the CSR graph container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.graph.graph import CSRGraph


def edges_strategy(max_nodes: int = 20, max_edges: int = 40):
    return st.integers(4, max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_basic(self, tiny_graph):
        assert tiny_graph.num_nodes == 8
        assert tiny_graph.num_edges == 9
        assert tiny_graph.num_directed_edges == 18

    def test_self_loops_removed(self):
        g = CSRGraph.from_edges(4, np.array([[0, 0], [0, 1], [2, 2]]))
        assert g.num_edges == 1

    def test_duplicate_edges_removed(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, np.empty((0, 2), dtype=np.int64))
        assert g.num_nodes == 3
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges(3, np.array([[0, 3]]))

    def test_negative_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges(3, np.array([[-1, 0]]))

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 5]), indices=np.array([1]))

    def test_non_monotone_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(indptr=np.array([0, 2, 1, 3]), indices=np.array([1, 2, 0]))

    def test_neighbor_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="neighbor index"):
            CSRGraph(indptr=np.array([0, 1, 2]), indices=np.array([5, 0]))

    def test_features_length_checked(self):
        with pytest.raises(ValueError, match="features"):
            CSRGraph.from_edges(3, np.array([[0, 1]]), features=np.zeros((2, 4)))

    def test_labels_length_checked(self):
        with pytest.raises(ValueError, match="labels"):
            CSRGraph.from_edges(3, np.array([[0, 1]]), labels=np.zeros(2))

    def test_from_scipy_symmetrizes(self):
        adj = sparse.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]]))
        g = CSRGraph.from_scipy(adj)
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)
        assert g.num_edges == 2

    def test_from_scipy_drops_diagonal(self):
        adj = sparse.identity(4, format="csr")
        g = CSRGraph.from_scipy(adj)
        assert g.num_edges == 0

    def test_from_scipy_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            CSRGraph.from_scipy(sparse.csr_matrix(np.zeros((2, 3))))


class TestAccessors:
    def test_degrees_match_neighbors(self, tiny_graph):
        for v in range(tiny_graph.num_nodes):
            assert tiny_graph.degrees[v] == len(tiny_graph.neighbors(v))

    def test_neighbors_sorted_and_symmetric(self, tiny_graph):
        for v in range(tiny_graph.num_nodes):
            nbrs = tiny_graph.neighbors(v)
            assert list(nbrs) == sorted(nbrs)
            for u in nbrs:
                assert v in tiny_graph.neighbors(u)

    def test_neighbors_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.neighbors(99)

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 6)

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(18 / 8)

    def test_feature_dim_requires_features(self, tiny_graph):
        with pytest.raises(ValueError, match="no features"):
            _ = tiny_graph.feature_dim

    def test_num_classes_requires_labels(self, tiny_graph):
        with pytest.raises(ValueError, match="no labels"):
            _ = tiny_graph.num_classes

    def test_to_scipy_roundtrip(self, tiny_graph):
        adj = tiny_graph.to_scipy()
        assert adj.nnz == tiny_graph.num_directed_edges
        assert (adj != adj.T).nnz == 0  # symmetric


class TestDerived:
    def test_subgraph_structure(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 1, 2, 3]))
        assert sub.num_nodes == 4
        assert sub.num_edges == 4  # the 0-1-2-3 cycle

    def test_subgraph_relabels(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([4, 5]))
        assert sub.has_edge(0, 1)

    def test_subgraph_slices_features(self, small_graph):
        nodes = np.array([5, 1, 9])
        sub = small_graph.subgraph(nodes)
        assert np.array_equal(sub.features, small_graph.features[nodes])
        assert np.array_equal(sub.labels, small_graph.labels[nodes])

    def test_subgraph_rejects_duplicates(self, tiny_graph):
        with pytest.raises(ValueError, match="duplicates"):
            tiny_graph.subgraph(np.array([0, 0, 1]))

    def test_normalized_adjacency_rows(self, tiny_graph):
        a_hat = tiny_graph.normalized_adjacency()
        assert a_hat.shape == (8, 8)
        # Symmetric normalization of a symmetric matrix stays symmetric.
        assert abs(a_hat - a_hat.T).max() < 1e-12

    def test_normalized_adjacency_regular_graph_rowsum(self):
        # On a k-regular graph with self-loops, rows sum to exactly 1.
        cycle = CSRGraph.from_edges(6, np.array([[i, (i + 1) % 6] for i in range(6)]))
        a_hat = cycle.normalized_adjacency()
        sums = np.asarray(a_hat.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_normalized_adjacency_no_self_loops(self, tiny_graph):
        a_hat = tiny_graph.normalized_adjacency(add_self_loops=False)
        assert np.allclose(a_hat.diagonal(), 0.0)

    def test_edge_cut_all_same_part(self, tiny_graph):
        assert tiny_graph.edge_cut(np.zeros(8, dtype=int)) == 0

    def test_edge_cut_known_split(self, tiny_graph):
        # Split the two 4-cycles: only the 0-4 bridge crosses.
        assignment = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert tiny_graph.edge_cut(assignment) == 1

    def test_edge_cut_length_checked(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.edge_cut(np.zeros(3, dtype=int))

    def test_connected_components(self):
        g = CSRGraph.from_edges(5, np.array([[0, 1], [2, 3]]))
        comp = g.connected_components()
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert len(set(comp)) == 3


class TestProperties:
    @given(edges_strategy())
    @settings(max_examples=40, deadline=None)
    def test_from_edges_invariants(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, np.array(edges).reshape(-1, 2))
        # CSR self-consistency.
        assert g.indptr[-1] == g.indices.size
        assert g.num_directed_edges == 2 * g.num_edges
        # Symmetry.
        adj = g.to_scipy()
        assert (adj != adj.T).nnz == 0
        # No self-loops.
        assert np.all(adj.diagonal() == 0)

    @given(edges_strategy())
    @settings(max_examples=25, deadline=None)
    def test_edge_cut_bounded(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, np.array(edges).reshape(-1, 2))
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, 3, size=n)
        cut = g.edge_cut(assignment)
        assert 0 <= cut <= g.num_edges
