"""Unit tests for the functional crossbar and IMA models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram.cells import FixedPointFormat
from repro.reram.crossbar import Crossbar
from repro.reram.ima import IMA, IMASpec
from repro.reram.tile import ReRAMTile, e_tile_spec, v_tile_spec


class TestCrossbar:
    def test_program_and_read_back(self):
        xb = Crossbar(4, 4)
        codes = np.arange(16).reshape(4, 4) % 4
        xb.program(codes)
        assert np.array_equal(xb.stored(), codes)

    def test_mac_wave_is_binary_matvec(self):
        xb = Crossbar(4, 3)
        codes = np.array([[1, 2, 3], [0, 1, 0], [3, 3, 3], [2, 0, 1]])
        xb.program(codes)
        wave = np.array([1, 0, 1, 1])
        assert np.array_equal(xb.mac_wave(wave), wave @ codes)

    def test_counts_reads_and_writes(self):
        xb = Crossbar(4, 4)
        xb.program(np.zeros((4, 4), dtype=int))
        xb.mac_wave(np.ones(4, dtype=int))
        xb.mac_wave(np.zeros(4, dtype=int))
        assert xb.write_count == 16
        assert xb.read_count == 2

    def test_program_partial(self):
        xb = Crossbar(4, 4)
        xb.program_partial(1, 1, np.array([[3, 3], [3, 3]]))
        assert xb.stored()[1, 1] == 3
        assert xb.stored()[0, 0] == 0
        assert xb.write_count == 4

    def test_program_partial_bounds(self):
        xb = Crossbar(4, 4)
        with pytest.raises(ValueError, match="bounds"):
            xb.program_partial(3, 3, np.ones((2, 2), dtype=int))

    def test_program_rejects_bad_shape(self):
        xb = Crossbar(4, 4)
        with pytest.raises(ValueError, match="shape"):
            xb.program(np.zeros((3, 4), dtype=int))

    def test_program_rejects_out_of_range_codes(self):
        xb = Crossbar(2, 2)
        with pytest.raises(ValueError, match="codes"):
            xb.program(np.full((2, 2), 7))

    def test_mac_wave_rejects_non_binary(self):
        xb = Crossbar(2, 2)
        xb.program(np.ones((2, 2), dtype=int))
        with pytest.raises(ValueError, match="binary"):
            xb.mac_wave(np.array([2, 0]))

    def test_zero_cells(self):
        xb = Crossbar(2, 2)
        xb.program(np.array([[0, 1], [0, 0]]))
        assert xb.zero_cells() == 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)


class TestIMA:
    def test_matvec_matches_quantized_reference(self):
        rng = np.random.default_rng(0)
        ima = IMA()
        w = rng.normal(scale=0.4, size=(100, 120))
        x = rng.normal(scale=0.4, size=100)
        ima.program_weights(w)
        got = ima.matvec(x)
        fmt = FixedPointFormat()
        want = fmt.round_trip(x) @ fmt.round_trip(w)
        assert np.allclose(got, want, atol=1e-9)

    def test_matvec_close_to_float(self):
        rng = np.random.default_rng(1)
        ima = IMA()
        w = rng.normal(scale=0.3, size=(64, 64))
        x = rng.normal(scale=0.3, size=64)
        ima.program_weights(w)
        assert np.abs(ima.matvec(x) - x @ w).max() < 5e-3

    def test_negative_weights_and_inputs(self):
        ima = IMA(IMASpec(crossbar_size=8))
        w = np.array([[-1.0, 0.5], [0.25, -0.75]])
        ima.program_weights(w)
        x = np.array([-1.0, 2.0])
        assert np.allclose(ima.matvec(x), x @ w, atol=1e-3)

    def test_matmul_batches(self):
        rng = np.random.default_rng(2)
        ima = IMA(IMASpec(crossbar_size=16))
        w = rng.normal(scale=0.3, size=(10, 12))
        x = rng.normal(scale=0.3, size=(5, 10))
        ima.program_weights(w)
        out = ima.matmul(x)
        assert out.shape == (5, 12)
        assert np.abs(out - x @ w).max() < 5e-3

    def test_rejects_oversized_block(self):
        ima = IMA(IMASpec(crossbar_size=8))
        with pytest.raises(ValueError, match="fit"):
            ima.program_weights(np.zeros((9, 4)))

    def test_rejects_use_before_programming(self):
        ima = IMA(IMASpec(crossbar_size=8))
        with pytest.raises(RuntimeError, match="programming"):
            ima.matvec(np.zeros(4))

    def test_rejects_wrong_input_length(self):
        ima = IMA(IMASpec(crossbar_size=8))
        ima.program_weights(np.zeros((4, 4)))
        with pytest.raises(ValueError, match="shape"):
            ima.matvec(np.zeros(5))

    def test_read_write_counters(self):
        ima = IMA(IMASpec(crossbar_size=8))
        ima.program_weights(np.ones((8, 8)) * 0.1)
        ima.matvec(np.ones(8) * 0.1)
        assert ima.total_writes == 8 * 64
        assert ima.total_reads == 16 * 8  # 16 input bits x 8 weight slices

    def test_spec_rejects_insufficient_crossbars(self):
        with pytest.raises(ValueError, match="cannot hold"):
            IMASpec(num_crossbars=4)  # 16-bit / 2-bit cells needs 8 slices

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_matvec_quantized_exact_property(self, seed):
        rng = np.random.default_rng(seed)
        ima = IMA(IMASpec(crossbar_size=16))
        w = rng.normal(scale=0.5, size=(16, 16))
        x = rng.normal(scale=0.5, size=16)
        ima.program_weights(w)
        fmt = FixedPointFormat()
        want = fmt.round_trip(x) @ fmt.round_trip(w)
        assert np.allclose(ima.matvec(x), want, atol=1e-9)


class TestTile:
    def test_program_layer_blocks(self):
        tile = ReRAMTile(v_tile_spec())
        placements = tile.program_layer(np.zeros((200, 250)))
        assert len(placements) == 2 * 2

    def test_matmul_matches_float(self):
        rng = np.random.default_rng(3)
        tile = ReRAMTile(v_tile_spec())
        w = rng.normal(scale=0.2, size=(150, 140))
        x = rng.normal(scale=0.2, size=(4, 150))
        tile.program_layer(w)
        assert np.abs(tile.matmul(x) - x @ w).max() < 5e-3

    def test_rejects_oversized_layer(self):
        tile = ReRAMTile(v_tile_spec())
        with pytest.raises(ValueError, match="blocks"):
            tile.program_layer(np.zeros((128 * 4, 128 * 4)))

    def test_rejects_use_before_program(self):
        tile = ReRAMTile(v_tile_spec())
        with pytest.raises(RuntimeError):
            tile.matmul(np.zeros((2, 10)))

    def test_rejects_wrong_input_width(self):
        tile = ReRAMTile(v_tile_spec())
        tile.program_layer(np.zeros((100, 100)))
        with pytest.raises(ValueError, match="width"):
            tile.matmul(np.zeros((2, 99)))

    def test_tile_specs(self):
        v = v_tile_spec()
        e = e_tile_spec()
        assert v.crossbar_size == 128
        assert e.crossbar_size == 8
        assert v.ima.adc.bits == 8
        assert e.ima.adc.bits == 6
        assert v.weight_blocks_per_tile == 12
        assert e.adjacency_blocks_per_tile == 96
        assert v.cells_per_tile == 12 * 8 * 128 * 128

    def test_tile_spec_validation(self):
        from repro.reram.tile import TileSpec
        from repro.reram.ima import IMASpec

        with pytest.raises(ValueError, match="kind"):
            TileSpec(kind="x", ima=IMASpec())
        with pytest.raises(ValueError, match="IMA"):
            TileSpec(kind="v", ima=IMASpec(), num_imas=0)
