"""Shared fixtures: small deterministic graphs and workloads.

Session-scoped where construction is expensive; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import ReGraphX, Workload
from repro.graph.datasets import load_dataset
from repro.graph.generators import powerlaw_community_graph, random_features_and_labels
from repro.graph.graph import CSRGraph
from repro.graph.partition import partition_graph


@pytest.fixture(scope="session")
def small_graph() -> CSRGraph:
    """~400-node community graph with features/labels."""
    graph = powerlaw_community_graph(
        num_nodes=400, num_edges=2400, num_communities=8, mixing=0.1, seed=11
    )
    return random_features_and_labels(graph, feature_dim=16, num_classes=8, seed=11)


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """A fixed 8-node graph with a known edge list."""
    edges = np.array(
        [[0, 1], [1, 2], [2, 3], [3, 0], [4, 5], [5, 6], [6, 7], [7, 4], [0, 4]]
    )
    return CSRGraph.from_edges(8, edges, name="tiny")


@pytest.fixture(scope="session")
def small_partition(small_graph):
    return partition_graph(small_graph, 8, seed=3)


@pytest.fixture(scope="session")
def accelerator() -> ReGraphX:
    return ReGraphX()


@pytest.fixture(scope="session")
def ppi_workload(accelerator) -> Workload:
    """A PPI-like workload at the documented experiment scale (0.1), where
    per-input sub-graph statistics match the full Table II dataset."""
    return accelerator.build_workload("ppi", scale=0.1, seed=0)
