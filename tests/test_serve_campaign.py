"""Tests for serving scenarios, keys, campaigns, presets, and the QPS sweep."""

import pytest

from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import ResultStore
from repro.core.dse import sweep_serving_qps
from repro.serve.presets import (
    SERVING_PRESETS,
    get_serving_preset,
    serving_preset_names,
)
from repro.serve.scenario import (
    ServingRecord,
    ServingScenario,
    run_serving_scenario,
    scenario_with,
    serving_key,
)
from repro.serve.sweep import run_serving_campaign

FAST = ServingScenario(qps=50.0, duration_seconds=0.3, instances=1, seed=0)


class TestServingScenario:
    def test_auto_label_reflects_knobs(self):
        label = ServingScenario(qps=100.0, max_batch=4, instances=3).auto_label()
        assert label == "poisson-q100-b4-i3-s0"

    def test_describe_round_trips(self):
        scenario = ServingScenario(arrival="mmpp", qps=75.0, policy="wfq")
        assert ServingScenario.from_dict(scenario.describe()) == scenario_with(
            scenario
        )

    def test_scenario_with_relabels(self):
        changed = scenario_with(FAST, qps=200.0)
        assert changed.qps == 200.0
        assert "q200" in changed.display_label

    def test_diurnal_day_is_compressed_to_the_window(self):
        scenario = scenario_with(
            FAST, arrival="diurnal", qps=300.0, duration_seconds=2.0
        )
        process = scenario.build_arrivals()
        assert process.period_seconds == 2.0
        # One full sine cycle fits the window: the first half-period (the
        # peak) must carry visibly more traffic than the second (trough).
        stream = process.generate(2.0)
        peak = sum(1 for r in stream if r.arrival_time < 1.0)
        assert peak > 1.3 * (len(stream) - peak)

    def test_validation(self):
        for kwargs in (
            {"arrival": "uniform"},
            {"qps": 0.0},
            {"duration_seconds": 0.0},
            {"num_tenants": 0},
            {"max_batch": 0},
            {"max_wait_seconds": -1.0},
            {"policy": "lifo"},
            {"instances": 0},
            {"slo_seconds": 0.0},
            {"scale": 0.0},
        ):
            with pytest.raises(ValueError):
                ServingScenario(**kwargs)


class TestServingKey:
    def test_deterministic_and_label_blind(self):
        a = ServingScenario(qps=100.0)
        b = ServingScenario(qps=100.0, label="pretty-name")
        assert serving_key(a) == serving_key(b)

    def test_every_knob_changes_the_key(self):
        base = ServingScenario()
        for override in (
            {"dataset": "reddit", "scale": 0.02},
            {"arrival": "mmpp"},
            {"qps": 123.0},
            {"duration_seconds": 3.0},
            {"num_tenants": 5},
            {"max_batch": 3},
            {"max_wait_seconds": 0.009},
            {"policy": "wfq"},
            {"instances": 7},
            {"slo_seconds": 0.08},
            {"seed": 11},
        ):
            assert serving_key(base) != serving_key(scenario_with(base, **override))

    def test_distinct_from_architecture_keys(self):
        from repro.campaign.store import scenario_key

        assert serving_key(ServingScenario()) != scenario_key(Scenario())


class TestGenericCampaignSpec:
    def test_axes_validate_against_serving_fields(self):
        spec = CampaignSpec(
            name="load",
            base=FAST,
            axes=(("qps", (25.0, 50.0)), ("max_batch", (1, 8))),
        )
        scenarios = spec.scenarios()
        assert len(scenarios) == 4
        assert all(isinstance(s, ServingScenario) for s in scenarios)
        labels = [s.display_label for s in scenarios]
        assert len(set(labels)) == 4

    def test_unknown_axis_mentions_serving_fields(self):
        with pytest.raises(ValueError, match="tiers"):
            CampaignSpec(name="bad", base=FAST, axes=(("tiers", (2, 3)),))

    def test_architecture_axes_still_work(self):
        spec = CampaignSpec(
            name="arch", base=Scenario(), axes=(("tiers", (2, 3)),)
        )
        assert len(spec.scenarios()) == 2


class TestRunServingCampaign:
    def spec(self):
        return CampaignSpec(
            name="mini",
            base=FAST,
            axes=(("qps", (25.0, 100.0)), ("instances", (1, 2))),
        )

    def test_runs_in_scenario_order(self, tmp_path):
        result = run_serving_campaign(self.spec(), store=ResultStore(tmp_path))
        assert len(result) == 4
        assert [r.scenario["qps"] for r in result.records] == [
            25.0, 25.0, 100.0, 100.0,
        ]
        assert result.misses == 4 and result.hits == 0

    def test_second_run_is_all_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_serving_campaign(self.spec(), store=store)
        second = run_serving_campaign(self.spec(), store=store)
        assert second.hits == 4 and second.misses == 0
        assert all(r.cached for r in second.records)
        assert [r.metrics() for r in first.records] == [
            r.metrics() for r in second.records
        ]

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_serving_campaign(self.spec(), jobs=1)
        parallel = run_serving_campaign(self.spec(), jobs=2)
        assert [r.metrics() for r in serial.records] == [
            r.metrics() for r in parallel.records
        ]

    def test_exports(self, tmp_path):
        result = run_serving_campaign(self.spec())
        json_path = result.to_json(tmp_path / "mini.json")
        csv_path = result.to_csv(tmp_path / "mini.csv")
        assert json_path.is_file() and csv_path.is_file()
        header = csv_path.read_text().splitlines()[0]
        assert "p99_latency_seconds" in header
        assert "qps" in header
        table = result.table().render()
        assert "p99 ms" in table

    def test_rejects_architecture_specs(self):
        arch = CampaignSpec(name="arch", base=Scenario(), axes=(("tiers", (2,)),))
        with pytest.raises(TypeError, match="ServingScenario"):
            run_serving_campaign(arch)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_serving_campaign(self.spec(), jobs=0)


class TestRunServingScenario:
    def test_record_persists_and_reloads(self, tmp_path):
        store = ResultStore(tmp_path)
        fresh = run_serving_scenario(FAST, store=store)
        cached = run_serving_scenario(FAST, store=store)
        assert not fresh.cached and cached.cached
        assert fresh.metrics() == cached.metrics()
        assert isinstance(cached, ServingRecord)

    def test_custom_service_model_bypasses_the_store(self, tmp_path):
        from repro.serve.service import LinearServiceModel

        store = ResultStore(tmp_path)
        run_serving_scenario(FAST, service=LinearServiceModel(), store=store)
        assert len(store) == 0


class TestPresets:
    def test_registry(self):
        assert "serving" in serving_preset_names()
        assert set(serving_preset_names()) == set(SERVING_PRESETS)

    def test_serving_preset_shape(self):
        spec = get_serving_preset("serving")
        assert len(spec) == 12
        axes = dict(spec.axes)
        assert set(axes) == {"qps", "max_batch", "instances"}

    def test_all_presets_enumerate(self):
        for name in serving_preset_names():
            scenarios = get_serving_preset(name).scenarios()
            assert scenarios
            assert all(isinstance(s, ServingScenario) for s in scenarios)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown serving preset"):
            get_serving_preset("nope")


class TestSweepServingQps:
    def test_records_in_rate_order(self):
        records = sweep_serving_qps(
            [25.0, 50.0], duration_seconds=0.3, instances=1
        )
        assert [r.scenario["qps"] for r in records] == [25.0, 50.0]
        assert all(r.p50_latency_seconds > 0 for r in records)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            sweep_serving_qps([])
        with pytest.raises(ValueError, match="positive"):
            sweep_serving_qps([-5.0])
