"""Tests for the trace recorder: sampling modes, slo buffering, export.

These drive the recorder directly with hand-built requests, so every
sampling decision is pinned without running a simulation; the engine
integration (real lifecycles, ordering, completeness) lives in
``test_serve_telemetry.py``.
"""

import json

import pytest

from repro.obs import (
    SPAN_ADMIT,
    SPAN_ARRIVE,
    SPAN_DEPART,
    SPAN_FAIL,
    SPAN_SHED,
    TERMINAL_SPANS,
    FLEET_SCALE,
    MemoryTraceRecorder,
    NullRecorder,
    TraceRecorder,
    make_recorder,
)
from repro.serve.arrivals import Request


def request(request_id, tenant="tenant-0"):
    return Request(
        tenant=tenant, graph_size=256, arrival_time=0.01 * request_id,
        request_id=request_id,
    )


def lifecycle(recorder, request_id, violated=False, shed=False):
    """Emit a minimal arrive -> admit -> depart/shed lifecycle."""
    r = request(request_id)
    t = r.arrival_time
    recorder.request_event(t, SPAN_ARRIVE, r)
    if shed:
        recorder.request_event(t, SPAN_SHED, r, reason="queue-budget")
        return
    recorder.request_event(t, SPAN_ADMIT, r, reason="open")
    recorder.request_event(t + 0.02, SPAN_DEPART, r, violated=violated)


class TestNullRecorder:
    def test_disabled_and_empty(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        lifecycle(recorder, 0)
        recorder.fleet_event(0.0, FLEET_SCALE, previous=1, target=2)
        recorder.finish()
        assert recorder.spans() == []

    def test_export_writes_an_empty_file(self, tmp_path):
        path = NullRecorder().export_jsonl(tmp_path / "t.jsonl")
        assert path.read_text() == ""

    def test_base_recorder_is_the_null_contract(self):
        assert TraceRecorder.enabled is False


class TestSamplingModes:
    def test_all_keeps_every_span(self):
        recorder = MemoryTraceRecorder(sample="all")
        for i in range(5):
            lifecycle(recorder, i)
        assert len(recorder.spans()) == 15
        assert recorder.request_ids() == [0, 1, 2, 3, 4]

    def test_head_n_keeps_the_first_n_distinct_requests(self):
        recorder = MemoryTraceRecorder(sample="head:2")
        for i in range(5):
            lifecycle(recorder, i)
        assert recorder.request_ids() == [0, 1]
        # A sampled-in request keeps its whole lifecycle.
        assert [s["kind"] for s in recorder.spans_for(1)] == [
            SPAN_ARRIVE, SPAN_ADMIT, SPAN_DEPART,
        ]

    def test_one_in_k_is_systematic_by_request_id(self):
        recorder = MemoryTraceRecorder(sample="1-in-3")
        for i in range(9):
            lifecycle(recorder, i)
        assert recorder.request_ids() == [0, 3, 6]

    def test_slo_keeps_violators_and_sheds_only(self):
        recorder = MemoryTraceRecorder(sample="slo", slo_seconds=0.05)
        lifecycle(recorder, 0, violated=False)
        lifecycle(recorder, 1, violated=True)
        lifecycle(recorder, 2, shed=True)
        assert recorder.request_ids() == [1, 2]
        assert [s["kind"] for s in recorder.spans_for(2)] == [
            SPAN_ARRIVE, SPAN_SHED,
        ]

    def test_slo_restores_emission_order_across_requests(self):
        recorder = MemoryTraceRecorder(sample="slo", slo_seconds=0.05)
        # Interleave two violators: commits happen at each depart, but
        # spans() must come back in global seq order.
        a, b = request(0), request(1)
        recorder.request_event(0.00, SPAN_ARRIVE, a)
        recorder.request_event(0.01, SPAN_ARRIVE, b)
        recorder.request_event(0.05, SPAN_DEPART, b, violated=True)
        recorder.request_event(0.06, SPAN_DEPART, a, violated=True)
        seqs = [s["seq"] for s in recorder.spans()]
        assert seqs == sorted(seqs)
        assert [s["request_id"] for s in recorder.spans()] == [0, 1, 1, 0]

    def test_slo_finish_drops_in_flight_buffers(self):
        recorder = MemoryTraceRecorder(sample="slo", slo_seconds=0.05)
        recorder.request_event(0.0, SPAN_ARRIVE, request(0))  # never departs
        recorder.finish()
        assert recorder.spans() == []

    def test_fleet_events_are_never_sampled_out(self):
        recorder = MemoryTraceRecorder(sample="head:1")
        lifecycle(recorder, 0)
        lifecycle(recorder, 1)  # sampled out
        recorder.fleet_event(0.5, FLEET_SCALE, previous=1, target=3)
        kinds = [s["kind"] for s in recorder.spans()]
        assert kinds.count(FLEET_SCALE) == 1


class TestModeValidation:
    @pytest.mark.parametrize("mode", ["sometimes", "head:0", "1-in-0", "head:x"])
    def test_bad_modes_raise(self, mode):
        with pytest.raises(ValueError):
            MemoryTraceRecorder(sample=mode)

    def test_slo_mode_needs_the_threshold(self):
        with pytest.raises(ValueError, match="slo_seconds"):
            MemoryTraceRecorder(sample="slo")

    def test_make_recorder_off_variants(self):
        assert isinstance(make_recorder(None), NullRecorder)
        assert isinstance(make_recorder("off"), NullRecorder)
        assert isinstance(make_recorder("none"), NullRecorder)

    def test_make_recorder_builds_sampling_recorders(self):
        recorder = make_recorder("1-in-10")
        assert isinstance(recorder, MemoryTraceRecorder)
        assert recorder.sample == "1-in-10"


class TestExport:
    def test_jsonl_round_trip_preserves_spans(self, tmp_path):
        recorder = MemoryTraceRecorder(sample="all")
        lifecycle(recorder, 0, violated=True)
        recorder.fleet_event(0.5, FLEET_SCALE, previous=1, target=2)
        path = recorder.export_jsonl(tmp_path / "out" / "t.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == recorder.spans()
        assert rows[0]["kind"] == SPAN_ARRIVE
        assert rows[0]["tenant"] == "tenant-0"
        assert rows[-1] == {
            "seq": 3, "time": 0.5, "kind": FLEET_SCALE,
            "previous": 1, "target": 2,
        }

    def test_terminal_span_kinds(self):
        assert set(TERMINAL_SPANS) == {SPAN_DEPART, SPAN_SHED, SPAN_FAIL}
