"""Unit tests for the multilevel k-way partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_community_graph
from repro.graph.graph import CSRGraph
from repro.graph.partition import partition_graph


class TestBasics:
    def test_single_part(self, small_graph):
        result = partition_graph(small_graph, 1)
        assert result.num_parts == 1
        assert result.edge_cut == 0
        assert np.all(result.assignment == 0)

    def test_all_nodes_assigned(self, small_partition, small_graph):
        assert small_partition.assignment.shape == (small_graph.num_nodes,)
        assert small_partition.assignment.min() >= 0
        assert small_partition.assignment.max() < 8

    def test_every_part_nonempty(self, small_partition):
        assert np.all(small_partition.part_sizes > 0)

    def test_balance_respected(self, small_partition):
        assert small_partition.imbalance <= 1.1 + 1e-9

    def test_edge_cut_consistent(self, small_graph, small_partition):
        assert small_partition.edge_cut == small_graph.edge_cut(
            small_partition.assignment
        )

    def test_part_nodes(self, small_partition):
        nodes = small_partition.part_nodes(0)
        assert np.all(small_partition.assignment[nodes] == 0)
        assert len(nodes) == small_partition.part_sizes[0]

    def test_part_nodes_out_of_range(self, small_partition):
        with pytest.raises(IndexError):
            small_partition.part_nodes(99)

    def test_deterministic(self, small_graph):
        a = partition_graph(small_graph, 6, seed=4)
        b = partition_graph(small_graph, 6, seed=4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_rejects_bad_k(self, small_graph):
        with pytest.raises(ValueError):
            partition_graph(small_graph, 0)
        with pytest.raises(ValueError):
            partition_graph(small_graph, small_graph.num_nodes + 1)


class TestQuality:
    def test_beats_random_cut(self, small_graph):
        """The multilevel partitioner should cut far fewer edges than a
        random balanced assignment."""
        result = partition_graph(small_graph, 8, seed=0)
        rng = np.random.default_rng(0)
        random_cuts = []
        for _ in range(5):
            assignment = rng.permutation(
                np.arange(small_graph.num_nodes) % 8
            )
            random_cuts.append(small_graph.edge_cut(assignment))
        assert result.edge_cut < 0.8 * min(random_cuts)

    def test_recovers_planted_communities(self):
        """On a strongly clustered graph the cut should be near the number
        of cross-community edges."""
        g = powerlaw_community_graph(
            600, 3600, num_communities=4, mixing=0.05, seed=2
        )
        result = partition_graph(g, 4, seed=0)
        # Planted communities are size-skewed, so the balance constraint
        # forces some big communities to split; still, the cut should stay
        # far below the random-assignment expectation of (1 - 1/k) = 75%.
        assert result.edge_cut <= 0.35 * g.num_edges

    def test_disconnected_graph(self):
        g = CSRGraph.from_edges(
            20, np.array([[i, i + 1] for i in range(9)] + [[i, i + 1] for i in range(10, 19)])
        )
        result = partition_graph(g, 2, seed=0)
        assert np.all(result.part_sizes > 0)
        # Two chains of 10: the natural 2-cut severs nothing.
        assert result.edge_cut <= 2

    def test_path_graph_bisection(self):
        g = CSRGraph.from_edges(40, np.array([[i, i + 1] for i in range(39)]))
        result = partition_graph(g, 2, seed=0)
        # A path bisects with a single cut edge (allow small slack).
        assert result.edge_cut <= 3

    def test_many_parts(self, small_graph):
        result = partition_graph(small_graph, 40, seed=0)
        assert result.num_parts == 40
        assert np.all(result.part_sizes > 0)
        assert result.imbalance <= 1.3  # small parts tolerate more slack


class TestProperties:
    @given(
        n=st.integers(20, 80),
        k=st.integers(2, 6),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_partition_invariants(self, n, k, seed):
        g = powerlaw_community_graph(n, min(3 * n, n * (n - 1) // 2), seed=seed)
        result = partition_graph(g, k, seed=seed)
        assert result.assignment.shape == (n,)
        assert set(np.unique(result.assignment)) <= set(range(k))
        assert result.part_sizes.sum() == n
        assert 0 <= result.edge_cut <= g.num_edges
