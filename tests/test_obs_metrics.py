"""Tests for the metrics core: registry semantics, sampler, JSONL export.

Everything here is driven by explicit simulated times — no wall clock —
so the assertions are exact, including the sample-and-hold back-fill
behaviour the engine's one-comparison hot-path guard relies on.
"""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Sampler,
    export_metrics_jsonl,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("requests").inc(-1.0)

    def test_gauge_is_last_write_wins(self):
        gauge = Gauge("queue_depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0


class TestHistogram:
    def test_observations_flow_to_the_sketch(self):
        histogram = Histogram("latency", backend="exact")
        for v in (1.0, 2.0, 3.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.summary().max == 3.0

    def test_p2_backend_is_constant_memory(self):
        histogram = Histogram("latency", backend="p2")
        for v in range(1_000):
            histogram.observe(float(v))
        assert histogram.sketch.state_size < 100


class TestMetricRegistry:
    def test_get_or_create_returns_the_same_object(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_mismatch_is_a_bug(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_attach_histogram_rejects_duplicates(self):
        from repro.obs import make_sketch

        registry = MetricRegistry()
        registry.attach_histogram("latency", make_sketch("exact"))
        with pytest.raises(ValueError, match="already registered"):
            registry.attach_histogram("latency", make_sketch("exact"))

    def test_attach_histogram_wraps_without_copying(self):
        from repro.obs import make_sketch

        registry = MetricRegistry()
        sketch = make_sketch("exact")
        sketch.add(0.5)
        histogram = registry.attach_histogram("latency", sketch)
        assert histogram.sketch is sketch
        assert histogram.count == 1

    def test_iteration_preserves_insertion_order(self):
        registry = MetricRegistry()
        registry.counter("first")
        registry.gauge("second")
        registry.histogram("third")
        assert [m.name for m in registry] == ["first", "second", "third"]
        assert len(registry) == 3
        assert "second" in registry and "missing" not in registry

    def test_snapshot_rows_are_self_describing(self):
        registry = MetricRegistry()
        registry.counter("served").inc(10)
        registry.gauge("peak").set(4)
        registry.histogram("latency", backend="exact").observe(0.01)
        rows = registry.snapshot()
        assert [row["kind"] for row in rows] == ["counter", "gauge", "histogram"]
        assert rows[0] == {"kind": "counter", "name": "served", "value": 10.0}
        assert rows[2]["backend"] == "exact"
        assert rows[2]["count"] == 1


class TestSampler:
    def test_interval_validated(self):
        with pytest.raises(ValueError, match="positive"):
            Sampler(interval_seconds=0.0)

    def test_back_fills_every_elapsed_tick_with_held_state(self):
        sampler = Sampler(interval_seconds=0.1)
        # Time jumps straight to 0.35: ticks 0.0/0.1/0.2/0.3 all record
        # the state that was in force while time advanced there.
        sampler.record(0.35, {"queue_depth": 2})
        assert [row["time"] for row in sampler.rows] == [0.0, 0.1, 0.2, 0.3]
        assert all(row["queue_depth"] == 2 for row in sampler.rows)
        assert sampler.next_time == pytest.approx(0.4)

    def test_no_tick_due_records_nothing(self):
        sampler = Sampler(interval_seconds=0.1)
        sampler.record(0.0, {"queue_depth": 0})  # tick 0.0 fires
        before = len(sampler)
        sampler.record(0.05, {"queue_depth": 9})  # between ticks: nothing
        assert len(sampler) == before

    def test_series_length_is_horizon_over_interval(self):
        sampler = Sampler(interval_seconds=0.25)
        for k in range(1, 9):
            sampler.record(k * 0.125, {"state": k})
        assert len(sampler) == 5  # ticks at 0.0 .. 1.0 inclusive


class TestExport:
    def test_jsonl_round_trip_samples_then_metrics(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("served").inc(3)
        registry.histogram("latency", backend="exact").observe(0.02)
        sampler = Sampler(interval_seconds=0.5)
        sampler.record(1.0, {"queue_depth": 1})
        path = export_metrics_jsonl(tmp_path / "out" / "m.jsonl", registry, sampler)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [row["kind"] for row in rows]
        assert kinds == ["sample", "sample", "sample", "counter", "histogram"]
        assert rows[0]["time"] == 0.0
        assert rows[-1]["p50"] == pytest.approx(0.02)

    def test_sampler_is_optional(self, tmp_path):
        registry = MetricRegistry()
        registry.gauge("final_instances").set(2)
        path = export_metrics_jsonl(tmp_path / "m.jsonl", registry)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [{"kind": "gauge", "name": "final_instances", "value": 2.0}]
