"""Documentation guards: the Sphinx site stays buildable and complete.

Two layers so the guards degrade gracefully:

* Environment-independent checks (always run): every ``repro.*`` module
  imports cleanly and carries a module docstring, every module appears in
  exactly one ``automodule`` directive under ``docs/api/``, and the
  hand-written pages parse as reStructuredText (docutils, with the
  Sphinx-specific directives stubbed out).
* The real ``sphinx-build -W`` (runs when sphinx is installed — CI's
  docs job always has it): the whole site must build with warnings as
  errors.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
SRC = REPO / "src"


def all_repro_modules() -> list[str]:
    """Every importable module name under ``src/repro``, from the tree."""
    names = ["repro"]
    for path in sorted((SRC / "repro").rglob("*.py")):
        rel = path.relative_to(SRC).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        if name != "repro":
            names.append(name)
    return names


class TestDocstringCoverage:
    def test_every_module_imports_and_has_a_docstring(self):
        missing = []
        for name in all_repro_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"


class TestApiPagesCoverage:
    def automodule_targets(self) -> list[str]:
        targets = []
        for page in sorted(DOCS.glob("**/*.rst")):
            targets.extend(
                re.findall(r"^\.\.\s+automodule::\s+(\S+)", page.read_text(), re.M)
            )
        return targets

    def test_every_module_is_documented(self):
        documented = set(self.automodule_targets())
        missing = [m for m in all_repro_modules() if m not in documented]
        assert not missing, f"modules absent from docs/api: {missing}"

    def test_no_stale_or_duplicate_automodule_entries(self):
        targets = self.automodule_targets()
        assert len(targets) == len(set(targets)), "duplicate automodule entries"
        known = set(all_repro_modules())
        stale = [t for t in targets if t not in known]
        assert not stale, f"automodule entries with no module behind them: {stale}"


@pytest.fixture(scope="module")
def parse_rst():
    """Docutils parser with the Sphinx-specific constructs stubbed out.

    Returns a callable mapping rst text to ``(line, message)`` pairs for
    every parse problem of warning severity or worse.  Cannot catch
    autodoc problems (CI's ``sphinx-build -W`` does), but catches broken
    literal blocks, lists, tables, and heading underlines without sphinx
    installed.
    """
    pytest.importorskip("docutils")
    from docutils import nodes
    from docutils.core import publish_doctree
    from docutils.parsers.rst import directives, roles
    from docutils.parsers.rst.directives.misc import Class as ClassDirective

    class _Ignore(ClassDirective):
        required_arguments = 0
        optional_arguments = 10
        has_content = True

        def run(self):
            return []

    for name in ("automodule", "toctree", "code-block"):
        directives.register_directive(name, _Ignore)
    for name in ("mod", "class", "func", "meth", "data", "attr", "doc",
                 "ref", "ivar", "obj", "exc"):
        roles.register_local_role(name, roles.GenericRole(name, nodes.literal))

    def _parse(text: str) -> list[tuple[int | None, str]]:
        problems: list[tuple[int | None, str]] = []
        doctree = publish_doctree(
            text,
            settings_overrides={"report_level": 5, "halt_level": 5},
        )
        for node in doctree.findall(lambda n: n.tagname == "system_message"):
            if node["level"] >= 2:
                problems.append((node.get("line"), node.astext()))
        return problems

    return _parse


class TestRstParses:
    """The hand-written pages must be valid rst (docutils-level check)."""

    @pytest.mark.parametrize(
        "page",
        sorted(p.relative_to(DOCS).as_posix() for p in DOCS.glob("**/*.rst")),
    )
    def test_page_parses_clean(self, parse_rst, page):
        problems = parse_rst((DOCS / page).read_text())
        assert not problems, f"{page}: {problems}"


class TestDocstringRst:
    """Docstrings must be valid rst outside napoleon's Google sections.

    Napoleon rewrites ``Args:``/``Attributes:``/... sections before the
    rst parser sees them, so indentation inside those is exempt; anything
    else that docutils flags would also fail ``sphinx-build -W``.
    """

    SECTION = re.compile(
        r"^(Args|Arguments|Attributes|Returns|Yields|Raises|Examples?|"
        r"Notes?|Usage|Warnings?|Warns|Keyword Arg(ument)?s|"
        r"Other Parameters|See Also|Todo):\s*$"
    )

    @classmethod
    def napoleon_section_lines(cls, doc: str) -> set[int]:
        lines = doc.splitlines()
        inside: set[int] = set()
        current = False
        for i, line in enumerate(lines):
            if cls.SECTION.match(line.strip()) and not line.startswith(" "):
                current = True
                continue
            if current:
                if line.strip() and not line.startswith(" "):
                    current = False
                else:
                    inside.add(i + 1)
        return inside

    def public_docstrings(self):
        import inspect

        for name in all_repro_modules():
            module = importlib.import_module(name)
            objs = [("module", module.__doc__)]
            for oname, obj in vars(module).items():
                if getattr(obj, "__module__", None) != name:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    objs.append((oname, obj.__doc__))
                    if inspect.isclass(obj):
                        for mname, member in vars(obj).items():
                            doc = getattr(member, "__doc__", None)
                            if doc and (
                                inspect.isfunction(member)
                                or isinstance(member, property)
                            ):
                                objs.append((f"{oname}.{mname}", doc))
            for label, doc in objs:
                if doc:
                    yield f"{name}:{label}", inspect.cleandoc(doc)

    def test_docstrings_parse_outside_napoleon_sections(self, parse_rst):
        problems = []
        for label, doc in self.public_docstrings():
            exempt = self.napoleon_section_lines(doc)
            for line, message in parse_rst(doc):
                if line not in exempt:
                    problems.append(f"{label}:{line}: {message[:120]}")
        assert not problems, "\n".join(problems)


class TestSphinxBuild:
    def test_sphinx_build_warningfree(self, tmp_path):
        pytest.importorskip("sphinx")
        result = subprocess.run(
            [
                sys.executable, "-m", "sphinx", "-W", "-b", "html",
                str(DOCS), str(tmp_path / "html"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, (
            f"sphinx-build -W failed:\n{result.stdout}\n{result.stderr}"
        )
