"""Differential tests: event-driven engine vs. cycle-stepped reference.

The event backend (repro.noc.events) must be *bit-identical* to the
cycle-stepped oracle: same per-(msg_id, dest) finish cycles, same makespan,
same per-link flit counts.  This suite sweeps >= 50 seeded traces across
uniform, hotspot, and many-to-one-to-many patterns on meshes up to 8x8x4,
and cross-checks both backends against the static schedule analyzer
(flit-hop conservation; the dynamic simulator never beats the atomic
static bound the wrong way).
"""

import pytest

from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.simulator import FlitSimulator
from repro.noc.topology import Mesh3D
from repro.noc.traffic_gen import (
    hotspot_traffic,
    many_to_one_to_many_traffic,
    uniform_random_traffic,
)

MESHES = {
    "4x4x2": Mesh3D(4, 4, 2),
    "6x6x3": Mesh3D(6, 6, 3),
    "8x8x4": Mesh3D(8, 8, 4),
}

UNIFORM_TRACES = [
    (mesh, seed, window)
    for mesh in MESHES
    for seed in range(4)
    for window in (0, 150)
]

HOTSPOT_TRACES = [
    (mesh, seed, fraction)
    for mesh in ("4x4x2", "8x8x4")
    for seed in range(4)
    for fraction in (0.3, 0.7)
]

M2O2M_TRACES = [
    (mesh, seed, window)
    for mesh in MESHES
    for seed in (0, 1)
    for window in (0, 400)
]


def assert_backends_identical(topo, messages, config=None):
    """Run both backends and assert bit-identical results; return them."""
    sim = FlitSimulator(topo, config)
    event = sim.simulate(messages, backend="event")
    cycle = sim.simulate(messages, backend="cycle")
    assert event.message_finish == cycle.message_finish
    assert event.makespan_cycles == cycle.makespan_cycles
    assert event.link_stats.flits == cycle.link_stats.flits
    return event, cycle


class TestUniformDifferential:
    @pytest.mark.parametrize("mesh,seed,window", UNIFORM_TRACES)
    def test_bit_identical(self, mesh, seed, window):
        topo = MESHES[mesh]
        msgs = uniform_random_traffic(
            topo, 30, size_bits=512, seed=seed, inject_window=window
        )
        event, _ = assert_backends_identical(topo, msgs)
        # Static cross-check: both models deliver the same flit work, and
        # the dynamic simulator never exceeds the conservative atomic bound.
        static = StaticScheduler(topo).simulate(msgs, multicast=False)
        assert event.link_stats.total_flit_hops == static.total_flit_hops
        atomic = StaticScheduler(topo, NoCConfig(schedule_mode="atomic")).simulate(
            msgs, multicast=False
        )
        assert event.makespan_cycles <= atomic.makespan_cycles


class TestHotspotDifferential:
    @pytest.mark.parametrize("mesh,seed,fraction", HOTSPOT_TRACES)
    def test_bit_identical(self, mesh, seed, fraction):
        topo = MESHES[mesh]
        msgs = hotspot_traffic(
            topo,
            30,
            hotspot=topo.num_routers // 2,
            hotspot_fraction=fraction,
            seed=seed,
            inject_window=100,
        )
        event, _ = assert_backends_identical(topo, msgs)
        static = StaticScheduler(topo).simulate(msgs, multicast=False)
        assert event.link_stats.total_flit_hops == static.total_flit_hops


class TestManyToOneToManyDifferential:
    @pytest.mark.parametrize("mesh,seed,window", M2O2M_TRACES)
    def test_bit_identical(self, mesh, seed, window):
        topo = MESHES[mesh]
        sources = topo.tier_routers(topo.tiers - 1)[:6]
        sinks = topo.tier_routers(0)[:3]
        msgs = many_to_one_to_many_traffic(
            topo, sources, sinks, size_bits=512, seed=seed, inject_window=window
        )
        event, _ = assert_backends_identical(topo, msgs)
        # Multicast expansion: every (msg_id, dest) pair is addressable.
        assert set(event.message_finish) == {
            (m.msg_id, dst) for m in msgs for dst in m.dests
        }


class TestTraceCountFloor:
    def test_at_least_fifty_traces(self):
        """The acceptance criterion: >= 50 seeded differential traces."""
        assert len(UNIFORM_TRACES) + len(HOTSPOT_TRACES) + len(M2O2M_TRACES) >= 50


class TestBackendSemantics:
    def test_routing_orders_agree(self):
        topo = MESHES["6x6x3"]
        msgs = uniform_random_traffic(topo, 20, seed=11)
        for order in ("xyz", "zxy"):
            assert_backends_identical(topo, msgs, NoCConfig(routing_order=order))

    def test_without_local_ports(self):
        topo = MESHES["4x4x2"]
        msgs = uniform_random_traffic(topo, 25, seed=3, inject_window=50)
        assert_backends_identical(topo, msgs, NoCConfig(model_local_ports=False))

    def test_watchdog_agrees(self):
        topo = MESHES["4x4x2"]
        msgs = uniform_random_traffic(topo, 10, size_bits=4096, seed=0)
        sim = FlitSimulator(topo)
        for backend in ("event", "cycle"):
            with pytest.raises(RuntimeError, match="exceeded"):
                sim.simulate(msgs, max_cycles=5, backend=backend)

    def test_single_packet_sparse_time_is_cheap(self):
        """A packet injected very late is O(hops) for the event engine —
        the whole point of the rebuild (the cycle oracle would crawl)."""
        topo = MESHES["8x8x4"]
        from repro.noc.packet import Message

        msg = Message(
            src=0, dests=(topo.num_routers - 1,), size_bits=256,
            inject_cycle=5_000_000, msg_id=0,
        )
        result = FlitSimulator(topo).simulate([msg], max_cycles=10_000_000)
        cfg = NoCConfig()
        hops = topo.distance(0, topo.num_routers - 1) + 2  # + local ports
        assert result.makespan_cycles == (
            5_000_000 + hops * cfg.hop_cycles + msg.num_flits(cfg.flit_bits) - 1
        )
