"""Unit tests for graph serialization and the R-MAT generator."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_community_graph, rmat_graph
from repro.graph.io import load_graph, load_partition, save_graph, save_partition
from repro.graph.partition import partition_graph


class TestGraphIO:
    def test_roundtrip_structure_only(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        assert np.array_equal(loaded.indptr, tiny_graph.indptr)
        assert np.array_equal(loaded.indices, tiny_graph.indices)
        assert loaded.name == tiny_graph.name
        assert loaded.features is None

    def test_roundtrip_with_features(self, small_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(small_graph, path)
        loaded = load_graph(path)
        assert np.array_equal(loaded.features, small_graph.features)
        assert np.array_equal(loaded.labels, small_graph.labels)
        assert np.array_equal(loaded.community, small_graph.community)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "nope.npz")

    def test_partition_roundtrip(self, small_graph, small_partition, tmp_path):
        path = tmp_path / "p.npz"
        save_partition(small_partition, path)
        loaded = load_partition(path)
        assert np.array_equal(loaded.assignment, small_partition.assignment)
        assert loaded.num_parts == small_partition.num_parts
        assert loaded.edge_cut == small_partition.edge_cut
        assert loaded.imbalance == pytest.approx(small_partition.imbalance)

    def test_partition_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_partition(tmp_path / "nope.npz")

    def test_loaded_graph_usable(self, small_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(small_graph, path)
        loaded = load_graph(path)
        result = partition_graph(loaded, 4, seed=0)
        assert result.num_parts == 4


class TestRMAT:
    def test_node_count(self):
        g = rmat_graph(scale=8, edge_factor=4, seed=0)
        assert g.num_nodes == 256

    def test_edge_count_near_target(self):
        g = rmat_graph(scale=10, edge_factor=8, seed=0)
        # Dedup + self-loop removal trims the drawn count somewhat.
        assert 0.5 * 1024 * 8 < g.num_edges <= 1024 * 8

    def test_heavy_tail(self):
        g = rmat_graph(scale=11, edge_factor=8, seed=0)
        degrees = np.sort(g.degrees)[::-1]
        assert degrees[0] > 5 * g.average_degree

    def test_deterministic(self):
        a = rmat_graph(scale=7, seed=5)
        b = rmat_graph(scale=7, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_uniform_probabilities_balanced(self):
        g = rmat_graph(
            scale=9, edge_factor=4, probabilities=(0.25, 0.25, 0.25, 0.25), seed=0
        )
        degrees = np.sort(g.degrees)[::-1]
        # Erdos-Renyi-like: no extreme hubs.
        assert degrees[0] < 4 * g.average_degree

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_graph(scale=0)
        with pytest.raises(ValueError):
            rmat_graph(scale=4, edge_factor=0)
        with pytest.raises(ValueError):
            rmat_graph(scale=4, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_feeds_block_mapper(self):
        """R-MAT graphs flow through the E-PE block mapper."""
        from repro.reram.sparse_mapping import block_tile_adjacency

        g = rmat_graph(scale=9, edge_factor=6, seed=1)
        small = block_tile_adjacency(g, 8)
        large = block_tile_adjacency(g, 128)
        assert large.zeros_stored >= small.zeros_stored
