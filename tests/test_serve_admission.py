"""Tests for admission control: quotas, shedding, tarpitting.

The headline assertion reproduces the PR's acceptance criterion: under
2x overload, the p99 of *admitted* requests stays bounded (by the queue
budget's analytic drain time) while the open-loop tail explodes.
"""

import pytest

from repro.serve.admission import (
    ADMISSION_MODES,
    AdmissionController,
    TokenBucket,
)
from repro.serve.arrivals import (
    ClosedLoopPool,
    MMPPArrivals,
    PoissonArrivals,
    TenantMix,
)
from repro.serve.capacity import plan_capacity
from repro.serve.engine import ServingEngine
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import LinearServiceModel

# Calibrated so a full batch of the largest graphs (8 x 4096 nodes)
# still fits the 50 ms SLO — otherwise no fleet is ever feasible.
BASE_SECONDS = 0.004
PER_NODE = 1e-6


def engine(instances=2, admission=None, max_batch=4, max_wait=0.002, slo=0.05):
    return ServingEngine(
        scheduler=BatchingScheduler(max_batch=max_batch, max_wait_seconds=max_wait),
        service=LinearServiceModel(
            base_seconds=BASE_SECONDS, per_node_seconds=PER_NODE
        ),
        instances=instances,
        slo_seconds=slo,
        admission=admission,
    )


def overload(qps=800.0, horizon=2.0, seed=2, tenants=2):
    return MMPPArrivals(qps, mix=TenantMix.uniform(tenants), seed=seed).generate(
        horizon
    )


class TestTokenBucket:
    def test_starts_full_and_consumes(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.05)   # half a token so far
        assert bucket.try_take(0.1)

    def test_burst_caps_banked_tokens(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.peek(100.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestController:
    def test_admits_when_within_budget(self):
        controller = AdmissionController(mode="shed", queue_budget=4)
        decision = controller.admit("t", now=0.0, queue_depth=3)
        assert decision.admitted

    def test_queue_budget_sheds(self):
        controller = AdmissionController(mode="shed", queue_budget=4)
        decision = controller.admit("t", now=0.0, queue_depth=4)
        assert not decision.admitted
        assert decision.reason == "queue"
        assert decision.retry_after_seconds == 0.0

    def test_tarpit_asks_for_retry(self):
        controller = AdmissionController(
            mode="tarpit", queue_budget=1, tarpit_seconds=0.03
        )
        decision = controller.admit("t", now=0.0, queue_depth=5)
        assert not decision.admitted
        assert decision.retry_after_seconds == 0.03

    def test_quota_checked_before_queue(self):
        controller = AdmissionController(
            mode="shed", queue_budget=1, tenant_quota_qps=10.0, quota_burst=1
        )
        assert controller.admit("t", now=0.0, queue_depth=0).admitted
        decision = controller.admit("t", now=0.0, queue_depth=99)
        assert decision.reason == "quota"   # not "queue"

    def test_quota_buckets_are_per_tenant(self):
        controller = AdmissionController(
            mode="shed", queue_budget=0, tenant_quota_qps=10.0, quota_burst=1
        )
        assert controller.admit("a", now=0.0, queue_depth=0).admitted
        assert not controller.admit("a", now=0.0, queue_depth=0).admitted
        assert controller.admit("b", now=0.0, queue_depth=0).admitted

    def test_zero_budget_disables_the_queue_gate(self):
        controller = AdmissionController(mode="shed", queue_budget=0)
        assert controller.admit("t", now=0.0, queue_depth=10_000).admitted

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(mode="polite")
        with pytest.raises(ValueError):
            AdmissionController(queue_budget=-1)
        with pytest.raises(ValueError):
            AdmissionController(tenant_quota_qps=-1.0)
        with pytest.raises(ValueError):
            AdmissionController(tarpit_seconds=0.0)
        assert ADMISSION_MODES == ("shed", "tarpit")


class TestEngineShedding:
    def test_queue_budget_bounds_peak_depth(self):
        budget = 16
        report = engine(
            admission=AdmissionController(mode="shed", queue_budget=budget)
        ).run(requests=overload(), horizon_seconds=2.0)
        assert report.peak_queue_depth <= budget
        assert report.admission.shed > 0
        assert report.admission.shed_by_reason == {
            "queue": report.admission.shed
        }

    def test_accounting_adds_up(self):
        report = engine(
            admission=AdmissionController(mode="shed", queue_budget=16)
        ).run(requests=overload(), horizon_seconds=2.0)
        stats = report.admission
        assert stats.offered == report.offered
        assert stats.admitted + stats.shed == stats.offered
        assert stats.admitted == report.completed
        assert sum(stats.per_tenant_shed.values()) == stats.shed
        assert 0.0 < stats.shed_rate < 1.0

    def test_light_load_sheds_nothing(self):
        requests = PoissonArrivals(
            30.0, mix=TenantMix.uniform(2), seed=0
        ).generate(1.0)
        report = engine(
            admission=AdmissionController(mode="shed", queue_budget=16)
        ).run(requests=requests, horizon_seconds=1.0)
        assert report.admission.shed == 0
        assert report.completed == report.offered

    def test_deterministic(self):
        def go():
            return engine(
                admission=AdmissionController(mode="shed", queue_budget=16)
            ).run(requests=overload(), horizon_seconds=2.0)

        assert go() == go()

    def test_per_tenant_quota_throttles_the_heavy_tenant(self):
        mix = TenantMix(tenants=(("heavy", 8.0), ("light", 1.0)))
        requests = PoissonArrivals(300.0, mix=mix, seed=0).generate(2.0)
        report = engine(
            instances=4,
            admission=AdmissionController(
                mode="shed", queue_budget=0, tenant_quota_qps=50.0,
                quota_burst=8,
            ),
        ).run(requests=requests, horizon_seconds=2.0)
        shed = report.admission.per_tenant_shed
        assert shed.get("heavy", 0) > 10 * shed.get("light", 0)
        # The light tenant stays almost untouched under its own quota.
        assert shed.get("light", 0) < 5


class TestEngineTarpit:
    def test_tarpit_delays_instead_of_dropping(self):
        shed = engine(
            admission=AdmissionController(mode="shed", queue_budget=16)
        ).run(requests=overload(), horizon_seconds=2.0)
        tarpit = engine(
            admission=AdmissionController(
                mode="tarpit", queue_budget=16, tarpit_seconds=0.02
            )
        ).run(requests=overload(), horizon_seconds=2.0)
        assert tarpit.admission.tarpitted > 0
        # Backpressure admits more of the offered load than shedding...
        assert tarpit.admission.admitted > shed.admission.admitted
        # ...and the admitted-but-delayed requests pay for it in latency.
        assert tarpit.latency.p99 > shed.latency.p99

    def test_tarpitted_latency_includes_the_wait(self):
        # One instance, queue budget 1: the second request must be
        # tarpitted at least once and its latency includes that delay.
        from repro.serve.arrivals import Request

        requests = [
            Request(tenant="t", graph_size=1000, arrival_time=0.0),
            Request(tenant="t", graph_size=1000, arrival_time=0.001),
            Request(tenant="t", graph_size=1000, arrival_time=0.002),
        ]
        report = engine(
            instances=1, max_batch=1, max_wait=0.0,
            admission=AdmissionController(
                mode="tarpit", queue_budget=1, tarpit_seconds=0.05
            ),
        ).run(requests=requests, horizon_seconds=1.0)
        assert report.admission.tarpitted > 0
        assert report.latency.max >= 0.05

    def test_still_refused_at_horizon_is_shed(self):
        report = engine(
            instances=1,
            admission=AdmissionController(
                mode="tarpit", queue_budget=4, tarpit_seconds=0.02
            ),
        ).run(requests=overload(qps=2000.0, horizon=0.5), horizon_seconds=0.5)
        stats = report.admission
        assert stats.shed > 0
        assert stats.admitted + stats.shed == stats.offered


class TestClosedLoopAdmission:
    def test_refused_clients_move_on(self):
        pool = ClosedLoopPool(
            num_clients=8, think_seconds=0.0, mix=TenantMix.uniform(2), seed=0
        )
        report = engine(
            instances=1, max_batch=2,
            admission=AdmissionController(mode="shed", queue_budget=2),
        ).run(closed_loop=pool, horizon_seconds=1.0)
        # No deadlock: shed clients immediately owe their next request,
        # so the run keeps offering work for the whole horizon.
        assert report.admission.shed > 0
        assert report.completed > 0
        assert report.makespan_seconds > 0.5


class TestAcceptanceCriterion:
    """The ISSUE's bounded-overload claim, pinned as a deterministic test."""

    QPS = 400.0
    BUDGET = 24
    MAX_BATCH = 8

    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.serve.scenario import ServingScenario

        # Size the fleet for the nominal load...
        scenario = ServingScenario(
            arrival="mmpp", qps=self.QPS, duration_seconds=2.0,
            max_batch=self.MAX_BATCH, slo_seconds=0.05, seed=0,
        )
        plan = plan_capacity(
            scenario,
            max_instances=16,
            service=LinearServiceModel(
                base_seconds=BASE_SECONDS, per_node_seconds=PER_NODE
            ),
        )
        assert plan.feasible
        return plan.instances

    def requests(self):
        # ...then offer twice that load.
        return MMPPArrivals(
            2.0 * self.QPS, mix=TenantMix.uniform(2), seed=0
        ).generate(2.0)

    def test_open_loop_tail_explodes(self, fleet):
        report = engine(
            instances=fleet, max_batch=self.MAX_BATCH, max_wait=0.005
        ).run(requests=self.requests(), horizon_seconds=2.0)
        assert report.latency.p99 > 4 * report.slo_seconds

    def test_admitted_p99_is_bounded_by_the_queue_budget(self, fleet):
        report = engine(
            instances=fleet, max_batch=self.MAX_BATCH, max_wait=0.005,
            admission=AdmissionController(mode="shed", queue_budget=self.BUDGET),
        ).run(requests=self.requests(), horizon_seconds=2.0)
        # Worst admitted case: the whole budget queued ahead, every batch
        # at the largest graph size, one replica doing all the work, plus
        # the batcher's own deadline.
        worst_batch = BASE_SECONDS + PER_NODE * 4096 * self.MAX_BATCH
        bound = (self.BUDGET / self.MAX_BATCH + 1) * worst_batch + 0.005
        assert report.admission.shed > 0
        assert report.latency.p99 <= bound
        # And the bound is meaningfully tighter than the open-loop tail.
        assert bound < 4 * report.slo_seconds
