"""Tests for the batching scheduler: batch formation rules and policies."""

import pytest

from repro.serve.arrivals import Request
from repro.serve.scheduler import Batch, BatchingScheduler


def req(i, tenant="t0", size=100, at=0.0):
    return Request(tenant=tenant, graph_size=size, arrival_time=at, request_id=i)


class TestBatch:
    def test_properties(self):
        batch = Batch(
            requests=(req(0, "a", 10), req(1, "b", 20), req(2, "a", 30)),
            formed_time=1.0,
        )
        assert batch.size == 3
        assert batch.graph_sizes == (10, 20, 30)
        assert batch.tenants == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            Batch(requests=(), formed_time=0.0)


class TestFIFO:
    def test_pop_preserves_arrival_order(self):
        s = BatchingScheduler(max_batch=4, max_wait_seconds=0.01)
        for i in range(10):
            s.enqueue(req(i, at=i * 0.001))
        batch = s.pop_batch(now=0.02)
        assert [r.request_id for r in batch.requests] == [0, 1, 2, 3]
        assert s.queue_depth == 6

    def test_ready_on_full_batch(self):
        s = BatchingScheduler(max_batch=2, max_wait_seconds=1.0)
        s.enqueue(req(0, at=0.0))
        assert not s.ready(0.0)
        s.enqueue(req(1, at=0.0))
        assert s.ready(0.0)

    def test_ready_on_deadline(self):
        s = BatchingScheduler(max_batch=100, max_wait_seconds=0.005)
        s.enqueue(req(0, at=1.0))
        assert not s.ready(1.004)
        assert s.ready(1.005)

    def test_zero_wait_is_immediately_ready(self):
        s = BatchingScheduler(max_batch=100, max_wait_seconds=0.0)
        s.enqueue(req(0, at=1.0))
        assert s.ready(1.0)

    def test_oldest_arrival(self):
        s = BatchingScheduler(max_batch=4)
        assert s.oldest_arrival() is None
        s.enqueue(req(0, at=0.5))
        s.enqueue(req(1, at=0.7))
        assert s.oldest_arrival() == 0.5

    def test_pop_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BatchingScheduler().pop_batch(0.0)


class TestWeightedFair:
    def test_equal_weights_interleave(self):
        s = BatchingScheduler(max_batch=6, policy="wfq")
        for i in range(3):
            s.enqueue(req(i, tenant="a", at=0.0))
        for i in range(3, 6):
            s.enqueue(req(i, tenant="b", at=0.0))
        batch = s.pop_batch(0.01)
        tenants = [r.tenant for r in batch.requests]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_weights_split_service_proportionally(self):
        s = BatchingScheduler(
            max_batch=8, policy="wfq", tenant_weights={"heavy": 3.0, "light": 1.0}
        )
        for i in range(20):
            s.enqueue(req(i, tenant="heavy", at=0.0))
        for i in range(20, 40):
            s.enqueue(req(i, tenant="light", at=0.0))
        batch = s.pop_batch(0.01)
        counts = {t: sum(1 for r in batch.requests if r.tenant == t)
                  for t in ("heavy", "light")}
        assert counts == {"heavy": 6, "light": 2}

    def test_per_tenant_order_is_fifo(self):
        s = BatchingScheduler(max_batch=4, policy="wfq")
        for i in range(4):
            s.enqueue(req(i, tenant="a", at=i * 0.001))
        batch = s.pop_batch(0.01)
        assert [r.request_id for r in batch.requests] == [0, 1, 2, 3]

    def test_returning_tenant_gets_no_banked_credit(self):
        s = BatchingScheduler(max_batch=4, policy="wfq")
        # Tenant b alone is served for a while, advancing its virtual time.
        for i in range(8):
            s.enqueue(req(i, tenant="b", at=0.0))
        s.pop_batch(0.0)
        s.pop_batch(0.0)
        # Tenant a shows up: it should share, not monopolize the batch.
        for i in range(8, 12):
            s.enqueue(req(i, tenant="a", at=0.0))
        for i in range(12, 16):
            s.enqueue(req(i, tenant="b", at=0.0))
        batch = s.pop_batch(0.0)
        tenants = [r.tenant for r in batch.requests]
        assert tenants.count("a") == 2
        assert tenants.count("b") == 2

    def test_oldest_arrival_across_tenant_queues(self):
        s = BatchingScheduler(max_batch=8, policy="wfq")
        s.enqueue(req(0, tenant="b", at=0.7))
        s.enqueue(req(1, tenant="a", at=0.3))
        assert s.oldest_arrival() == 0.3

    def test_deterministic_tie_break_on_name(self):
        a = BatchingScheduler(max_batch=4, policy="wfq")
        b = BatchingScheduler(max_batch=4, policy="wfq")
        for s in (a, b):
            s.enqueue(req(0, tenant="z", at=0.0))
            s.enqueue(req(1, tenant="a", at=0.0))
            s.enqueue(req(2, tenant="m", at=0.0))
        assert [r.tenant for r in a.pop_batch(0.0).requests] == [
            r.tenant for r in b.pop_batch(0.0).requests
        ] == ["a", "m", "z", "a"][:3]


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingScheduler(max_batch=0)

    def test_bad_wait(self):
        with pytest.raises(ValueError, match="max_wait"):
            BatchingScheduler(max_wait_seconds=-0.1)

    def test_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            BatchingScheduler(policy="lifo")

    def test_bad_weights(self):
        with pytest.raises(ValueError, match="weights"):
            BatchingScheduler(policy="wfq", tenant_weights={"a": 0.0})
