"""Unit tests for sparse adjacency block tiling (the Fig. 3 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_community_graph
from repro.graph.graph import CSRGraph
from repro.reram.sparse_mapping import block_tile_adjacency, zeros_ratio
from repro.reram.tile import e_tile_spec, v_tile_spec


def path_graph(n: int) -> CSRGraph:
    return CSRGraph.from_edges(n, np.array([[i, i + 1] for i in range(n - 1)]))


class TestBlockTiling:
    def test_counts_on_known_graph(self, tiny_graph):
        # tiny_graph: two 4-cycles bridged by 0-4; 18 directed entries.
        mapping = block_tile_adjacency(tiny_graph, 8)
        assert mapping.nnz_entries == 18
        assert mapping.nnz_blocks == 1  # all 8 nodes fit in one 8x8 block
        assert mapping.zeros_stored == 64 - 18

    def test_block_size_one_stores_no_zeros(self, tiny_graph):
        mapping = block_tile_adjacency(tiny_graph, 1)
        assert mapping.nnz_blocks == mapping.nnz_entries
        assert mapping.zeros_stored == 0
        assert mapping.density == 1.0

    def test_path_graph_block_structure(self):
        g = path_graph(16)
        mapping = block_tile_adjacency(g, 8)
        # Diagonal band: 2 diagonal blocks + 2 off-diagonal for the 7-8 edge.
        assert mapping.nnz_blocks == 4
        assert mapping.block_rows == 2

    def test_cells_used(self):
        g = path_graph(16)
        mapping = block_tile_adjacency(g, 8)
        assert mapping.cells_used == 4 * 64

    def test_num_block_cols(self):
        g = path_graph(20)
        assert block_tile_adjacency(g, 8).num_block_cols == 3

    def test_blocks_per_block_row_sums(self):
        g = powerlaw_community_graph(200, 800, seed=0)
        mapping = block_tile_adjacency(g, 8)
        assert mapping.blocks_per_block_row.sum() == mapping.nnz_blocks

    def test_empty_graph(self):
        g = CSRGraph.from_edges(10, np.empty((0, 2), dtype=int))
        mapping = block_tile_adjacency(g, 8)
        assert mapping.nnz_blocks == 0
        assert mapping.zeros_stored == 0

    def test_rejects_bad_block_size(self, tiny_graph):
        with pytest.raises(ValueError):
            block_tile_adjacency(tiny_graph, 0)


class TestTilesNeeded:
    def test_tiles_needed(self):
        g = powerlaw_community_graph(400, 1600, seed=0)
        mapping = block_tile_adjacency(g, 8)
        tiles = mapping.tiles_needed()
        per_tile = e_tile_spec().adjacency_blocks_per_tile
        assert tiles == -(-mapping.nnz_blocks // per_tile)

    def test_tiles_needed_checks_block_size(self):
        g = path_graph(16)
        mapping = block_tile_adjacency(g, 16)
        with pytest.raises(ValueError, match="block size"):
            mapping.tiles_needed(e_tile_spec())


class TestZerosRatio:
    def test_larger_blocks_store_more_zeros(self):
        g = powerlaw_community_graph(600, 3000, seed=1)
        assert zeros_ratio(g, 8, 128) > 1.0

    def test_ratio_undefined_when_no_zeros(self):
        # A single edge in a 1x1 block grid at size 1 stores no zeros.
        g = CSRGraph.from_edges(2, np.array([[0, 1]]))
        with pytest.raises(ValueError, match="ratio"):
            zeros_ratio(g, 1, 2)

    @given(
        n=st.integers(30, 120),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_nested_block_zeros_monotone(self, n, seed):
        """For block sizes M and k*M, the larger blocks always store at
        least as many zeros (every nonzero small block lies inside a
        nonzero large block)."""
        g = powerlaw_community_graph(n, min(3 * n, n * (n - 1) // 2), seed=seed)
        z8 = block_tile_adjacency(g, 8).zeros_stored
        z16 = block_tile_adjacency(g, 16).zeros_stored
        z32 = block_tile_adjacency(g, 32).zeros_stored
        assert z8 <= z16 <= z32

    @given(n=st.integers(20, 100), seed=st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_entry_conservation(self, n, seed):
        """Block tiling never loses or invents adjacency entries."""
        g = powerlaw_community_graph(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        for size in (4, 8, 32):
            mapping = block_tile_adjacency(g, size)
            assert mapping.nnz_entries == g.num_directed_edges
            assert mapping.cells_used >= mapping.nnz_entries


class TestHomogeneousBaseline:
    def test_demand(self):
        from repro.baselines.homogeneous import homogeneous_epe_demand

        g = powerlaw_community_graph(500, 2500, seed=0)
        demand = homogeneous_epe_demand(g)
        small = block_tile_adjacency(g, 8)
        assert demand.mapping.block_size == v_tile_spec().crossbar_size
        assert demand.zeros_stored > small.zeros_stored
        assert demand.tiles_needed >= 1
