"""Differential regression: the fleet/routing refactor must not move a bit.

``tests/data/serve_regression_baseline.json`` pins the full output of the
*pre-fleet* serving engine (PR 4/5 era) over five scenarios spanning every
subsystem — arrival processes, wfq batching, autoscalers, admission
control, the p2 sketch backend — plus a closed-loop run through the raw
engine API.  The refactored engine, on its compatibility path (a
homogeneous ``default`` fleet behind the shared queue), must reproduce
every metric, the rendered report, and each autoscale trajectory
*exactly*: ``==`` on floats, not ``approx``.  JSON round-trips floats via
``repr``, so exact comparison is well-defined.

The same scenarios run a second time with the fleet spelled explicitly
(``fleet="default:N"``) to pin that the typed-fleet machinery itself —
handles, slice accounting, the routing layer — degenerates to the same
bits, not just that the default arguments bypass it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve.arrivals import ClosedLoopPool
from repro.serve.engine import ServingEngine
from repro.serve.scenario import (
    ServingRecord,
    ServingScenario,
    simulate_serving_scenario,
)
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import LinearServiceModel

BASELINE_PATH = (
    Path(__file__).parent / "data" / "serve_regression_baseline.json"
)
BASELINE = json.loads(BASELINE_PATH.read_text())

#: The exact scenarios the baseline was captured from (pre-fleet engine).
SCENARIOS = {
    "open-fifo": dict(qps=50.0, duration_seconds=0.3, instances=1, seed=0),
    "wfq-diurnal": dict(
        arrival="diurnal",
        qps=300.0,
        duration_seconds=1.0,
        policy="wfq",
        num_tenants=3,
        instances=2,
        seed=2,
    ),
    "autoscale-shed": dict(
        arrival="mmpp",
        qps=400.0,
        duration_seconds=0.4,
        instances=1,
        autoscaler="target-util",
        max_instances=4,
        admission="shed",
        queue_budget=16,
        seed=3,
    ),
    "pid-tarpit": dict(
        arrival="mmpp",
        qps=150.0,
        duration_seconds=1.0,
        instances=2,
        autoscaler="queue-pid",
        autoscale_target=1.0,
        max_instances=6,
        admission="tarpit",
        seed=0,
    ),
    "p2-backend": dict(
        qps=150.0, duration_seconds=0.3, metrics_backend="p2", seed=1
    ),
}


def _check(name: str, scenario: ServingScenario) -> None:
    expected = BASELINE[name]
    report = simulate_serving_scenario(scenario)
    record = ServingRecord.from_report(
        scenario, report, key="-", eval_seconds=0.0
    )
    metrics = record.metrics()
    for key, value in expected["metrics"].items():
        assert metrics[key] == value, f"{name}: metric {key} drifted"
    assert report.render() == expected["render"]
    if "trajectory" in expected:
        assert [
            [e.time, e.previous, e.target] for e in report.autoscale.events
        ] == expected["trajectory"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_default_path_is_bit_identical(name: str) -> None:
    """The refactored engine with default knobs == the pre-fleet engine."""
    _check(name, ServingScenario(**SCENARIOS[name]))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_explicit_default_fleet_is_bit_identical(name: str) -> None:
    """Spelling the fleet out (``default:N`` + shared queue) routes every
    request through the typed-fleet machinery and still reproduces the
    pre-fleet bits."""
    params = dict(SCENARIOS[name])
    fleet = f"default:{params.get('instances', 2)}"
    _check(name, ServingScenario(**params, fleet=fleet))


def test_closed_loop_is_bit_identical() -> None:
    """Raw engine API, closed-loop workload: exact reproduction."""
    expected = BASELINE["closed-loop"]
    engine = ServingEngine(
        scheduler=BatchingScheduler(max_batch=4, max_wait_seconds=0.002),
        service=LinearServiceModel(base_seconds=0.002, per_node_seconds=1e-6),
        instances=2,
        slo_seconds=0.05,
    )
    report = engine.run(
        closed_loop=ClosedLoopPool(num_clients=3, think_seconds=0.01, seed=0),
        horizon_seconds=1.0,
    )
    assert report.completed == expected["completed"]
    assert report.offered == expected["offered"]
    assert report.batches == expected["batches"]
    assert report.makespan_seconds == expected["makespan_seconds"]
    assert report.throughput_qps == expected["throughput_qps"]
    assert report.latency.p99 == expected["p99_latency_seconds"]
    assert report.latency.mean == expected["mean_latency_seconds"]
    assert report.utilization == expected["utilization"]
    # The compatibility path reports no typed-fleet extras.
    assert report.fleet == ""
    assert report.per_type == ()
    assert report.cost_dollars == report.instance_seconds


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_inert_reliability_machinery_is_bit_identical(name: str) -> None:
    """A retry policy that never fires (no faults -> no failures) must
    leave the simulation untouched: every metric matches the pre-fault
    baseline exactly, and the render differs only by the one line that
    discloses the armed (but idle) policy."""
    expected = BASELINE[name]
    scenario = ServingScenario(
        **SCENARIOS[name], retry="backoff", faults="", hedge_seconds=0.0
    )
    report = simulate_serving_scenario(scenario)
    record = ServingRecord.from_report(
        scenario, report, key="-", eval_seconds=0.0
    )
    metrics = record.metrics()
    for key, value in expected["metrics"].items():
        assert metrics[key] == value, f"{name}: metric {key} drifted"
    assert metrics["failed"] == 0
    assert metrics["retries"] == 0
    assert metrics["availability"] == 1.0
    stripped = "\n".join(
        line
        for line in report.render().splitlines()
        if not line.startswith("reliability [")
    )
    assert stripped == expected["render"]


def test_schema_v3_records_revive_with_v4_defaults() -> None:
    """Cached payloads written before the fleet fields existed must still
    load: the v4 keys fall back to their compatibility defaults."""
    scenario = ServingScenario(**SCENARIOS["open-fifo"])
    report = simulate_serving_scenario(scenario)
    record = ServingRecord.from_report(
        scenario, report, key="-", eval_seconds=0.0
    )
    payload = json.loads(json.dumps(record.to_dict()))
    for key in ("fleet", "routing", "cost_dollars"):
        del payload[key]
    payload["legacy_only_key"] = 42  # unknown keys are dropped, not fatal
    revived = ServingRecord.from_dict(payload, cached=True)
    assert revived.fleet == ""
    assert revived.routing == "shared_queue"
    assert revived.cost_dollars == 0.0
    assert revived.cached
    assert revived.metrics() | {"cost_dollars": record.cost_dollars} == (
        record.metrics()
    )


def test_schema_v4_records_revive_with_v5_defaults() -> None:
    """Cached payloads written before the reliability fields existed must
    still load: the v5 keys fall back to their fault-free defaults."""
    scenario = ServingScenario(**SCENARIOS["open-fifo"])
    report = simulate_serving_scenario(scenario)
    record = ServingRecord.from_report(
        scenario, report, key="-", eval_seconds=0.0
    )
    payload = json.loads(json.dumps(record.to_dict()))
    v5_keys = (
        "failed", "retries", "crashes", "hedges_fired",
        "hedges_cancelled", "availability",
    )
    for key in v5_keys:
        del payload[key]
    revived = ServingRecord.from_dict(payload, cached=True)
    assert revived.failed == 0
    assert revived.retries == 0
    assert revived.crashes == 0
    assert revived.hedges_fired == 0
    assert revived.hedges_cancelled == 0
    assert revived.availability == 1.0
    assert revived.cached
    assert revived.metrics() == record.metrics()
