"""Tests for ``python -m repro serve`` argument handling.

The serve subcommand grew a lot of surface (presets, campaigns, capacity
planning, autoscaling, admission, trace replay); these tests pin the
error paths — conflicting flags, unknown presets, broken trace files —
and the happy paths for the closed-loop flags, all through ``main()``
exactly as the shell would invoke them.
"""

import pytest

from repro.__main__ import build_parser, main
from repro.serve.arrivals import Request, save_trace

FAST = ["--qps", "30", "--duration", "0.3", "--instances", "1", "--no-cache"]


def run_cli(argv, capsys):
    main(["serve", *argv])
    return capsys.readouterr().out


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.autoscale is None
        assert args.admission is None
        assert args.trace_file is None
        assert args.max_instances is None  # presets keep their own ceiling

    def test_autoscale_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--autoscale", "magic"])

    def test_admission_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--admission", "polite"])

    def test_negative_instances_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--instances", "0"])


class TestConflictsAndErrors:
    def test_unknown_preset_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown serving preset"):
            main(["serve", "--preset", "nope", "--no-cache"])

    def test_unknown_preset_in_campaign_mode(self):
        with pytest.raises(SystemExit, match="unknown serving preset"):
            main(["serve", "--campaign", "--preset", "nope", "--no-cache"])

    def test_campaign_requires_a_preset(self):
        with pytest.raises(SystemExit, match="--campaign needs --preset"):
            main(["serve", "--campaign", "--no-cache"])

    def test_campaign_conflicts_with_plan_capacity(self):
        with pytest.raises(SystemExit, match="single-point"):
            main([
                "serve", "--campaign", "--preset", "serving",
                "--plan-capacity", "--no-cache",
            ])

    def test_campaign_conflicts_with_trace_file(self):
        with pytest.raises(SystemExit, match="drop --campaign"):
            main([
                "serve", "--campaign", "--preset", "serving",
                "--trace-file", "whatever.csv", "--no-cache",
            ])

    def test_trace_file_conflicts_with_arrival(self):
        with pytest.raises(SystemExit, match="drop --arrival"):
            main([
                "serve", "--trace-file", "whatever.csv",
                "--arrival", "poisson", "--no-cache",
            ])

    def test_missing_trace_file(self, tmp_path):
        with pytest.raises(SystemExit, match="trace file not found"):
            main([
                "serve", "--trace-file", str(tmp_path / "missing.csv"),
                "--no-cache",
            ])

    def test_malformed_trace_file(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("request_id,tenant,graph_size,arrival_time\n"
                       "0,alice,not-a-number,0.1\n")
        with pytest.raises(SystemExit, match="cannot parse trace"):
            main(["serve", "--trace-file", str(bad), "--no-cache"])

    def test_empty_trace_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("request_id,tenant,graph_size,arrival_time\n")
        with pytest.raises(SystemExit, match="cannot parse trace"):
            main(["serve", "--trace-file", str(empty), "--no-cache"])

    def test_trace_sample_needs_trace_out(self):
        with pytest.raises(SystemExit, match="needs --trace-out"):
            main(["serve", *FAST, "--trace-sample", "slo"])

    def test_telemetry_exports_conflict_with_campaign(self):
        with pytest.raises(SystemExit, match="one simulation"):
            main([
                "serve", "--campaign", "--preset", "serving",
                "--trace-out", "t.jsonl", "--no-cache",
            ])
        with pytest.raises(SystemExit, match="one simulation"):
            main([
                "serve", "--campaign", "--preset", "serving",
                "--metrics-out", "m.jsonl", "--no-cache",
            ])

    def test_bad_trace_sample_mode_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="serve:"):
            main([
                "serve", *FAST, "--trace-out", str(tmp_path / "t.jsonl"),
                "--trace-sample", "sometimes",
            ])

    def test_bad_scenario_override_is_a_clean_error(self):
        # Valid argparse input, invalid scenario: caught, not a traceback.
        with pytest.raises(SystemExit, match="serve:"):
            main(["serve", "--qps", "-5", "--no-cache"])

    def test_bad_override_in_campaign_mode_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="serve: queue_budget"):
            main([
                "serve", "--campaign", "--preset", "serving",
                "--queue-budget", "-1", "--no-cache",
            ])


class TestSinglePoint:
    def test_reports_slo_analytics(self, capsys):
        out = run_cli(FAST, capsys)
        assert "p99" in out
        assert "violation rate" in out
        assert "per-tenant" in out

    def test_autoscale_flags_reach_the_engine(self, capsys):
        out = run_cli([
            *FAST, "--qps", "120", "--arrival", "mmpp",
            "--autoscale", "target-util", "--autoscale-target", "0.7",
            "--max-instances", "4", "--warmup-ms", "10",
        ], capsys)
        assert "fleet[target-util]" in out
        assert "instance-seconds" in out
        assert "as-target-util" in out   # label reflects the knob

    def test_admission_flags_reach_the_engine(self, capsys):
        out = run_cli([
            *FAST, "--qps", "400", "--admission", "shed",
            "--queue-budget", "8",
        ], capsys)
        assert "admission[shed]" in out
        assert "shed" in out

    def test_autoscale_with_preset_keeps_the_preset_band(self, capsys):
        out = run_cli([
            "--preset", "autoscale", "--autoscale", "target-util",
            "--duration", "0.3", "--no-cache",
        ], capsys)
        # The autoscale preset's hand-tuned band [1, 6] and initial
        # fleet of 2 must survive enabling the flag.
        assert "in [1, 6]" in out
        assert "2 instance(s)" in out

    def test_quota_and_tarpit_flags(self, capsys):
        out = run_cli([
            *FAST, "--qps", "200", "--admission", "tarpit",
            "--queue-budget", "8", "--quota-qps", "20",
            "--tarpit-ms", "15",
        ], capsys)
        assert "admission[tarpit]" in out

    def test_telemetry_exports_both_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        out = run_cli(
            [*FAST, "--trace-out", str(trace), "--metrics-out", str(metrics)],
            capsys,
        )
        assert "trace spans" in out and "metrics" in out
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        rows = [json.loads(line) for line in metrics.read_text().splitlines()]
        assert spans and rows  # every line parses: valid JSONL
        assert spans[0]["kind"] == "arrive"
        assert {"sample", "counter", "gauge", "histogram"} <= {
            r["kind"] for r in rows
        }

    def test_trace_sample_mode_bounds_the_trace(self, tmp_path, capsys):
        import json

        full = tmp_path / "full.jsonl"
        head = tmp_path / "head.jsonl"
        run_cli([*FAST, "--trace-out", str(full)], capsys)
        run_cli(
            [*FAST, "--trace-out", str(head), "--trace-sample", "head:3"],
            capsys,
        )
        full_ids = {
            json.loads(line).get("request_id")
            for line in full.read_text().splitlines()
        } - {None}
        head_ids = {
            json.loads(line).get("request_id")
            for line in head.read_text().splitlines()
        } - {None}
        assert len(head_ids) == 3
        assert head_ids < full_ids

    def test_trace_replay_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        save_trace(
            [
                Request(tenant=f"t{i % 2}", graph_size=256,
                        arrival_time=0.01 * i, request_id=i)
                for i in range(1, 30)
            ],
            trace,
        )
        out = run_cli(
            ["--trace-file", str(trace), "--duration", "0.3",
             "--instances", "1", "--no-cache"],
            capsys,
        )
        assert "trace" in out
        assert "p99" in out
