"""Tests for the CLI entry point and the markdown report writer."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.report import PAPER_CLAIMS, write_report


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["experiments", "fig3"],
            ["evaluate", "ppi"],
            ["thermal"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_info_runs(self, capsys):
        main(["info"])
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out

    def test_experiments_subset(self, capsys):
        main(["experiments", "table1"])
        out = capsys.readouterr().out
        assert "128x128" in out

    def test_evaluate_runs(self, capsys):
        main(["evaluate", "ppi", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "epoch time" in out

    def test_thermal_runs(self, capsys):
        main(["thermal"])
        out = capsys.readouterr().out
        assert "per-tier temp" in out
        assert "feasible" in out

    def test_thermal_knobs(self, capsys):
        main(["thermal", "--tiers", "4", "--ambient", "30",
              "--layer-resistance", "0.1"])
        out = capsys.readouterr().out
        # Four tiers reported, and the milder thermals keep the stack cool.
        line = next(l for l in out.splitlines() if "per-tier temp" in l)
        assert line.count(",") == 3
        assert "feasible" in out

    def test_thermal_tiers_change_the_outcome(self, capsys):
        main(["thermal"])
        base = capsys.readouterr().out
        main(["thermal", "--tiers", "5"])
        tall = capsys.readouterr().out
        assert base != tall

    def test_sweep_prune(self, capsys, tmp_path):
        from repro.campaign.store import ResultStore

        store = ResultStore(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "b" * 62, {"i": i})
        main(["sweep", "--cache", str(tmp_path), "--prune", "1"])
        out = capsys.readouterr().out
        assert "pruned 2 of 3" in out
        assert len(store) == 1

    def test_serve_parser(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--preset", "serving", "--qps", "100", "--instances", "2"]
        )
        assert args.command == "serve"
        assert args.qps == 100.0
        assert args.instances == 2

    def test_serve_campaign_rejects_plan_capacity(self):
        with pytest.raises(SystemExit, match="single-point"):
            main(["serve", "--preset", "serving", "--campaign",
                  "--plan-capacity"])

    def test_serve_list_presets(self, capsys):
        main(["serve", "--list-presets"])
        out = capsys.readouterr().out
        assert "serving" in out
        assert "arrivals" in out
        assert "policies" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "cora"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReport:
    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", seed=0, fig5_epochs=3)
        text = path.read_text()
        for section in ("Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert section in text
        for claim in PAPER_CLAIMS.values():
            assert claim in text
        assert "speedup" in text
