"""Unit tests for design-space exploration."""

import pytest

from repro.core.dse import DesignPoint, pareto_front, sweep_mesh, sweep_tiers


def make_point(label, time, energy, temp):
    from repro.core.config import ReGraphXConfig

    return DesignPoint(
        label=label,
        config=ReGraphXConfig(),
        epoch_seconds=time,
        epoch_energy_joules=energy,
        peak_celsius=temp,
        thermally_feasible=temp < 105,
    )


class TestParetoFront:
    def test_dominated_point_removed(self):
        a = make_point("good", 1.0, 1.0, 50.0)
        b = make_point("bad", 2.0, 2.0, 60.0)
        assert pareto_front([a, b]) == [a]

    def test_tradeoff_points_kept(self):
        a = make_point("fast-hot", 1.0, 2.0, 90.0)
        b = make_point("slow-cool", 2.0, 1.0, 60.0)
        assert set(p.label for p in pareto_front([a, b])) == {"fast-hot", "slow-cool"}

    def test_identical_points_both_kept(self):
        a = make_point("a", 1.0, 1.0, 50.0)
        b = make_point("b", 1.0, 1.0, 50.0)
        assert len(pareto_front([a, b])) == 2

    def test_tie_on_two_axes_still_dominates(self):
        """Equal on time+energy but strictly cooler -> dominates."""
        cooler = make_point("cooler", 1.0, 1.0, 50.0)
        hotter = make_point("hotter", 1.0, 1.0, 60.0)
        assert pareto_front([cooler, hotter]) == [cooler]

    def test_many_duplicates_with_one_dominated(self):
        dup1 = make_point("dup1", 1.0, 1.0, 50.0)
        dup2 = make_point("dup2", 1.0, 1.0, 50.0)
        dup3 = make_point("dup3", 1.0, 1.0, 50.0)
        bad = make_point("bad", 2.0, 1.0, 50.0)
        front = pareto_front([dup1, bad, dup2, dup3])
        assert front == [dup1, dup2, dup3]

    def test_single_point_front(self):
        a = make_point("only", 3.0, 4.0, 70.0)
        assert pareto_front([a]) == [a]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_edp_property(self):
        assert make_point("x", 2.0, 3.0, 50.0).edp == pytest.approx(6.0)


class TestTierSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_tiers([2, 3, 5], workload_dataset="ppi", scale=0.05, seed=0)

    def test_one_point_per_tier_count(self, points):
        assert [p.label for p in points] == ["2-tier", "3-tier", "5-tier"]

    def test_more_tiers_hotter(self, points):
        temps = [p.peak_celsius for p in points]
        assert temps == sorted(temps)

    def test_more_tiers_more_e_capacity(self, points):
        capacities = [p.config.num_e_crossbars for p in points]
        assert capacities == sorted(capacities)
        assert capacities[0] < capacities[-1]

    def test_paper_design_point_feasible(self, points):
        three_tier = points[1]
        assert three_tier.thermally_feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_tiers([])
        with pytest.raises(ValueError):
            sweep_tiers([1])


class TestMeshSweep:
    def test_mesh_sweep_runs(self):
        points = sweep_mesh([8], workload_dataset="ppi", scale=0.05, seed=0)
        assert len(points) == 1
        assert points[0].label == "8x8"
        assert points[0].epoch_seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_mesh([])


class TestSweepsThroughCampaignEngine:
    def test_tier_sweep_uses_result_store(self, tmp_path):
        """Sweeps ride the campaign cache: a repeat sweep re-evaluates nothing."""
        from repro.campaign.store import ResultStore

        store = ResultStore(tmp_path)
        first = sweep_tiers(
            [2, 3], workload_dataset="ppi", scale=0.05, seed=0, store=store
        )
        assert len(store) == 2
        import repro.campaign.executor as executor

        original = executor.evaluate_scenario
        executor.evaluate_scenario = lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("expected pure cache hits")
        )
        try:
            second = sweep_tiers(
                [2, 3], workload_dataset="ppi", scale=0.05, seed=0, store=store
            )
        finally:
            executor.evaluate_scenario = original
        assert [p.label for p in second] == [p.label for p in first]
        assert [p.epoch_seconds for p in second] == [p.epoch_seconds for p in first]
        assert [p.peak_celsius for p in second] == [p.peak_celsius for p in first]
        assert [p.config for p in second] == [p.config for p in first]
