"""Tests for SLO burn-rate analytics: windowing, exhaustion, attribution.

The tracker is driven with hand-placed completions so every window count
is known exactly; the rendered section is pinned loosely (substrings) so
formatting can evolve without rewriting arithmetic assertions.
"""

import pytest

from repro.obs import BurnRateTracker, BurnWindow, SloBurnReport


def tracker(budget=0.1, window=1.0, slo=0.05):
    return BurnRateTracker(slo_seconds=slo, budget=budget, window_seconds=window)


class TestValidation:
    def test_slo_must_be_positive(self):
        with pytest.raises(ValueError, match="SLO"):
            BurnRateTracker(slo_seconds=0.0, budget=0.01, window_seconds=1.0)

    def test_budget_must_be_a_rate(self):
        for budget in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="budget"):
                BurnRateTracker(slo_seconds=0.05, budget=budget, window_seconds=1.0)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            BurnRateTracker(slo_seconds=0.05, budget=0.01, window_seconds=0.0)


class TestObserve:
    def test_returns_the_violation_verdict(self):
        t = tracker(slo=0.05)
        assert t.observe(0.1, "a", latency=0.06) is True
        assert t.observe(0.2, "a", latency=0.05) is False  # boundary: meets SLO
        assert t.completed == 2 and t.violations == 1

    def test_attributes_violations_per_tenant(self):
        t = tracker()
        t.observe(0.1, "alice", latency=0.1)
        t.observe(0.2, "alice", latency=0.1)
        t.observe(0.3, "bob", latency=0.1)
        t.observe(0.4, "bob", latency=0.01)
        assert t.violations_for("alice") == 2
        assert t.violations_for("bob") == 1
        assert t.violations_for("carol") == 0


class TestReport:
    def test_empty_run_has_no_report(self):
        assert tracker().report() is None

    def test_window_series_is_contiguous_from_zero(self):
        t = tracker(budget=0.1, window=1.0)
        # Window 0: 2 completions, 1 violation.  Window 1: silent.
        # Window 2: 4 completions, 1 violation.
        t.observe(0.2, "a", 0.1)
        t.observe(0.8, "a", 0.01)
        for k in range(3):
            t.observe(2.1 + 0.1 * k, "a", 0.01)
        t.observe(2.5, "a", 0.1)
        report = t.report()
        assert [w.start for w in report.windows] == [0.0, 1.0, 2.0]
        assert [w.completed for w in report.windows] == [2, 0, 4]
        assert [w.violations for w in report.windows] == [1, 0, 1]
        # burn = (violations/completed)/budget; empty window burns 0.
        assert report.windows[0].burn_rate == pytest.approx(5.0)
        assert report.windows[1].burn_rate == 0.0
        assert report.windows[2].burn_rate == pytest.approx(2.5)
        assert report.peak_burn_rate == pytest.approx(5.0)
        assert report.peak_window_start == 0.0
        assert report.overall_burn_rate == pytest.approx((2 / 6) / 0.1)

    def test_exhaustion_interpolated_inside_the_crossing_window(self):
        t = tracker(budget=0.1, window=1.0)
        # 10 completions total -> whole-run allowance = 1 violation.
        # Window 0 alone has 2 violations, so the budget dies mid-window:
        # allowed(1) / violations-in-window(2) = half way through.
        t.observe(0.1, "a", 0.1)
        t.observe(0.2, "a", 0.1)
        for k in range(8):
            t.observe(0.3 + 0.05 * k, "a", 0.01)
        report = t.report()
        assert report.exhausted_at == pytest.approx(0.5)
        assert report.time_to_exhaustion is None

    def test_time_to_exhaustion_extrapolates_the_last_window(self):
        t = tracker(budget=0.1, window=1.0)
        # 100 completions, 1 violation -> allowance 10, 9 left; the final
        # window burns 1 violation per second -> 9 s to exhaustion.
        for k in range(99):
            t.observe(0.5, "a", 0.01)
        t.observe(0.9, "a", 0.1)
        report = t.report()
        assert report.exhausted_at is None
        assert report.time_to_exhaustion == pytest.approx(9.0)

    def test_healthy_run_has_neither_exhaustion_nor_countdown(self):
        t = tracker()
        for k in range(10):
            t.observe(0.1 * k, "a", 0.01)
        report = t.report()
        assert report.exhausted_at is None
        assert report.time_to_exhaustion is None
        assert report.peak_burn_rate == 0.0


class TestRender:
    def test_render_names_the_budget_window_and_peak(self):
        t = tracker(budget=0.01, window=0.25)
        t.observe(0.1, "alice", 0.1)
        t.observe(0.2, "bob", 0.01)
        lines = t.report().render()
        head = lines[0]
        assert "SLO burn (budget 1.00%, window 250 ms)" in head
        assert "peak" in head and "exhausted" in head
        assert lines[1].startswith("  burn/window")
        assert "violations by tenant: alice 100% (1)" in lines[2]

    def test_render_skips_attribution_when_clean(self):
        t = tracker()
        t.observe(0.1, "a", 0.01)
        lines = t.report().render()
        assert len(lines) == 2  # head + series, no tenant line

    def test_report_is_frozen(self):
        t = tracker()
        t.observe(0.1, "a", 0.1)
        report = t.report()
        assert isinstance(report, SloBurnReport)
        assert isinstance(report.windows[0], BurnWindow)
        with pytest.raises(AttributeError):
            report.budget = 0.5
