"""Tests for campaign analysis hooks (records -> DSE vocabulary)."""

import pytest

from repro.campaign.analysis import best_record, pareto_records, to_design_point
from repro.campaign.results import CampaignResult, ScenarioRecord
from repro.campaign.spec import Scenario
from repro.core.dse import DesignPoint


def make_record(label, time, energy, temp, tiers=None, feasible=True):
    scenario = Scenario(dataset="ppi", scale=0.05, tiers=tiers, label=label)
    return ScenarioRecord(
        label=label,
        key=label,
        scenario=scenario.describe(),
        epoch_seconds=time,
        epoch_energy_joules=energy,
        peak_celsius=temp,
        thermally_feasible=feasible,
        worst_compute_seconds=time / 2,
        worst_communication_seconds=time / 2,
        energy_per_input_joules=energy / 10,
        num_inputs=10,
        eval_seconds=0.0,
    )


class TestPareto:
    def test_dominated_record_removed(self):
        good = make_record("good", 1.0, 1.0, 50.0)
        bad = make_record("bad", 2.0, 2.0, 60.0)
        assert pareto_records([good, bad]) == [good]

    def test_tradeoffs_kept(self):
        a = make_record("fast-hot", 1.0, 2.0, 90.0)
        b = make_record("slow-cool", 2.0, 1.0, 60.0)
        assert pareto_records([a, b]) == [a, b]

    def test_exact_duplicates_all_survive(self):
        a = make_record("a", 1.0, 1.0, 50.0)
        b = make_record("b", 1.0, 1.0, 50.0)
        assert pareto_records([a, b]) == [a, b]

    def test_empty(self):
        assert pareto_records([]) == []


class TestDesignPointBridge:
    def test_to_design_point_rematerializes_config(self):
        record = make_record("x", 1.0, 2.0, 50.0, tiers=5)
        point = to_design_point(record)
        assert isinstance(point, DesignPoint)
        assert point.config.tiers == 5
        assert point.config.v_tier == 2
        assert point.epoch_seconds == 1.0
        assert point.edp == pytest.approx(2.0)


class TestBestRecord:
    def test_min_edp_among_feasible(self):
        hot = make_record("hot", 0.1, 0.1, 200.0, feasible=False)
        ok = make_record("ok", 1.0, 1.0, 50.0)
        worse = make_record("worse", 2.0, 2.0, 50.0)
        assert best_record([hot, ok, worse]).label == "ok"

    def test_all_infeasible_falls_back(self):
        hot = make_record("hot", 0.1, 0.1, 200.0, feasible=False)
        assert best_record([hot]).label == "hot"

    def test_other_metrics(self):
        a = make_record("a", 1.0, 4.0, 50.0)
        b = make_record("b", 2.0, 1.0, 50.0)
        assert best_record([a, b], metric="epoch_seconds").label == "a"
        assert best_record([a, b], metric="epoch_energy_joules").label == "b"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            best_record([])


class TestCampaignTable:
    def test_summary_counts_rendered(self):
        result = CampaignResult(
            name="demo",
            records=[make_record("a", 1.0, 1.0, 50.0)],
            hits=1,
            misses=0,
            elapsed_seconds=0.5,
        )
        text = result.table().render()
        assert "demo" in text
        assert "1 cached / 0 evaluated" in text
