"""Unit tests for GNN primitive operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy import sparse

from repro.gnn.ops import (
    glorot_init,
    relu,
    relu_grad,
    softmax,
    softmax_cross_entropy,
    spmm,
)

finite_floats = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


class TestActivations:
    def test_relu_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_relu_grad_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(relu_grad(x), [0.0, 0.0, 1.0])

    @given(arrays(np.float64, (4, 3), elements=finite_floats))
    @settings(max_examples=30)
    def test_relu_nonnegative_and_idempotent(self, x):
        y = relu(x)
        assert np.all(y >= 0)
        assert np.array_equal(relu(y), y)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.random.default_rng(0).normal(size=(5, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerically_stable_for_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    @given(arrays(np.float64, (3, 5), elements=finite_floats))
    @settings(max_examples=30)
    def test_softmax_is_distribution(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_loss(self):
        logits = np.zeros((4, 3))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(5):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = softmax_cross_entropy(bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _ = softmax_cross_entropy(bumped, labels)
                assert grad[i, j] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_mask_zeroes_gradient(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        labels = np.array([0, 1, 2, 0])
        mask = np.array([True, False, True, False])
        _, grad = softmax_cross_entropy(logits, labels, mask)
        assert np.all(grad[~mask] == 0)
        assert np.any(grad[mask] != 0)

    def test_empty_mask(self):
        logits = np.zeros((3, 2))
        loss, grad = softmax_cross_entropy(logits, np.zeros(3, dtype=int), np.zeros(3, bool))
        assert loss == 0.0
        assert np.all(grad == 0)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0, 5]))


class TestGlorot:
    def test_shape_and_range(self):
        w = glorot_init(30, 20, seed=0)
        limit = np.sqrt(6.0 / 50)
        assert w.shape == (30, 20)
        assert np.all(np.abs(w) <= limit)

    def test_deterministic(self):
        assert np.array_equal(glorot_init(5, 5, seed=1), glorot_init(5, 5, seed=1))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            glorot_init(0, 5)


class TestSpmm:
    def test_matches_dense(self):
        rng = np.random.default_rng(0)
        a = sparse.random(10, 10, density=0.3, random_state=0, format="csr")
        x = rng.normal(size=(10, 4))
        assert np.allclose(spmm(a, x), a.toarray() @ x)

    def test_shape_mismatch_rejected(self):
        a = sparse.identity(4, format="csr")
        with pytest.raises(ValueError):
            spmm(a, np.zeros((5, 2)))
