"""Tests for content-addressed scenario keys and the result store."""

import os

import pytest

from repro.campaign.spec import Scenario
from repro.campaign.store import ResultStore, scenario_key
from repro.core.config import ReGraphXConfig
from repro.utils.hashing import canonical_json, stable_digest, stable_seed


class TestHashing:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_dataclasses_canonicalize(self):
        text = canonical_json(ReGraphXConfig())
        assert '"mesh_width":8' in text

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_json(object())

    def test_stable_digest_stable(self):
        assert stable_digest({"x": 1}) == stable_digest({"x": 1})
        assert stable_digest({"x": 1}) != stable_digest({"x": 2})

    def test_stable_seed_range_and_determinism(self):
        a = stable_seed("campaign", 0, 3)
        assert a == stable_seed("campaign", 0, 3)
        assert 0 <= a < 2**32
        assert a != stable_seed("campaign", 0, 4)


class TestScenarioKey:
    def test_deterministic(self):
        s = Scenario(dataset="ppi", scale=0.05, tiers=4)
        assert scenario_key(s) == scenario_key(s)

    def test_every_knob_changes_the_key(self):
        base = Scenario(dataset="ppi", scale=0.05)
        variants = [
            Scenario(dataset="reddit", scale=0.05),
            Scenario(dataset="ppi", scale=0.06),
            Scenario(dataset="ppi", scale=0.05, seed=1),
            Scenario(dataset="ppi", scale=0.05, tiers=4),
            Scenario(dataset="ppi", scale=0.05, mesh_width=6),
            Scenario(dataset="ppi", scale=0.05, noc_clock_hz=2e8),
            Scenario(dataset="ppi", scale=0.05, multicast=False),
            Scenario(dataset="ppi", scale=0.05, use_sa=True),
            Scenario(dataset="ppi", scale=0.05, batch_size=2),
        ]
        keys = {scenario_key(v) for v in variants} | {scenario_key(base)}
        assert len(keys) == len(variants) + 1

    def test_label_is_presentation_only(self):
        a = Scenario(dataset="ppi", scale=0.05, label="one")
        b = Scenario(dataset="ppi", scale=0.05, label="two")
        assert scenario_key(a) == scenario_key(b)

    def test_default_scale_and_explicit_equal_share_a_key(self):
        from repro.experiments.common import DEFAULT_SCALES

        implicit = Scenario(dataset="ppi")
        explicit = Scenario(dataset="ppi", scale=DEFAULT_SCALES["ppi"])
        assert scenario_key(implicit) == scenario_key(explicit)

    def test_base_config_participates(self):
        s = Scenario(dataset="ppi", scale=0.05)
        custom = ReGraphXConfig(num_layers=2)
        assert scenario_key(s) != scenario_key(s, base_config=custom)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        assert store.get(key) is None
        assert key not in store
        store.put(key, {"epoch_seconds": 1.5})
        assert key in store
        assert store.get(key) == {"epoch_seconds": 1.5}
        assert len(store) == 1
        assert store.keys() == [key]

    def test_sharded_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "1" * 62
        path = store.put(key, {})
        assert path == tmp_path / "campaigns" / "cd" / f"{key}.json"
        assert path.is_file()

    def test_corrupt_record_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "2" * 62
        store.put(key, {"ok": True})
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "3" * 62, {"i": i})
        assert store.clear() == 3
        assert len(store) == 0

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nowhere")
        assert len(store) == 0
        assert store.keys() == []
        assert store.clear() == 0


class TestPruneAndSize:
    @staticmethod
    def fill(store, n):
        keys = [f"{i:02d}" + "a" * 62 for i in range(n)]
        for i, key in enumerate(keys):
            path = store.put(key, {"i": i})
            # Deterministic mtimes: key i is the i-th oldest.
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return keys

    def test_size_report_counts_entries_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        self.fill(store, 4)
        report = store.size_report()
        assert report["entries"] == 4
        assert report["total_bytes"] > 0

    def test_size_report_empty(self, tmp_path):
        report = ResultStore(tmp_path / "nowhere").size_report()
        assert report == {"entries": 0, "total_bytes": 0}

    def test_prune_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self.fill(store, 5)
        assert store.prune(2) == 3
        assert store.get(keys[0]) is None
        assert store.get(keys[2]) is None
        assert store.get(keys[3]) == {"i": 3}
        assert store.get(keys[4]) == {"i": 4}
        assert len(store) == 2

    def test_prune_noop_when_under_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        self.fill(store, 3)
        assert store.prune(10) == 0
        assert len(store) == 3

    def test_prune_zero_clears_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        self.fill(store, 3)
        assert store.prune(0) == 3
        assert len(store) == 0

    def test_prune_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "nowhere").prune(5) == 0

    def test_prune_negative_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultStore(tmp_path).prune(-1)
