"""Campaign execution: evaluate scenarios serially or across processes.

The executor is the single funnel every sweep goes through — DSE sweeps,
CLI campaigns, serving campaigns, tests.  For each scenario it first
consults the content-addressed :class:`~repro.campaign.store.ResultStore`
(a hit costs one JSON read), then fans the remaining evaluations out over
a ``ProcessPoolExecutor`` (``jobs > 1``) or runs them inline.  Results
come back in scenario order regardless of completion order, so parallel
and serial runs are bit-identical.

The cache-first fan-out core (:func:`run_cached_scenarios`) is generic
over the record type: any frozen dataclass with ``label``/``scenario``/
``eval_seconds``/``cached`` fields plus ``to_dict``/``from_dict`` — the
architecture :class:`~repro.campaign.results.ScenarioRecord` here, the
serving layer's ``ServingRecord`` in :mod:`repro.serve.sweep`.

Determinism: every scenario carries its own seed (part of its content
hash), and each evaluation builds its workload and mapping from that seed
alone — worker processes share no RNG state.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Sequence, TypeVar

from repro.campaign.results import CampaignResult, ScenarioRecord
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import ResultStore, scenario_key
from repro.core.accelerator import ReGraphX
from repro.core.config import ReGraphXConfig
from repro.core.thermal import ThermalModel, ThermalSpec, tier_powers_from_report

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed step of a cache-first campaign run.

    The funnel emits one ``started`` event when an evaluation begins and
    one terminal event per scenario — ``cache-hit`` (revived from the
    store) or ``finished`` (freshly computed) — so a consumer can render
    live progress, split hits from computed work, and show an ETA without
    re-deriving any of it.

    Attributes:
        kind: ``"started"`` / ``"cache-hit"`` / ``"finished"``.
        index: the scenario's position in the sweep (input order).
        total: scenarios in the sweep.
        done: scenarios complete after this event.
        label: the scenario's display label.
        eval_seconds: leaf wall time (terminal events; 0 for cache hits).
        hits / computed: terminal-event tallies so far, split by origin.
        eta_seconds: projected wall time left, from the mean computed
            leaf time over the remaining uncached work (``None`` until
            one computed result exists, or when nothing remains).
    """

    kind: str
    index: int
    total: int
    done: int
    label: str
    eval_seconds: float = 0.0
    hits: int = 0
    computed: int = 0
    eta_seconds: float | None = None

    def render(self) -> str:
        """One-line form, matching the classic string-progress format."""
        if self.kind == "started":
            return f"[{self.done}/{self.total}] {self.label}  (running)"
        status = (
            "cache hit" if self.kind == "cache-hit"
            else f"{self.eval_seconds:.1f}s"
        )
        eta = (
            f", eta {self.eta_seconds:.0f}s"
            if self.eta_seconds is not None
            else ""
        )
        return f"[{self.done}/{self.total}] {self.label}  ({status}{eta})"


EventFn = Callable[[ProgressEvent], None]


def evaluate_scenario(
    scenario: Scenario,
    base_config: ReGraphXConfig | None = None,
    thermal: ThermalSpec | None = None,
    key: str | None = None,
) -> ScenarioRecord:
    """Evaluate one scenario end to end (timing, energy, thermals).

    This is the leaf evaluator — module-level so process pools can pickle
    it — and the superset of the DSE ``evaluate_design`` path: it honours
    the scenario's multicast/SA flags and batch-size override.
    """
    start = time.perf_counter()
    config = scenario.to_config(base_config)
    accelerator = ReGraphX(config)
    workload = accelerator.build_workload(
        scenario.dataset,
        scale=scenario.effective_scale,
        seed=scenario.seed,
        batch_size=scenario.batch_size,
    )
    report = accelerator.evaluate(
        workload,
        multicast=scenario.multicast,
        use_sa=scenario.use_sa,
        seed=scenario.seed,
        sa_restarts=scenario.sa_restarts,
    )
    profile = ThermalModel(thermal).steady_state(tier_powers_from_report(report))
    return ScenarioRecord(
        label=scenario.display_label,
        key=key if key is not None else scenario_key(scenario, base_config),
        scenario=scenario.describe(),
        epoch_seconds=report.epoch_seconds,
        epoch_energy_joules=report.epoch_energy,
        peak_celsius=profile.peak_celsius,
        thermally_feasible=profile.feasible,
        worst_compute_seconds=report.worst_compute,
        worst_communication_seconds=report.worst_communication,
        energy_per_input_joules=report.energy_per_input,
        num_inputs=report.pipeline.num_inputs,
        eval_seconds=time.perf_counter() - start,
        cached=False,
    )


R = TypeVar("R")


def run_cached_scenarios(
    scenarios: Sequence[Any],
    keys: Sequence[str],
    leaf: Callable[[Any, str], R],
    record_type: type[R],
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    on_event: EventFn | None = None,
) -> tuple[list[R], int, int]:
    """Cache-first fan-out: the shared core of every campaign flavour.

    For each ``(scenario, key)`` pair, a stored record is revived (and
    relabelled with the scenario's current display label); misses run
    through ``leaf(scenario, key)`` — inline, or across a process pool —
    and are persisted by this parent, so workers never touch the store.

    Args:
        scenarios: evaluation points, already labelled and seeded.
        keys: one content-hash per scenario (same order).
        leaf: module-level (picklable) evaluator returning one record.
        record_type: record dataclass providing ``from_dict``.
        jobs: worker processes for cache misses (``<= 1`` runs inline).
        store: result cache; ``None`` disables persistence entirely.
        progress: per-scenario string callback (e.g. ``print``).
        on_event: structured :class:`ProgressEvent` callback — the
            streamed form of ``progress``, with start events, hit vs
            computed tallies, and an ETA.

    Returns:
        ``(records in scenario order, cache hits, cache misses)``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    scenarios = list(scenarios)
    records: list[R | None] = [None] * len(scenarios)

    pending: list[int] = []
    for i, (scenario, key) in enumerate(zip(scenarios, keys)):
        stored = store.get(key) if store is not None else None
        if stored is not None:
            records[i] = _relabel(
                record_type.from_dict(stored, cached=True),  # type: ignore[attr-defined]
                scenario.display_label,
            )
        else:
            pending.append(i)
    hits = len(scenarios) - len(pending)

    done = 0
    hits_done = 0
    computed_done = 0
    computed_time = 0.0
    total = len(scenarios)
    effective_jobs = max(1, min(jobs, len(pending)))

    def announce(index: int) -> None:
        if on_event is not None:
            on_event(
                ProgressEvent(
                    kind="started",
                    index=index,
                    total=total,
                    done=done,
                    label=scenarios[index].display_label,
                    hits=hits_done,
                    computed=computed_done,
                )
            )

    def report(index: int, record: Any) -> None:
        nonlocal done, hits_done, computed_done, computed_time
        done += 1
        if record.cached:
            hits_done += 1
        else:
            computed_done += 1
            computed_time += record.eval_seconds
        if progress is not None:
            status = "cache hit" if record.cached else f"{record.eval_seconds:.1f}s"
            progress(f"[{done}/{total}] {record.label}  ({status})")
        if on_event is not None:
            pending_left = len(pending) - computed_done
            eta = (
                (computed_time / computed_done) * pending_left / effective_jobs
                if pending_left > 0 and computed_done > 0
                else None
            )
            on_event(
                ProgressEvent(
                    kind="cache-hit" if record.cached else "finished",
                    index=index,
                    total=total,
                    done=done,
                    label=record.label,
                    eval_seconds=record.eval_seconds,
                    hits=hits_done,
                    computed=computed_done,
                    eta_seconds=eta,
                )
            )

    for i in range(len(scenarios)):
        if records[i] is not None:
            report(i, records[i])

    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for i in pending:
                announce(i)
                futures[pool.submit(leaf, scenarios[i], keys[i])] = i
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    i = futures[future]
                    record = future.result()
                    records[i] = record
                    if store is not None:
                        store.put(keys[i], record.to_dict())  # type: ignore[attr-defined]
                    report(i, record)
    else:
        for i in pending:
            announce(i)
            record = leaf(scenarios[i], keys[i])
            records[i] = record
            if store is not None:
                store.put(keys[i], record.to_dict())  # type: ignore[attr-defined]
            report(i, record)

    assert all(r is not None for r in records)
    return list(records), hits, len(pending)  # type: ignore[arg-type]


def _evaluate_leaf(
    scenario: Scenario, key: str, base_config: ReGraphXConfig | None = None
) -> ScenarioRecord:
    """Architecture leaf with the ``(scenario, key)`` funnel signature."""
    return evaluate_scenario(scenario, base_config, key=key)


def run_scenarios(
    scenarios: Sequence[Scenario],
    base_config: ReGraphXConfig | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    name: str = "campaign",
    on_event: EventFn | None = None,
) -> CampaignResult:
    """Run ``scenarios``, reusing stored results and fanning out misses.

    Args:
        scenarios: evaluation points, already labelled and seeded.
        base_config: architecture every scenario's overrides apply to.
        jobs: worker processes for cache misses (``<= 1`` runs inline).
        store: result cache; ``None`` disables persistence entirely.
        progress: per-scenario callback (e.g. ``print``).
        name: campaign name carried into the result.
        on_event: structured :class:`ProgressEvent` callback.
    """
    scenarios = list(scenarios)
    started = time.perf_counter()
    keys = [scenario_key(s, base_config) for s in scenarios]
    records, hits, misses = run_cached_scenarios(
        scenarios,
        keys,
        partial(_evaluate_leaf, base_config=base_config),
        ScenarioRecord,
        jobs=jobs,
        store=store,
        progress=progress,
        on_event=on_event,
    )
    return CampaignResult(
        name=name,
        records=records,
        hits=hits,
        misses=misses,
        elapsed_seconds=time.perf_counter() - started,
    )


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    on_event: EventFn | None = None,
) -> CampaignResult:
    """Enumerate a :class:`CampaignSpec` and run it through the engine."""
    return run_scenarios(
        spec.scenarios(),
        base_config=spec.base_config,
        jobs=jobs,
        store=store,
        progress=progress,
        name=spec.name,
        on_event=on_event,
    )


def _relabel(record: R, display_label: str) -> R:
    """Carry the *current* display label on a cached record.

    Labels are presentation, not content — two sweeps may name the same
    evaluation point differently, and each should see its own name.
    Works on any record dataclass with ``label`` + ``scenario`` fields.
    """
    if record.label == display_label:  # type: ignore[attr-defined]
        return record
    from dataclasses import replace

    described = dict(record.scenario)  # type: ignore[attr-defined]
    described["label"] = display_label
    return replace(  # type: ignore[type-var]
        record, label=display_label, scenario=described
    )
