"""Analysis hooks over campaign results.

Campaign records are plain JSON-able rows; these helpers lift them back
into the DSE vocabulary — :class:`~repro.core.dse.DesignPoint` and
``pareto_front`` — so everything the DSE layer knows how to do applies to
persisted campaign output too.  Imports of :mod:`repro.core.dse` stay
inside functions: dse itself runs its sweeps through this package.
"""

from __future__ import annotations

from typing import Sequence

from repro.campaign.results import CampaignResult, ScenarioRecord
from repro.campaign.spec import Scenario
from repro.core.config import ReGraphXConfig


def to_design_point(
    record: ScenarioRecord,
    base_config: ReGraphXConfig | None = None,
    scenario: Scenario | None = None,
):
    """Rebuild the DSE view of one record.

    The config is rematerialized from ``scenario`` (pass the scenario you
    executed — the content key guarantees it describes the evaluated
    architecture even on a cross-sweep cache hit).  Without one, the
    record's stored knobs are used, which is only exact when
    ``base_config`` matches the base the record was produced against.
    """
    from repro.core.dse import DesignPoint

    if scenario is None:
        scenario = Scenario.from_dict(record.scenario)
    return DesignPoint(
        label=record.label,
        config=scenario.to_config(base_config),
        epoch_seconds=record.epoch_seconds,
        epoch_energy_joules=record.epoch_energy_joules,
        peak_celsius=record.peak_celsius,
        thermally_feasible=record.thermally_feasible,
    )


def pareto_records(
    records: Sequence[ScenarioRecord],
    base_config: ReGraphXConfig | None = None,
) -> list[ScenarioRecord]:
    """Pareto-efficient records on (epoch time, energy, peak temperature).

    Reuses :func:`repro.core.dse.pareto_front`; identity of the converted
    points maps the front back onto the original records.
    """
    from repro.core.dse import pareto_front

    points = [to_design_point(r, base_config) for r in records]
    front = {id(p) for p in pareto_front(points)}
    return [r for r, p in zip(records, points) if id(p) in front]


def best_record(
    records: Sequence[ScenarioRecord], metric: str = "edp"
) -> ScenarioRecord:
    """The feasible record minimizing ``metric`` (any over infeasible)."""
    if not records:
        raise ValueError("no records to rank")
    feasible = [r for r in records if r.thermally_feasible] or list(records)
    return min(feasible, key=lambda r: getattr(r, metric))


def campaign_table(result: CampaignResult):
    """Fixed-width summary of a campaign run (what the CLI prints)."""
    from repro.experiments.common import ExperimentTable

    table = ExperimentTable(
        f"Campaign {result.name!r}: {len(result)} scenarios, "
        f"{result.hits} cached / {result.misses} evaluated "
        f"in {result.elapsed_seconds:.1f}s",
        ["scenario", "epoch (s)", "energy (J)", "EDP", "peak (C)", "ok", "cached"],
    )
    for record in result.records:
        table.add_row(
            record.label,
            record.epoch_seconds,
            record.epoch_energy_joules,
            record.edp,
            record.peak_celsius,
            "yes" if record.thermally_feasible else "NO",
            "hit" if record.cached else "-",
        )
    return table
