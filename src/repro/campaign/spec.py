"""Declarative scenario and campaign specifications.

A :class:`Scenario` names one point in the evaluation space: which dataset
at which scale and seed, on which architecture variant (tier count, mesh
footprint, NoC clock) and with which evaluation flags (multicast on/off,
SA mapping on/off).  A :class:`CampaignSpec` is a *sweep*: a base scenario
plus named axes whose cross-product enumerates scenarios declaratively —
no hand-rolled nested loops.

Architecture knobs default to ``None`` meaning "inherit from the base
configuration", so a scenario composes with an arbitrary
:class:`~repro.core.config.ReGraphXConfig` supplied at execution time.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.core.config import ReGraphXConfig
from repro.utils.units import MHZ

#: Bump when the evaluation model changes in a way that invalidates cached
#: results (the version participates in every scenario's content hash).
#: v2: SA mapping defaults scale iterations with mesh size and scenarios
#: carry an ``sa_restarts`` knob, changing every ``use_sa=True`` outcome.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Scenario:
    """One evaluation point: workload knobs + architecture overrides + flags.

    Attributes:
        dataset: Table II dataset name (``ppi``/``reddit``/``amazon2m``).
        scale: synthetic graph scale; ``None`` picks the laptop-friendly
            default for the dataset (``DEFAULT_SCALES``).
        seed: RNG seed for generation/partitioning/batching/SA.
        tiers: stacked tier count override (``None`` = inherit).  When set,
            the V tier is re-centered at ``tiers // 2`` and the chip static
            power is rescaled with the physical tile count, matching the
            DSE sweep conventions.
        mesh_width / mesh_height: planar mesh overrides; a lone
            ``mesh_width`` implies a square mesh.
        noc_clock_hz: NoC router clock override.
        multicast: tree-multicast (paper default) vs unicast NoC traffic.
        use_sa: SA-optimized stage placement vs contiguous mapping.
        sa_restarts: independent annealing chains when ``use_sa`` (best
            final cost wins); ignored for contiguous mapping.
        batch_size: Cluster-GCN beta override (``None`` = paper default).
        label: display name; auto-derived from the knobs when empty.
    """

    dataset: str = "ppi"
    scale: float | None = None
    seed: int = 0
    tiers: int | None = None
    mesh_width: int | None = None
    mesh_height: int | None = None
    noc_clock_hz: float | None = None
    multicast: bool = True
    use_sa: bool = False
    sa_restarts: int = 1
    batch_size: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.tiers is not None and self.tiers < 2:
            raise ValueError("a ReGraphX stack needs at least 2 tiers")
        if self.noc_clock_hz is not None and self.noc_clock_hz <= 0:
            raise ValueError("NoC clock must be positive")
        if self.sa_restarts < 1:
            raise ValueError("sa_restarts must be at least 1")

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def effective_scale(self) -> float:
        """Explicit scale, or the dataset's laptop-friendly default."""
        if self.scale is not None:
            return self.scale
        from repro.experiments.common import DEFAULT_SCALES

        try:
            return DEFAULT_SCALES[self.dataset]
        except KeyError:
            raise ValueError(
                f"no default scale for dataset {self.dataset!r}; set scale explicitly"
            ) from None

    @property
    def display_label(self) -> str:
        return self.label or self.auto_label()

    def auto_label(self) -> str:
        """Readable name derived from the non-default knobs."""
        parts = [self.dataset]
        if self.tiers is not None:
            parts.append(f"{self.tiers}t")
        if self.mesh_width is not None:
            height = self.mesh_height or self.mesh_width
            parts.append(f"{self.mesh_width}x{height}")
        if self.noc_clock_hz is not None:
            parts.append(f"{self.noc_clock_hz / MHZ:g}MHz")
        if self.batch_size is not None:
            parts.append(f"b{self.batch_size}")
        parts.append("mc" if self.multicast else "uni")
        if self.use_sa:
            parts.append(
                "sa" if self.sa_restarts == 1 else f"sa{self.sa_restarts}"
            )
        parts.append(f"s{self.seed}")
        return "-".join(parts)

    # ------------------------------------------------------------------
    # Architecture materialization
    # ------------------------------------------------------------------
    def to_config(self, base: ReGraphXConfig | None = None) -> ReGraphXConfig:
        """Materialize the architecture this scenario evaluates.

        Overrides are applied to ``base`` (paper design point by default).
        Whenever the topology changes, the chip static power is rescaled
        with the physical tile count — the same convention the tier and
        mesh DSE sweeps established.
        """
        base = base or ReGraphXConfig()
        config = base
        if self.tiers is not None:
            config = replace(config, tiers=self.tiers, v_tier=self.tiers // 2)
        if self.mesh_width is not None or self.mesh_height is not None:
            width = self.mesh_width or base.mesh_width
            height = self.mesh_height or width
            config = replace(config, mesh_width=width, mesh_height=height)
        if self.noc_clock_hz is not None:
            config = replace(
                config, noc=replace(config.noc, clock_hz=self.noc_clock_hz)
            )
        base_tiles = base.num_v_tiles + base.num_e_tiles
        tiles = config.num_v_tiles + config.num_e_tiles
        if tiles != base_tiles:
            energy = replace(
                base.energy,
                static_power_watts=base.energy.static_power_watts
                * tiles
                / base_tiles,
            )
            config = replace(config, energy=energy)
        return config

    def describe(self) -> dict[str, Any]:
        """Plain-dict form (what result records and exports carry)."""
        return {
            "dataset": self.dataset,
            "scale": self.effective_scale,
            "seed": self.seed,
            "tiers": self.tiers,
            "mesh_width": self.mesh_width,
            "mesh_height": self.mesh_height,
            "noc_clock_hz": self.noc_clock_hz,
            "multicast": self.multicast,
            "use_sa": self.use_sa,
            "sa_restarts": self.sa_restarts,
            "batch_size": self.batch_size,
            "label": self.display_label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in names})


def axis_fields(scenario_type: type) -> tuple[str, ...]:
    """The fields of a scenario dataclass a campaign may sweep over.

    Any frozen dataclass with a ``label`` field and an ``auto_label()``
    method can act as a campaign base (the architecture
    :class:`Scenario` here, :class:`repro.serve.scenario.ServingScenario`
    for the serving engine); every field except the display label is a
    legal sweep axis.
    """
    return tuple(f.name for f in fields(scenario_type) if f.name != "label")


#: Architecture-scenario axes (kept for backward compatibility; the axis
#: population is derived from the base scenario's type in general).
AXIS_FIELDS = axis_fields(Scenario)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: base scenario x cross-product of axes.

    ``axes`` maps scenario field names to the values to sweep; scenarios
    are enumerated in row-major order (last axis fastest), each labelled
    with the varying knobs.  The spec itself never evaluates anything —
    hand it to :func:`repro.campaign.executor.run_campaign` (architecture
    scenarios) or :func:`repro.serve.sweep.run_serving_campaign` (serving
    scenarios).  Axes are validated against the *base scenario's* fields,
    so the same spec machinery sweeps any scenario dataclass.
    """

    name: str
    base: Any = field(default_factory=Scenario)
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base_config: ReGraphXConfig | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a name")
        legal = axis_fields(type(self.base))
        normalized: list[tuple[str, tuple[Any, ...]]] = []
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        for entry in axes:
            name, values = entry
            if name not in legal:
                raise ValueError(
                    f"unknown sweep axis {name!r}; choose from {legal}"
                )
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise ValueError(f"axis {name!r} needs a sequence of values")
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            normalized.append((name, tuple(values)))
        seen = [n for n, _ in normalized]
        if len(seen) != len(set(seen)):
            raise ValueError(f"duplicate sweep axes in {seen}")
        object.__setattr__(self, "axes", tuple(normalized))

    def __len__(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def scenarios(self) -> list[Any]:
        """Enumerate the cross-product, one labelled scenario per cell."""
        names = [name for name, _ in self.axes]
        grids = [values for _, values in self.axes]
        out: list[Any] = []
        for assignment in itertools.product(*grids):
            overrides = dict(zip(names, assignment))
            scenario = replace(self.base, **overrides, label="")
            out.append(replace(scenario, label=scenario.auto_label()))
        return out

    def summary(self) -> str:
        axes = ", ".join(
            f"{name}[{len(values)}]" for name, values in self.axes
        )
        return f"{self.name}: {len(self)} scenarios ({axes or 'single point'})"
