"""Content-addressed result store backing campaign runs.

Records live under ``<root>/campaigns/<key[:2]>/<key>.json`` where ``key``
is the SHA-256 of the scenario's canonical content (materialized
architecture config + workload knobs + seed + evaluation flags + schema
version — see :func:`scenario_key`).  Identical scenarios therefore hit
the same file across campaigns, processes and sessions; any model change
that should invalidate results bumps ``spec.SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.campaign.spec import SCHEMA_VERSION, Scenario
from repro.core.config import ReGraphXConfig
from repro.utils.hashing import stable_digest

DEFAULT_ROOT = ".repro_cache"


def scenario_key(
    scenario: Scenario, base_config: ReGraphXConfig | None = None
) -> str:
    """Content hash of everything that determines a scenario's outcome.

    The *materialized* config is hashed (not the override knobs), so two
    scenarios that describe the same architecture differently — e.g. an
    explicit ``scale`` equal to the dataset default — share one record.
    The display label deliberately does not participate.
    """
    return stable_digest(
        {
            "schema": SCHEMA_VERSION,
            "config": scenario.to_config(base_config),
            "dataset": scenario.dataset,
            "scale": scenario.effective_scale,
            "seed": scenario.seed,
            "batch_size": scenario.batch_size,
            "multicast": scenario.multicast,
            "use_sa": scenario.use_sa,
            # The restart knob only affects annealed mappings; keying it
            # unconditionally would split cache entries for contiguous
            # scenarios whose outcome it cannot change.
            "sa_restarts": scenario.sa_restarts if scenario.use_sa else 1,
        }
    )


class ResultStore:
    """Persistent scenario-result cache keyed by content hash."""

    def __init__(self, root: str | Path = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    @property
    def campaigns_dir(self) -> Path:
        return self.root / "campaigns"

    def path_for(self, key: str) -> Path:
        return self.campaigns_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored record for ``key``, or None (missing or corrupt)."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, record: dict[str, Any]) -> Path:
        """Atomically persist ``record`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.campaigns_dir.is_dir():
            return 0
        return sum(1 for _ in self.campaigns_dir.glob("*/*.json"))

    def keys(self) -> list[str]:
        if not self.campaigns_dir.is_dir():
            return []
        return sorted(p.stem for p in self.campaigns_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        for path in list(self.campaigns_dir.glob("*/*.json")):
            path.unlink()
            removed += 1
        return removed

    def size_report(self) -> dict[str, int]:
        """``{"entries": N, "total_bytes": B}`` for everything stored.

        Long serving sweeps can accumulate thousands of records; this is
        the cheap way to see how big ``.repro_cache/`` has grown before
        deciding what :meth:`prune` budget to apply.
        """
        entries = 0
        total = 0
        if self.campaigns_dir.is_dir():
            for path in self.campaigns_dir.glob("*/*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue  # racing deletion; skip
                entries += 1
        return {"entries": entries, "total_bytes": total}

    def prune(self, max_entries: int) -> int:
        """Evict least-recently-used records down to ``max_entries``.

        Records are ranked by file modification time (oldest first, key as
        a deterministic tie-break) and deleted until at most
        ``max_entries`` remain; returns how many were removed.  Reads never
        touch mtime, so "least recently used" here means least recently
        *written* — good enough to keep unbounded sweep histories from
        growing the cache forever.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if not self.campaigns_dir.is_dir():
            return 0
        ranked: list[tuple[float, str, Path]] = []
        for path in self.campaigns_dir.glob("*/*.json"):
            try:
                ranked.append((path.stat().st_mtime, path.stem, path))
            except OSError:
                continue  # racing deletion; skip
        ranked.sort()
        removed = 0
        for _, _, path in ranked[: max(0, len(ranked) - max_entries)]:
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed
