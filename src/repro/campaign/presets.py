"""Named campaign presets for ``python -m repro sweep``.

Each preset is a ready-to-run :class:`~repro.campaign.spec.CampaignSpec`
around the paper's design point.  Workload defaults are laptop-friendly
(PPI at scale 0.05 evaluates in ~1 s), so even the 24-scenario presets
finish in well under a minute with ``--jobs 4`` — and near-instantly on a
warm cache.
"""

from __future__ import annotations

from dataclasses import replace

from repro.campaign.spec import CampaignSpec, Scenario
from repro.utils.units import GHZ

_BASE = Scenario(dataset="ppi", scale=0.05, seed=0)


def _build_presets() -> dict[str, CampaignSpec]:
    return {
        "tiers": CampaignSpec(
            name="tiers",
            base=_BASE,
            axes=(
                ("tiers", (2, 3, 4, 5)),
                ("noc_clock_hz", (0.2 * GHZ, 0.4 * GHZ, 0.8 * GHZ)),
                ("multicast", (True, False)),
            ),
            description=(
                "3D stacking study: tier count x NoC clock x multicast "
                "(24 scenarios; quantifies the paper's future-work axis)"
            ),
        ),
        "mesh": CampaignSpec(
            name="mesh",
            base=_BASE,
            axes=(
                ("mesh_width", (4, 6, 8, 10, 12)),
                ("multicast", (True, False)),
            ),
            description="planar footprint sweep at fixed 3-tier stack",
        ),
        "noc": CampaignSpec(
            name="noc",
            base=_BASE,
            axes=(
                ("noc_clock_hz", (0.1 * GHZ, 0.2 * GHZ, 0.4 * GHZ, 0.8 * GHZ, 1.6 * GHZ)),
                ("multicast", (True, False)),
            ),
            description="NoC clock scaling, multicast vs unicast",
        ),
        "nocscale": CampaignSpec(
            name="nocscale",
            base=_BASE,
            axes=(
                ("mesh_width", (6, 8, 10, 12)),
                ("tiers", (2, 3, 4)),
            ),
            description=(
                "NoC-scaling study: joint footprint x stack sweep whose "
                "traffic traces feed the flit-level validation (the "
                "event-driven simulator backend keeps large meshes cheap)"
            ),
        ),
        "datasets": CampaignSpec(
            name="datasets",
            base=Scenario(seed=0),  # scale=None -> per-dataset defaults
            axes=(
                ("dataset", ("ppi", "reddit", "amazon2m")),
                ("multicast", (True, False)),
            ),
            description="all Table II datasets at default scales",
        ),
        "mapping": CampaignSpec(
            name="mapping",
            base=_BASE,
            axes=(
                ("use_sa", (False, True)),
                ("multicast", (True, False)),
            ),
            description="SA stage placement vs contiguous, x multicast",
        ),
        "annealer": CampaignSpec(
            name="annealer",
            base=replace(_BASE, use_sa=True),
            axes=(
                ("sa_restarts", (1, 2, 4)),
                ("seed", (0, 1)),
            ),
            description=(
                "SA multi-restart study: how much placement quality extra "
                "annealing chains buy (cheap now that the incremental-cost "
                "annealer runs the mapper off the critical path)"
            ),
        ),
        "seeds": CampaignSpec(
            name="seeds",
            base=_BASE,
            axes=(("seed", tuple(range(8))),),
            description="replicate study: 8 generation/partition seeds",
        ),
        "full": CampaignSpec(
            name="full",
            base=_BASE,
            axes=(
                ("tiers", (2, 3, 4)),
                ("mesh_width", (6, 8)),
                ("noc_clock_hz", (0.2 * GHZ, 0.4 * GHZ)),
                ("multicast", (True, False)),
            ),
            description="joint stack x footprint x clock x multicast (24)",
        ),
    }


PRESETS: dict[str, CampaignSpec] = _build_presets()


def preset_names() -> list[str]:
    return sorted(PRESETS)


def get_preset(name: str) -> CampaignSpec:
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {preset_names()}"
        ) from None
