"""Result records for campaign runs, with JSON/CSV export.

A :class:`ScenarioRecord` is the flat, JSON-serializable outcome of one
scenario evaluation — exactly what the content-addressed store persists,
so a cached record and a freshly evaluated one are indistinguishable
(apart from the runtime-only ``cached`` flag).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping


@dataclass(frozen=True)
class ScenarioRecord:
    """Evaluation outcome of one scenario (see ``Scenario.describe``)."""

    label: str
    key: str
    scenario: dict[str, Any]
    epoch_seconds: float
    epoch_energy_joules: float
    peak_celsius: float
    thermally_feasible: bool
    worst_compute_seconds: float
    worst_communication_seconds: float
    energy_per_input_joules: float
    num_inputs: int
    eval_seconds: float
    cached: bool = False

    @property
    def edp(self) -> float:
        return self.epoch_seconds * self.epoch_energy_joules

    def metrics(self) -> dict[str, float]:
        """The physical outcome alone — invariant under caching/timing."""
        return {
            "epoch_seconds": self.epoch_seconds,
            "epoch_energy_joules": self.epoch_energy_joules,
            "peak_celsius": self.peak_celsius,
            "thermally_feasible": self.thermally_feasible,
            "worst_compute_seconds": self.worst_compute_seconds,
            "worst_communication_seconds": self.worst_communication_seconds,
            "energy_per_input_joules": self.energy_per_input_joules,
            "num_inputs": self.num_inputs,
        }

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], cached: bool = False) -> "ScenarioRecord":
        payload = {k: v for k, v in dict(data).items() if k in cls.__dataclass_fields__}
        payload["cached"] = cached
        return cls(**payload)


@dataclass
class CampaignResult:
    """Everything one campaign run produced, in scenario order."""

    name: str
    records: list[ScenarioRecord]
    hits: int = 0
    misses: int = 0
    elapsed_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path) -> Path:
        """Write the full campaign (records + cache stats) as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "campaign": self.name,
            "num_scenarios": len(self.records),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "elapsed_seconds": self.elapsed_seconds,
            "records": [r.to_dict() for r in self.records],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def to_csv(self, path: str | Path) -> Path:
        """Write one flat row per scenario (knobs + metrics)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [self._flat_row(r) for r in self.records]
        columns: list[str] = []
        for row in rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        return path

    @staticmethod
    def _flat_row(record: ScenarioRecord) -> dict[str, Any]:
        row: dict[str, Any] = {"label": record.label, "key": record.key}
        for name, value in record.scenario.items():
            if name != "label":
                row[name] = value
        row.update(record.metrics())
        row["edp"] = record.edp
        row["cached"] = record.cached
        return row

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignResult":
        data = json.loads(Path(path).read_text())
        return cls(
            name=data["campaign"],
            records=[ScenarioRecord.from_dict(r, cached=r.get("cached", False))
                     for r in data["records"]],
            hits=data.get("cache_hits", 0),
            misses=data.get("cache_misses", 0),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )

    # ------------------------------------------------------------------
    # Analysis conveniences (lazy imports keep the layering acyclic)
    # ------------------------------------------------------------------
    def pareto(self) -> list[ScenarioRecord]:
        from repro.campaign.analysis import pareto_records

        return pareto_records(self.records)

    def table(self):
        from repro.campaign.analysis import campaign_table

        return campaign_table(self)
