"""Campaign engine: declarative scenario sweeps with parallel execution
and a persistent, content-addressed result store.

The pieces:

* :mod:`repro.campaign.spec` — ``Scenario``/``CampaignSpec``: declarative
  cross-products over architecture and workload knobs.
* :mod:`repro.campaign.executor` — serial or multi-process execution with
  deterministic per-scenario seeds and progress reporting.
* :mod:`repro.campaign.store` — SHA-256 content-addressed JSON records
  under ``.repro_cache/`` (repeat sweeps are near-instant cache hits).
* :mod:`repro.campaign.results` — flat records + JSON/CSV export.
* :mod:`repro.campaign.presets` — named sweeps for ``python -m repro sweep``.
* :mod:`repro.campaign.analysis` — Pareto fronts and summary tables over
  stored campaign output (reuses the DSE layer's ``pareto_front``).
"""

from repro.campaign.executor import (
    evaluate_scenario,
    run_cached_scenarios,
    run_campaign,
    run_scenarios,
)
from repro.campaign.presets import PRESETS, get_preset, preset_names
from repro.campaign.results import CampaignResult, ScenarioRecord
from repro.campaign.spec import SCHEMA_VERSION, CampaignSpec, Scenario
from repro.campaign.store import ResultStore, scenario_key

__all__ = [
    "Scenario",
    "CampaignSpec",
    "SCHEMA_VERSION",
    "ScenarioRecord",
    "CampaignResult",
    "ResultStore",
    "scenario_key",
    "evaluate_scenario",
    "run_scenarios",
    "run_cached_scenarios",
    "run_campaign",
    "PRESETS",
    "get_preset",
    "preset_names",
]
