"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``.  Centralizing the conversion here keeps the whole
simulation reproducible from a single seed while letting tests inject their
own generators.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS entropy).  This is the single entry point for all
    randomness in the library.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Children are statistically independent streams, so parallel components
    (e.g. per-partition samplers) do not correlate even though everything
    descends from one seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = rng_from_seed(seed)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(n)]
