"""Shared utilities: deterministic RNG handling, unit helpers, formatting,
canonical hashing for content-addressed caching."""

from repro.utils.hashing import canonical_json, stable_digest, stable_seed
from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.units import (
    GHZ,
    GIGA,
    KILO,
    MEGA,
    MHZ,
    MICRO,
    MILLI,
    NANO,
    PICO,
    TERA,
    format_seconds,
    format_si,
)

__all__ = [
    "canonical_json",
    "stable_digest",
    "stable_seed",
    "rng_from_seed",
    "spawn_rngs",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "MHZ",
    "GHZ",
    "format_si",
    "format_seconds",
]
