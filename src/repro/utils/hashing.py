"""Canonical serialization and stable content hashing.

The campaign result store keys every evaluation by a digest of *what was
evaluated* (architecture configuration + workload + seed + flags).  Python's
built-in ``hash`` is salted per process, so content addressing needs an
explicit canonical form: deterministic JSON (sorted keys, no whitespace
variance) fed through SHA-256.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any


def canonical_json(value: Any) -> str:
    """Render ``value`` as deterministic JSON.

    Dataclasses are converted with :func:`dataclasses.asdict`; keys are
    sorted and floats keep ``repr`` precision, so two structurally equal
    values always produce the same string across processes and sessions.
    """
    return json.dumps(_plain(value), sort_keys=True, separators=(",", ":"))


def stable_digest(value: Any) -> str:
    """Hex SHA-256 of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def stable_seed(*parts: Any, bits: int = 32) -> int:
    """Derive a deterministic integer seed from arbitrary hashable parts.

    Unlike ``hash()`` this is stable across processes, so parallel workers
    and re-runs derive identical per-scenario seeds.
    """
    digest = stable_digest(list(parts))
    return int(digest, 16) % (1 << bits)


def _plain(value: Any) -> Any:
    """Recursively reduce ``value`` to JSON-serializable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")
