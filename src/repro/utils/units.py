"""Unit constants and human-readable formatting.

All timing inside the simulators is carried in *seconds* and all energy in
*joules*; these constants make the literals in model code self-describing
(e.g. ``10 * MHZ`` rather than ``1e7``).
"""

from __future__ import annotations

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

MHZ = 1e6
GHZ = 1e9

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.5e-6, 's')`` -> ``'2.5 us'``."""
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()


def format_seconds(seconds: float) -> str:
    """Format a duration: SI below one second, h/m/s above."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < 1.0:
        return format_si(seconds, "s")
    if seconds < 60:
        return f"{seconds:.3g} s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{int(minutes)}m {secs:.0f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes}m {secs:.0f}s"
