"""Multilevel k-way graph partitioner (METIS-style).

The paper partitions input graphs with METIS [17] before Cluster-GCN
training.  METIS is not available offline, so this module implements the
same multilevel scheme from scratch:

1. **Coarsening** — repeated heavy-edge matching (mutual-proposal variant,
   fully vectorized) collapses matched pairs until the graph is small.
2. **Initial partition** — greedy region growing on the coarsest graph,
   seeded at high-connectivity nodes, targeting balanced part weights.
3. **Uncoarsening + refinement** — the assignment is projected back level
   by level; at each sufficiently small level a boundary-move refinement
   pass reduces the edge cut while respecting a balance constraint.

The result quality (balanced parts, low edge cut) is what Cluster-GCN
needs; exact METIS parity is not required (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.graph.graph import CSRGraph
from repro.utils.rng import rng_from_seed

# Stop coarsening once the graph is this factor of the target part count,
# or when matching stops making progress.
_COARSEST_FACTOR = 4
_MIN_COARSEST = 256
# Refinement is applied only to levels at most this large (the finest levels
# of very large graphs are projected without refinement for speed).
_MAX_REFINE_NODES = 60_000


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of :func:`partition_graph`.

    Attributes:
        assignment: part id per node, shape ``(num_nodes,)``.
        num_parts: the requested k.
        edge_cut: undirected edges crossing parts.
        part_sizes: node count per part.
        imbalance: max part size divided by the ideal size (1.0 = perfect).
    """

    assignment: np.ndarray
    num_parts: int
    edge_cut: int
    part_sizes: np.ndarray
    imbalance: float

    def part_nodes(self, part: int) -> np.ndarray:
        """Node ids belonging to ``part``."""
        if not 0 <= part < self.num_parts:
            raise IndexError(f"part {part} out of range [0, {self.num_parts})")
        return np.flatnonzero(self.assignment == part)


@dataclass
class _Level:
    """One level of the multilevel hierarchy."""

    adj: sparse.csr_matrix  # weighted adjacency (edge weights = collapsed multiplicity)
    node_weight: np.ndarray  # collapsed node counts
    fine_to_coarse: np.ndarray | None  # projection map from the finer level


def _heavy_edge_matching(
    adj: sparse.csr_matrix, rng: np.random.Generator, rounds: int = 3
) -> np.ndarray:
    """Match nodes to a heavy-weight neighbor via mutual proposals.

    Each round, every unmatched node proposes to its heaviest unmatched
    neighbor; mutual proposals become matches.  Returns the coarse node id
    per fine node.
    """
    n = adj.shape[0]
    match = np.full(n, -1, dtype=np.int64)
    work = adj.copy()
    for _ in range(rounds):
        unmatched = match < 0
        if not unmatched.any():
            break
        # Mask out matched columns so proposals only target unmatched nodes.
        col_alive = unmatched[work.indices]
        masked = work.copy()
        masked.data = masked.data * col_alive
        proposals = np.asarray(masked.argmax(axis=1)).ravel()
        row_max = np.asarray(masked.max(axis=1).todense()).ravel()
        proposals[row_max <= 0] = -1
        proposals[~unmatched] = -1
        # Mutual proposal: i -> j and j -> i with i < j.
        cand = np.flatnonzero(proposals >= 0)
        mutual = cand[(proposals[proposals[cand]] == cand) & (cand < proposals[cand])]
        match[mutual] = proposals[mutual]
        match[proposals[mutual]] = mutual
    # Assign coarse ids: matched pairs share one id, singletons get their own.
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    order = rng.permutation(n)
    for node in order:
        if coarse_id[node] >= 0:
            continue
        coarse_id[node] = next_id
        if match[node] >= 0:
            coarse_id[match[node]] = next_id
        next_id += 1
    return coarse_id


def _coarsen(
    adj: sparse.csr_matrix, node_weight: np.ndarray, coarse_map: np.ndarray
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Collapse a level through ``coarse_map`` (contraction of matched pairs)."""
    n_coarse = int(coarse_map.max()) + 1
    proj = sparse.csr_matrix(
        (np.ones(coarse_map.size), (coarse_map, np.arange(coarse_map.size))),
        shape=(n_coarse, coarse_map.size),
    )
    coarse_adj = (proj @ adj @ proj.T).tocsr()
    coarse_adj.setdiag(0)
    coarse_adj.eliminate_zeros()
    coarse_weight = np.asarray(proj @ node_weight).ravel()
    return coarse_adj, coarse_weight


def _initial_partition(
    adj: sparse.csr_matrix,
    node_weight: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy region growing on the coarsest graph."""
    n = adj.shape[0]
    assignment = np.full(n, -1, dtype=np.int64)
    target = node_weight.sum() / k
    # Seeds: heaviest nodes first, so hubs anchor distinct regions.
    seed_order = list(np.argsort(-node_weight + rng.random(n) * 1e-9))
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for part in range(k):
        # Find an unassigned seed.
        while seed_order and assignment[seed_order[-1]] >= 0:
            seed_order.pop()
        if not seed_order:
            break
        seed = seed_order.pop()
        frontier: dict[int, float] = {int(seed): 0.0}
        weight = 0.0
        while frontier and weight < target:
            # Pull the frontier node with the strongest connection to the part.
            node = max(frontier, key=frontier.__getitem__)
            del frontier[node]
            if assignment[node] >= 0:
                continue
            assignment[node] = part
            weight += node_weight[node]
            for idx in range(indptr[node], indptr[node + 1]):
                nbr = int(indices[idx])
                if assignment[nbr] < 0:
                    frontier[nbr] = frontier.get(nbr, 0.0) + float(data[idx])
    # Any stragglers (disconnected bits) go to the lightest part.
    part_weight = np.bincount(
        assignment[assignment >= 0], weights=node_weight[assignment >= 0], minlength=k
    )
    for node in np.flatnonzero(assignment < 0):
        part = int(np.argmin(part_weight))
        assignment[node] = part
        part_weight[part] += node_weight[node]
    return assignment


def _rebalance(
    adj: sparse.csr_matrix,
    node_weight: np.ndarray,
    assignment: np.ndarray,
    part_weight: np.ndarray,
    cap: float,
) -> None:
    """Push nodes out of overweight parts (in place) until all fit under ``cap``.

    Moves prefer boundary nodes and the lightest adjacent part, falling back
    to the globally lightest part, so the cut damage is bounded while balance
    is restored unconditionally.
    """
    indptr, indices = adj.indptr, adj.indices
    for part in np.argsort(-part_weight):
        if part_weight[part] <= cap:
            break
        candidates = np.flatnonzero(assignment == part)
        # Boundary nodes first: they have somewhere natural to go.
        for node in candidates:
            if part_weight[part] <= cap:
                break
            nbr_parts = np.unique(assignment[indices[indptr[node]:indptr[node + 1]]])
            nbr_parts = nbr_parts[nbr_parts != part]
            if nbr_parts.size:
                dest = int(nbr_parts[np.argmin(part_weight[nbr_parts])])
            else:
                dest = int(np.argmin(part_weight))
            if dest == part:
                continue
            assignment[node] = dest
            part_weight[part] -= node_weight[node]
            part_weight[dest] += node_weight[node]


def _refine(
    adj: sparse.csr_matrix,
    node_weight: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_imbalance: float,
    passes: int = 4,
) -> np.ndarray:
    """Boundary-move refinement: greedily move nodes to the adjacent part
    with the highest cut-gain while keeping parts under the balance cap."""
    assignment = assignment.copy()
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    part_weight = np.bincount(assignment, weights=node_weight, minlength=k).astype(float)
    cap = max_imbalance * node_weight.sum() / k
    _rebalance(adj, node_weight, assignment, part_weight, cap)
    for _ in range(passes):
        boundary = _boundary_nodes(adj, assignment)
        moved = 0
        for node in boundary:
            here = assignment[node]
            gains: dict[int, float] = {}
            for idx in range(indptr[node], indptr[node + 1]):
                gains[assignment[indices[idx]]] = (
                    gains.get(assignment[indices[idx]], 0.0) + float(data[idx])
                )
            internal = gains.pop(here, 0.0)
            best_part, best_gain = here, 0.0
            for part, weight in gains.items():
                gain = weight - internal
                if gain > best_gain and part_weight[part] + node_weight[node] <= cap:
                    best_part, best_gain = part, gain
            if best_part != here:
                part_weight[here] -= node_weight[node]
                part_weight[best_part] += node_weight[node]
                assignment[node] = best_part
                moved += 1
        if not moved:
            break
    return assignment


def _boundary_nodes(adj: sparse.csr_matrix, assignment: np.ndarray) -> np.ndarray:
    """Nodes with at least one neighbor in a different part."""
    src = np.repeat(np.arange(adj.shape[0]), np.diff(adj.indptr))
    crossing = assignment[src] != assignment[adj.indices]
    return np.unique(src[crossing])


def partition_graph(
    graph: CSRGraph,
    num_parts: int,
    seed: int | np.random.Generator | None = 0,
    max_imbalance: float = 1.1,
) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` balanced parts (METIS-style).

    Args:
        graph: the graph to cut.
        num_parts: number of parts (the paper's NumPart).
        seed: RNG seed controlling matching and seed selection.
        max_imbalance: allowed max-part-size / ideal-size ratio during
            refinement (METIS default ballpark: 1.03-1.3).

    Returns:
        A :class:`PartitionResult`; ``assignment[v]`` is the part of node v.
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if num_parts > graph.num_nodes:
        raise ValueError(
            f"cannot cut {graph.num_nodes} nodes into {num_parts} parts"
        )
    rng = rng_from_seed(seed)
    if num_parts == 1:
        assignment = np.zeros(graph.num_nodes, dtype=np.int64)
        return _result(graph, assignment, 1)

    adj = graph.to_scipy().astype(np.float64)
    levels: list[_Level] = [_Level(adj, np.ones(graph.num_nodes), None)]
    coarsest_target = max(_MIN_COARSEST, _COARSEST_FACTOR * num_parts)
    while levels[-1].adj.shape[0] > coarsest_target:
        current = levels[-1]
        coarse_map = _heavy_edge_matching(current.adj, rng)
        n_coarse = int(coarse_map.max()) + 1
        if n_coarse >= current.adj.shape[0] * 0.95:
            break  # matching stalled (e.g. star graphs); stop coarsening
        coarse_adj, coarse_weight = _coarsen(current.adj, current.node_weight, coarse_map)
        levels.append(_Level(coarse_adj, coarse_weight, coarse_map))

    coarsest = levels[-1]
    k = min(num_parts, coarsest.adj.shape[0])
    assignment = _initial_partition(coarsest.adj, coarsest.node_weight, k, rng)
    assignment = _refine(
        coarsest.adj, coarsest.node_weight, assignment, num_parts, max_imbalance
    )
    # Project back through the hierarchy, refining where affordable.
    for level in reversed(levels[1:]):
        assignment = assignment[level.fine_to_coarse]
        fine = levels[levels.index(level) - 1]
        if fine.adj.shape[0] <= _MAX_REFINE_NODES:
            assignment = _refine(
                fine.adj, fine.node_weight, assignment, num_parts, max_imbalance
            )
    return _result(graph, assignment, num_parts)


def _result(graph: CSRGraph, assignment: np.ndarray, k: int) -> PartitionResult:
    part_sizes = np.bincount(assignment, minlength=k)
    ideal = graph.num_nodes / k
    return PartitionResult(
        assignment=assignment,
        num_parts=k,
        edge_cut=graph.edge_cut(assignment),
        part_sizes=part_sizes,
        imbalance=float(part_sizes.max() / ideal) if graph.num_nodes else 1.0,
    )
