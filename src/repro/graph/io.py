"""Graph serialization: save/load CSR graphs as compressed .npz archives.

Keeps expensive synthetic generations and partitions reusable across
sessions; archives are self-describing and versioned.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.graph import CSRGraph
from repro.graph.partition import PartitionResult

_FORMAT_VERSION = 1


def save_graph(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` (structure + optional features/labels) to ``path``."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "indptr": graph.indptr,
        "indices": graph.indices,
        "name": np.array([graph.name]),
    }
    if graph.features is not None:
        arrays["features"] = graph.features
    if graph.labels is not None:
        arrays["labels"] = graph.labels
    community = getattr(graph, "community", None)
    if community is not None:
        arrays["community"] = np.asarray(community)
    np.savez_compressed(path, **arrays)


def load_graph(path: str | Path) -> CSRGraph:
    """Read a graph previously written by :func:`save_graph`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no graph archive at {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph archive version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        graph = CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            features=data["features"] if "features" in data else None,
            labels=data["labels"] if "labels" in data else None,
            name=str(data["name"][0]),
        )
        if "community" in data:
            graph.community = data["community"]
    return graph


def save_partition(partition: PartitionResult, path: str | Path) -> None:
    """Write a partition result next to its graph."""
    np.savez_compressed(
        Path(path),
        version=np.array([_FORMAT_VERSION]),
        assignment=partition.assignment,
        num_parts=np.array([partition.num_parts]),
        edge_cut=np.array([partition.edge_cut]),
        part_sizes=partition.part_sizes,
        imbalance=np.array([partition.imbalance]),
    )


def load_partition(path: str | Path) -> PartitionResult:
    """Read a partition previously written by :func:`save_partition`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no partition archive at {path}")
    with np.load(path, allow_pickle=False) as data:
        return PartitionResult(
            assignment=data["assignment"],
            num_parts=int(data["num_parts"][0]),
            edge_cut=int(data["edge_cut"][0]),
            part_sizes=data["part_sizes"],
            imbalance=float(data["imbalance"][0]),
        )
