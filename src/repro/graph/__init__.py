"""Graph substrate: CSR graphs, synthetic datasets, partitioning, batching.

This subpackage replaces the external graph stack the paper relied on
(real PPI/Reddit/Amazon2M downloads, the METIS partitioner, and
Cluster-GCN's stochastic multi-cluster batching) with self-contained,
deterministic implementations.
"""

from repro.graph.clustering import ClusterBatcher, merge_partitions
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    get_dataset_spec,
    load_dataset,
)
from repro.graph.generators import (
    powerlaw_community_graph,
    random_features_and_labels,
    rmat_graph,
)
from repro.graph.graph import CSRGraph
from repro.graph.io import load_graph, load_partition, save_graph, save_partition
from repro.graph.partition import PartitionResult, partition_graph

__all__ = [
    "CSRGraph",
    "powerlaw_community_graph",
    "random_features_and_labels",
    "rmat_graph",
    "save_graph",
    "load_graph",
    "save_partition",
    "load_partition",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "get_dataset_spec",
    "load_dataset",
    "partition_graph",
    "PartitionResult",
    "ClusterBatcher",
    "merge_partitions",
]
