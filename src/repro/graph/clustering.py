"""Stochastic multi-cluster batching (Cluster-GCN, paper Sec. V.B).

Partitioning a graph into NumPart clusters loses the edges between
clusters.  Cluster-GCN therefore merges ``beta`` randomly chosen clusters
back together per training step; the induced subgraph over the merged node
set *recovers* the between-cluster edges, stabilizing training.  The number
of effective inputs per epoch is ``NumInput = NumPart / beta`` (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import CSRGraph
from repro.graph.partition import PartitionResult
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class ClusterBatch:
    """One merged input sub-graph: the unit the pipeline processes."""

    subgraph: CSRGraph
    nodes: np.ndarray  # original node ids, in subgraph order
    cluster_ids: tuple[int, ...]  # which partitions were merged


def merge_partitions(
    graph: CSRGraph, partition: PartitionResult, cluster_ids: list[int] | tuple[int, ...]
) -> ClusterBatch:
    """Induce the sub-graph over the union of ``cluster_ids``.

    Between-cluster edges among the selected clusters are retained — this is
    the stochastic multi-clustering correction.
    """
    cluster_ids = tuple(int(c) for c in cluster_ids)
    if len(set(cluster_ids)) != len(cluster_ids):
        raise ValueError(f"duplicate cluster ids in batch: {cluster_ids}")
    # Keep each cluster's nodes contiguous in the merged ordering: this is
    # how Cluster-GCN lays batches out, and it concentrates adjacency
    # entries near the diagonal — which is what makes small-crossbar block
    # tiling effective (paper Sec. IV.A).
    nodes = np.concatenate([partition.part_nodes(c) for c in cluster_ids])
    sub = graph.subgraph(nodes, name=f"{graph.name}/batch{cluster_ids[:3]}")
    return ClusterBatch(subgraph=sub, nodes=nodes, cluster_ids=cluster_ids)


class ClusterBatcher:
    """Epoch-wise sampler of merged cluster batches.

    Each epoch shuffles the NumPart clusters and deals them into
    ``NumInput = NumPart // beta`` groups of ``beta``; each group becomes
    one input sub-graph.  This mirrors Cluster-GCN's sampler and the
    paper's definition of batch size for GNNs.
    """

    def __init__(
        self,
        graph: CSRGraph,
        partition: PartitionResult,
        batch_size: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if batch_size > partition.num_parts:
            raise ValueError(
                f"batch size {batch_size} exceeds partition count {partition.num_parts}"
            )
        self.graph = graph
        self.partition = partition
        self.batch_size = batch_size
        self._rng = rng_from_seed(seed)

    @property
    def num_inputs(self) -> int:
        """Number of merged input sub-graphs per epoch (Table II NumInput)."""
        return self.partition.num_parts // self.batch_size

    def epoch(self) -> list[ClusterBatch]:
        """Sample one epoch worth of merged batches (fresh random grouping)."""
        order = self._rng.permutation(self.partition.num_parts)
        usable = self.num_inputs * self.batch_size  # drop the ragged tail, like the paper
        groups = order[:usable].reshape(self.num_inputs, self.batch_size)
        return [merge_partitions(self.graph, self.partition, tuple(g)) for g in groups]

    def average_input_size(self, num_epochs: int = 1) -> float:
        """Mean node count of a merged input over ``num_epochs`` samples."""
        total = 0
        count = 0
        for _ in range(num_epochs):
            for batch in self.epoch():
                total += batch.subgraph.num_nodes
                count += 1
        return total / max(count, 1)
