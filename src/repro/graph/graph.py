"""Compressed-sparse-row graph container.

The whole reproduction flows through this class: the GNN trains on it, the
partitioner cuts it, and the ReRAM mapper tiles its adjacency matrix into
crossbar-sized blocks.  It is an undirected, unweighted simple graph stored
in CSR form (both directions of every edge are stored explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse


@dataclass
class CSRGraph:
    """Undirected graph in CSR form with optional node features/labels.

    Attributes:
        indptr: CSR row pointers, shape ``(num_nodes + 1,)``.
        indices: CSR column indices (neighbor ids), shape ``(2 * num_edges,)``.
        features: optional node feature matrix, shape ``(num_nodes, dim)``.
        labels: optional integer class labels, shape ``(num_nodes,)``.
        name: human-readable identifier used in reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    features: np.ndarray | None = None
    labels: np.ndarray | None = None
    name: str = "graph"
    _adj: sparse.csr_matrix | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr does not describe the indices array")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise ValueError("neighbor index out of range")
        if self.features is not None and len(self.features) != self.num_nodes:
            raise ValueError("features row count must equal num_nodes")
        if self.labels is not None and len(self.labels) != self.num_nodes:
            raise ValueError("labels length must equal num_nodes")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        features: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build from an ``(E, 2)`` array of undirected edges.

        Self-loops and duplicate edges are removed; each surviving edge is
        stored in both directions.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        edges = edges[edges[:, 0] != edges[:, 1]]  # drop self-loops
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if lo.size:
            canon = np.unique(lo * np.int64(num_nodes) + hi)
            lo, hi = canon // num_nodes, canon % num_nodes
        rows = np.concatenate([lo, hi])
        cols = np.concatenate([hi, lo])
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr=indptr, indices=cols, features=features, labels=labels, name=name)

    @classmethod
    def from_scipy(
        cls,
        adj: sparse.spmatrix,
        features: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build from a (possibly directed) scipy sparse adjacency matrix.

        The matrix is symmetrized and the diagonal is dropped.
        """
        adj = sparse.csr_matrix(adj)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got {adj.shape}")
        adj = adj.maximum(adj.T)
        adj.setdiag(0)
        adj.eliminate_zeros()
        adj.sort_indices()
        return cls(
            indptr=adj.indptr.astype(np.int64),
            indices=adj.indices.astype(np.int64),
            features=features,
            labels=labels,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice internally)."""
        return int(self.indices.size // 2)

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def average_degree(self) -> float:
        return float(self.indices.size / max(self.num_nodes, 1))

    @property
    def feature_dim(self) -> int:
        if self.features is None:
            raise ValueError(f"graph {self.name!r} has no features")
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError(f"graph {self.name!r} has no labels")
        return int(self.labels.max()) + 1

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors(u)).item())

    def to_scipy(self) -> sparse.csr_matrix:
        """Binary scipy CSR adjacency (cached)."""
        if self._adj is None:
            n = self.num_nodes
            data = np.ones(self.indices.size, dtype=np.float64)
            self._adj = sparse.csr_matrix((data, self.indices, self.indptr), shape=(n, n))
        return self._adj

    # ------------------------------------------------------------------
    # Derived graphs and matrices
    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray, name: str | None = None) -> "CSRGraph":
        """Induced subgraph on ``nodes`` (relabeled 0..len(nodes)-1).

        Node order in ``nodes`` defines the new labeling.  Features and
        labels are sliced accordingly.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size != np.unique(nodes).size:
            raise ValueError("subgraph node list contains duplicates")
        sub = self.to_scipy()[nodes][:, nodes].tocsr()
        sub.sort_indices()
        return CSRGraph(
            indptr=sub.indptr.astype(np.int64),
            indices=sub.indices.astype(np.int64),
            features=None if self.features is None else self.features[nodes],
            labels=None if self.labels is None else self.labels[nodes],
            name=name or f"{self.name}/sub{nodes.size}",
        )

    def normalized_adjacency(self, add_self_loops: bool = True) -> sparse.csr_matrix:
        """Symmetric GCN propagation matrix ``D^-1/2 (A + I) D^-1/2``.

        This is the operator the E-layer applies; Kipf & Welling's
        renormalization trick adds the identity before normalizing.
        """
        adj = self.to_scipy().astype(np.float64)
        if add_self_loops:
            adj = adj + sparse.identity(self.num_nodes, format="csr")
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(deg)
        nz = deg > 0
        inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
        d = sparse.diags(inv_sqrt)
        return (d @ adj @ d).tocsr()

    def edge_cut(self, assignment: np.ndarray) -> int:
        """Number of undirected edges crossing parts under ``assignment``."""
        assignment = np.asarray(assignment)
        if assignment.size != self.num_nodes:
            raise ValueError("assignment length must equal num_nodes")
        src = np.repeat(np.arange(self.num_nodes), self.degrees)
        crossing = assignment[src] != assignment[self.indices]
        return int(crossing.sum() // 2)

    def connected_components(self) -> np.ndarray:
        """Component id per node (scipy BFS under the hood)."""
        n_comp, labels = sparse.csgraph.connected_components(self.to_scipy(), directed=False)
        del n_comp
        return labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, avg_degree={self.average_degree:.2f})"
        )
