"""Dataset registry reproducing the paper's Table II.

The three evaluation datasets (PPI, Reddit, Amazon2M) are registered with
their exact Table II statistics plus the feature/label dimensions of the
real datasets and the Cluster-GCN hidden widths.  ``load_dataset`` produces
a degree-matched synthetic graph at an arbitrary ``scale`` (scale=1.0 is
the full paper-size graph; smaller scales keep the average degree and
community structure, shrinking only the node count — convenient for tests
and laptop-scale experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.generators import powerlaw_community_graph, random_features_and_labels
from repro.graph.graph import CSRGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics and hyper-parameters of one evaluation dataset.

    ``num_nodes`` .. ``num_inputs`` mirror the paper's Table II exactly.
    ``feature_dim``/``num_classes`` come from the real datasets and
    ``hidden_dim``/``num_layers`` from the Cluster-GCN configurations the
    paper adopts (4 neural layers for every dataset, Sec. V.A).
    """

    name: str
    num_nodes: int
    num_edges: int
    num_partitions: int
    batch_size: int
    num_inputs: int
    feature_dim: int
    num_classes: int
    hidden_dim: int
    num_layers: int = 4
    mixing: float = 0.1
    powerlaw_exponent: float = 2.5

    def __post_init__(self) -> None:
        if self.num_partitions % self.batch_size:
            raise ValueError(
                f"{self.name}: NumPart ({self.num_partitions}) must be divisible "
                f"by batch size ({self.batch_size})"
            )
        if self.num_inputs != self.num_partitions // self.batch_size:
            raise ValueError(
                f"{self.name}: Table II requires NumInput = NumPart / beta, "
                f"got {self.num_inputs} != {self.num_partitions // self.batch_size}"
            )

    @property
    def average_degree(self) -> float:
        """Average (undirected) degree, 2E/N."""
        return 2.0 * self.num_edges / self.num_nodes

    @property
    def nodes_per_input(self) -> float:
        """Average node count of one merged input sub-graph."""
        return self.num_nodes / self.num_inputs

    def scaled(self, scale: float) -> tuple[int, int, int]:
        """(nodes, edges, partitions) at ``scale``, keeping average degree."""
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        nodes = max(16, round(self.num_nodes * scale))
        edges = max(nodes, round(self.num_edges * scale))
        edges = min(edges, nodes * (nodes - 1) // 2)
        partitions = max(self.batch_size, round(self.num_partitions * scale))
        # Keep NumPart divisible by beta so NumInput stays integral.
        partitions -= partitions % self.batch_size
        partitions = max(self.batch_size, partitions)
        return nodes, edges, partitions


# Table II of the paper, extended with real-dataset feature/label widths
# (PPI: 50 features / 121 classes; Reddit: 602 / 41; Amazon2M: 100 / 47)
# and Cluster-GCN hidden widths (512 / 128 / 400).
DATASETS: dict[str, DatasetSpec] = {
    "ppi": DatasetSpec(
        name="ppi",
        num_nodes=56_944,
        num_edges=818_716,
        num_partitions=250,
        batch_size=5,
        num_inputs=50,
        feature_dim=50,
        num_classes=121,
        hidden_dim=512,
        mixing=0.15,
        powerlaw_exponent=2.6,
    ),
    "reddit": DatasetSpec(
        name="reddit",
        num_nodes=232_965,
        num_edges=11_606_919,
        num_partitions=1500,
        batch_size=10,
        num_inputs=150,
        feature_dim=602,
        num_classes=41,
        hidden_dim=512,
        mixing=0.02,
        powerlaw_exponent=2.2,
    ),
    "amazon2m": DatasetSpec(
        name="amazon2m",
        num_nodes=2_449_029,
        num_edges=61_859_140,
        num_partitions=15_000,
        batch_size=10,
        num_inputs=1500,
        feature_dim=100,
        num_classes=47,
        hidden_dim=512,
        mixing=0.05,
        powerlaw_exponent=2.4,
    ),
}


def dataset_names() -> list[str]:
    """Registered dataset names, in the paper's presentation order."""
    return list(DATASETS)


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]


def load_dataset(
    name: str,
    scale: float = 0.05,
    seed: int = 0,
    with_features: bool = True,
    feature_noise: float = 1.0,
) -> CSRGraph:
    """Generate the synthetic stand-in for dataset ``name`` at ``scale``.

    Args:
        name: one of ``ppi``, ``reddit``, ``amazon2m``.
        scale: linear node-count scale factor; 1.0 reproduces Table II node
            and edge counts exactly.  The default (0.05) is laptop-friendly.
        seed: RNG seed; the same (name, scale, seed) triple always yields
            the identical graph.
        with_features: also synthesize community-correlated node features
            and labels (needed for training experiments; skip for purely
            structural studies to save memory).
        feature_noise: per-node Gaussian noise around the class centroid;
            raise it (e.g. 3-4) to make the classification task genuinely
            hard so accuracy curves differentiate (Fig. 5 experiments).

    Returns:
        A :class:`CSRGraph` whose ``name`` is ``f"{name}@{scale}"``.
    """
    spec = get_dataset_spec(name)
    nodes, edges, partitions = spec.scaled(scale)
    num_communities = max(spec.num_classes, partitions)
    # A community of N/C nodes can host ~(N/C)^2 / 2 intra edges; cap C so
    # communities stay under ~40% fill, otherwise dense scaled-down graphs
    # saturate their communities and the edge target cannot be met.
    capacity_cap = max(2, int(nodes * nodes / (5 * max(edges, 1))))
    num_communities = min(num_communities, capacity_cap)
    graph = powerlaw_community_graph(
        num_nodes=nodes,
        num_edges=edges,
        num_communities=num_communities,
        mixing=spec.mixing,
        exponent=spec.powerlaw_exponent,
        seed=seed,
        name=f"{spec.name}@{scale:g}",
    )
    if with_features:
        graph = random_features_and_labels(
            graph,
            feature_dim=spec.feature_dim,
            num_classes=spec.num_classes,
            noise=feature_noise,
            seed=seed + 1,
        )
    return graph
