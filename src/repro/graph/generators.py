"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on PPI, Reddit, and Amazon2M.  Those datasets are not
available offline, so we synthesize degree- and community-matched graphs:
a Chung-Lu style power-law degree model mixed with planted communities.
Every downstream quantity the architecture consumes — zero-block histograms
of the adjacency matrix, partition sizes, message counts, feature widths —
depends only on these matched statistics, so the synthetic stand-ins are
faithful where the architecture model actually looks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CSRGraph
from repro.utils.rng import rng_from_seed


def _powerlaw_weights(num_nodes: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Node weights following a truncated power law (Pareto tail).

    Weights act as expected-degree propensities in the Chung-Lu wiring
    below; the exponent controls how heavy the hub tail is (Reddit-like
    graphs have heavier tails than PPI-like ones).
    """
    if exponent <= 1.0:
        raise ValueError(f"power-law exponent must exceed 1, got {exponent}")
    u = rng.random(num_nodes)
    # Inverse-CDF sampling of a Pareto with shape (exponent - 1), min 1.0,
    # truncated so no node expects more than ~sqrt(N) neighbors.
    weights = (1.0 - u) ** (-1.0 / (exponent - 1.0))
    cap = max(4.0, np.sqrt(num_nodes))
    return np.minimum(weights, cap)


def _assign_communities(
    num_nodes: int, num_communities: int, rng: np.random.Generator
) -> np.ndarray:
    """Community id per node with moderately skewed community sizes."""
    if num_communities < 1:
        raise ValueError("need at least one community")
    sizes = rng.dirichlet(np.full(num_communities, 5.0))
    return rng.choice(num_communities, size=num_nodes, p=sizes)


def powerlaw_community_graph(
    num_nodes: int,
    num_edges: int,
    num_communities: int = 50,
    mixing: float = 0.1,
    exponent: float = 2.5,
    seed: int | np.random.Generator | None = 0,
    name: str = "synthetic",
) -> CSRGraph:
    """Generate a power-law graph with planted communities.

    Args:
        num_nodes: target node count (exact).
        num_edges: target undirected edge count (approached within a few
            percent; duplicates from the stub-sampling process are removed).
        num_communities: number of planted clusters; partitioners should
            roughly rediscover them.
        mixing: fraction of edge endpoints wired across communities
            (0 = perfectly clustered, 1 = no community structure).
        exponent: power-law exponent of the degree propensity tail.
        seed: RNG seed or generator.
        name: graph name.

    Returns:
        A :class:`CSRGraph` with no features/labels attached (see
        :func:`random_features_and_labels`).
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0.0 <= mixing <= 1.0:
        raise ValueError(f"mixing must be in [0, 1], got {mixing}")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"requested {num_edges} edges but the graph holds at most {max_edges}")
    rng = rng_from_seed(seed)
    weights = _powerlaw_weights(num_nodes, exponent, rng)
    community = _assign_communities(num_nodes, num_communities, rng)

    # Pre-compute, per community, the member list and a weight-proportional
    # sampling distribution so intra-community partners can be drawn fast.
    members: list[np.ndarray] = []
    member_probs: list[np.ndarray] = []
    for c in range(num_communities):
        m = np.flatnonzero(community == c)
        members.append(m)
        w = weights[m]
        member_probs.append(w / w.sum() if m.size else w)

    global_probs = weights / weights.sum()
    nodes = np.arange(num_nodes)

    edges: list[np.ndarray] = []
    collected = 0
    # Oversample in rounds; duplicate edges and self-loops are discarded by
    # CSRGraph.from_edges, so we keep drawing until the target is met.
    for _round in range(20):
        need = num_edges - collected
        if need <= 0:
            break
        batch = int(need * 1.6) + 32
        src = rng.choice(nodes, size=batch, p=global_probs)
        cross = rng.random(batch) < mixing
        dst = np.empty(batch, dtype=np.int64)
        dst[cross] = rng.choice(nodes, size=int(cross.sum()), p=global_probs)
        intra = np.flatnonzero(~cross)
        src_comm = community[src[intra]]
        for c in np.unique(src_comm):
            sel = intra[src_comm == c]
            if members[c].size < 2:
                # Degenerate community: fall back to a global partner.
                dst[sel] = rng.choice(nodes, size=sel.size, p=global_probs)
            else:
                dst[sel] = rng.choice(members[c], size=sel.size, p=member_probs[c])
        new = np.stack([src, dst], axis=1)
        new = new[new[:, 0] != new[:, 1]]
        edges.append(new)
        stacked = np.concatenate(edges)
        lo = np.minimum(stacked[:, 0], stacked[:, 1])
        hi = np.maximum(stacked[:, 0], stacked[:, 1])
        collected = np.unique(lo * np.int64(num_nodes) + hi).size

    all_edges = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    graph = CSRGraph.from_edges(num_nodes, all_edges, name=name)
    graph = _trim_to_edge_count(graph, num_edges, rng)
    graph.community = community  # planted structure, used by feature synthesis
    return graph


def _trim_to_edge_count(
    graph: CSRGraph, num_edges: int, rng: np.random.Generator
) -> CSRGraph:
    """Drop random surplus edges so the graph hits ``num_edges`` exactly."""
    surplus = graph.num_edges - num_edges
    if surplus <= 0:
        return graph
    src = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    dst = graph.indices
    keep_dir = src < dst
    pairs = np.stack([src[keep_dir], dst[keep_dir]], axis=1)
    keep = rng.choice(pairs.shape[0], size=num_edges, replace=False)
    return CSRGraph.from_edges(graph.num_nodes, pairs[keep], name=graph.name)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int | np.random.Generator | None = 0,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-MATrix (R-MAT) graph generator (Graph500-style).

    An alternative workload source to the community model: R-MAT produces
    the self-similar, heavy-tailed adjacency structure typical of web and
    social graphs, which stresses the block mapper differently (no planted
    diagonal structure).

    Args:
        scale: log2 of the node count (``n = 2**scale``).
        edge_factor: undirected edges per node to draw.
        probabilities: the (a, b, c, d) quadrant probabilities; must sum
            to 1.  The Graph500 defaults are (0.57, 0.19, 0.19, 0.05).
        seed: RNG seed.
        name: graph name.
    """
    if scale < 1 or scale > 24:
        raise ValueError(f"scale must be in [1, 24], got {scale}")
    if edge_factor < 1:
        raise ValueError("edge_factor must be positive")
    if abs(sum(probabilities) - 1.0) > 1e-9 or any(p < 0 for p in probabilities):
        raise ValueError("quadrant probabilities must be non-negative and sum to 1")
    rng = rng_from_seed(seed)
    n = 1 << scale
    num_edges = n * edge_factor
    a, b, c, _ = probabilities
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        draw = rng.random(num_edges)
        go_right = (draw >= a) & (draw < a + b)
        go_down = (draw >= a + b) & (draw < a + b + c)
        go_diag = draw >= a + b + c
        src += ((go_down | go_diag).astype(np.int64)) << bit
        dst += ((go_right | go_diag).astype(np.int64)) << bit
    return CSRGraph.from_edges(n, np.stack([src, dst], axis=1), name=name)


def random_features_and_labels(
    graph: CSRGraph,
    feature_dim: int,
    num_classes: int,
    noise: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> CSRGraph:
    """Attach community-correlated features and labels to ``graph``.

    Each planted community maps to a class; node features are the class
    centroid plus Gaussian noise.  Neighborhood aggregation averages the
    noise away, so a GCN genuinely benefits from the graph structure — the
    property Fig. 5's accuracy curves rely on.

    If the graph has no planted ``community`` attribute, connected-component
    ids (hashed into classes) are used instead.
    """
    if feature_dim < 1 or num_classes < 1:
        raise ValueError("feature_dim and num_classes must be positive")
    rng = rng_from_seed(seed)
    community = getattr(graph, "community", None)
    if community is None:
        community = graph.connected_components()
    labels = (np.asarray(community) % num_classes).astype(np.int64)
    centroids = rng.normal(size=(num_classes, feature_dim))
    features = centroids[labels] + noise * rng.normal(size=(graph.num_nodes, feature_dim))
    out = CSRGraph(
        indptr=graph.indptr,
        indices=graph.indices,
        features=features.astype(np.float64),
        labels=labels,
        name=graph.name,
    )
    out.community = community
    return out
