"""Deterministic energy model for ReRAM computation.

Per-operation energies follow the ISAAC [6] / GraphR [8] component budgets.
The dominant term is ADC conversion (as in ISAAC, where the ADCs consume
~58% of IMA power); crossbar reads and DAC drives are comparatively cheap,
writes are expensive but rare.  Values are per-event so totals fall out of
the same operation counts the timing model uses.

Reference points used to pick the constants (documented, not calibrated to
the paper's results).  The arrays run at 10 MHz (Table I), so the ADCs are
low-rate SAR converters, not ISAAC's 1.28 GS/s pipelined parts; we use
Walden/Murmann-survey figures of ~1 fJ per conversion step:
* 8-bit SAR ADC at ~10 MS/s: 2^8 steps -> ~0.26 pJ per sample.
* 6-bit SAR ADC: 2^6 steps -> ~0.064 pJ per sample.
* 1-bit DAC row driver: ~10 fJ per wave.
* Crossbar read: ~0.02 fJ per cell per wave (low-current 2-bit 1T1R).
* ReRAM cell write: ~1 pJ per cell (SET/RESET pulse energy).
* Peripheral (S+H, shift-and-add) ~50 fJ per wave per crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import PICO


@dataclass(frozen=True)
class ReRAMEnergySpec:
    """Per-event energy constants (joules)."""

    adc_sample_8bit: float = 0.256 * PICO
    dac_wave_per_row: float = 0.01 * PICO
    crossbar_read_per_cell: float = 0.00002 * PICO  # 0.02 fJ
    cell_write: float = 1.0 * PICO
    # Static/peripheral overhead folded per MAC wave per crossbar
    # (drivers, sample-and-hold, shift-and-add logic).
    peripheral_per_wave: float = 0.05 * PICO
    # Chip-level static draw: eDRAM buffers, clock tree, peripheral and
    # router leakage across ~770 tiles + 192 routers.  ISAAC-class chips
    # sit at tens of watts; this term dominates epoch energy at 10 MHz
    # array clocks and is charged for the full epoch duration.
    static_power_watts: float = 75.0

    def __post_init__(self) -> None:
        for name in (
            "adc_sample_8bit",
            "dac_wave_per_row",
            "crossbar_read_per_cell",
            "cell_write",
            "peripheral_per_wave",
            "static_power_watts",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def adc_sample(self, bits: int) -> float:
        """Energy of one ADC conversion at ``bits`` resolution.

        ADC energy scales ~2x per extra bit (Walden figure of merit); we
        anchor at the 8-bit ISAAC point.
        """
        if bits < 1:
            raise ValueError("ADC resolution must be positive")
        return self.adc_sample_8bit * (2.0 ** (bits - 8))


class EnergyModel:
    """Closed-form energy accounting for V- and E-layer execution."""

    def __init__(self, spec: ReRAMEnergySpec | None = None) -> None:
        self.spec = spec or ReRAMEnergySpec()

    def mac_wave_energy(self, rows: int, cols: int, adc_bits: int, slices: int) -> float:
        """Energy of one full input-bit wave on one logical block.

        One wave drives ``rows`` DACs on each of ``slices`` crossbars,
        reads ``rows x cols`` cells per crossbar, and digitizes ``cols``
        columns per crossbar.
        """
        if rows < 1 or cols < 1 or slices < 1:
            raise ValueError("wave geometry must be positive")
        s = self.spec
        per_crossbar = (
            rows * s.dac_wave_per_row
            + rows * cols * s.crossbar_read_per_cell
            + cols * s.adc_sample(adc_bits)
            + s.peripheral_per_wave
        )
        return slices * per_crossbar

    def v_layer_energy(
        self,
        num_vectors: int,
        in_dim: int,
        out_dim: int,
        data_bits: int = 16,
        crossbar_size: int = 128,
        adc_bits: int = 8,
        slices: int = 8,
    ) -> float:
        """Energy of a dense V-layer pass (independent of replication —
        copies do proportionally less work each)."""
        if num_vectors < 0:
            raise ValueError("num_vectors must be non-negative")
        blocks_r = -(-in_dim // crossbar_size)
        blocks_c = -(-out_dim // crossbar_size)
        wave = self.mac_wave_energy(crossbar_size, crossbar_size, adc_bits, slices)
        return num_vectors * data_bits * blocks_r * blocks_c * wave

    def e_layer_energy(
        self,
        feature_dim: int,
        nnz_blocks: int,
        data_bits: int = 16,
        block_size: int = 8,
        adc_bits: int = 6,
    ) -> float:
        """Energy of a sparse E-layer pass (binary blocks: one slice)."""
        if feature_dim < 1 or nnz_blocks < 0:
            raise ValueError("invalid E-layer energy request")
        wave = self.mac_wave_energy(block_size, block_size, adc_bits, slices=1)
        return nnz_blocks * feature_dim * data_bits * wave

    def adjacency_write_energy(self, nnz_blocks: int, block_size: int = 8) -> float:
        """Energy to program one sub-graph's adjacency blocks."""
        if nnz_blocks < 0:
            raise ValueError("nnz_blocks must be non-negative")
        return nnz_blocks * block_size * block_size * self.spec.cell_write

    def weight_write_energy(self, num_blocks: int, crossbar_size: int = 128, slices: int = 8) -> float:
        """Energy to program dense weight blocks (done once, amortized)."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        return num_blocks * slices * crossbar_size * crossbar_size * self.spec.cell_write
