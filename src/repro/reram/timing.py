"""Deterministic ReRAM latency model (paper Sec. V.A, following ISAAC [6]).

"ReRAM arrays always execute instructions in-order and the instruction
latencies are deterministic" — so layer latencies are closed-form:

* A crossbar consumes one 1-bit input wave per 100 ns cycle (10 MHz,
  Table I).  A 16-bit operand therefore takes 16 cycles, regardless of the
  crossbar size (the column ADCs keep up by design, as in ISAAC).
* A **V-layer** multiplying ``num_vectors`` activation rows by a
  ``(in_dim, out_dim)`` weight needs ``ceil(in/128) * ceil(out/128)``
  logical blocks; given ``num_imas`` IMAs the mapper replicates the block
  set and shares the vector batch across copies.
* An **E-layer** applies ``nnz_blocks`` binary 8x8 adjacency blocks to
  ``feature_dim`` feature columns; every block has its own crossbar (or the
  block set is processed in rounds if crossbars are scarce), and feature
  columns stream bit-serially one after another.
* **Writes** (programming adjacency blocks when a new sub-graph enters the
  pipeline) take ``write_cycles`` per crossbar row and happen in parallel
  across crossbars (double-buffered, so they overlap compute of the
  previous sub-graph; they still bound the stage from below).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reram.tile import TileSpec, e_tile_spec, v_tile_spec
from repro.utils.units import MHZ


@dataclass(frozen=True)
class ReRAMTimingModel:
    """Closed-form latency model for V- and E-layer execution.

    Attributes:
        clock_hz: ReRAM array clock (Table I: 10 MHz).
        data_bits: operand precision (16-bit fixed point).
        write_cycles_per_row: cycles to program one crossbar row
            (ReRAM writes are ~10x slower than reads).
    """

    clock_hz: float = 10 * MHZ
    data_bits: int = 16
    write_cycles_per_row: int = 10
    v_tile: TileSpec = None  # type: ignore[assignment]
    e_tile: TileSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz}")
        if self.data_bits < 1:
            raise ValueError("data_bits must be positive")
        if self.v_tile is None:
            object.__setattr__(self, "v_tile", v_tile_spec())
        if self.e_tile is None:
            object.__setattr__(self, "e_tile", e_tile_spec())

    @property
    def cycle_time(self) -> float:
        """Seconds per array cycle."""
        return 1.0 / self.clock_hz

    @property
    def vector_cycles(self) -> int:
        """Cycles to stream one full-precision operand through a 1-bit DAC."""
        return self.v_tile.ima.dac.cycles_for(self.data_bits)

    # ------------------------------------------------------------------
    # V-layer (dense, DNN-like)
    # ------------------------------------------------------------------
    def v_layer_blocks(self, in_dim: int, out_dim: int) -> int:
        """Logical 128x128 blocks one weight matrix occupies."""
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dimensions must be positive")
        size = self.v_tile.crossbar_size
        return (-(-in_dim // size)) * (-(-out_dim // size))

    def v_layer_latency(
        self, num_vectors: int, in_dim: int, out_dim: int, num_imas: int
    ) -> float:
        """Seconds to push ``num_vectors`` rows through one V-layer.

        ``num_imas`` is the IMA budget the mapping assigned to this layer.
        The weight block set is replicated ``copies`` times; each copy
        serves an equal share of the vectors.  If the budget cannot even
        hold one copy, block rounds serialize.
        """
        if num_vectors < 0:
            raise ValueError("num_vectors must be non-negative")
        if num_imas < 1:
            raise ValueError("a layer needs at least one IMA")
        if num_vectors == 0:
            return 0.0
        blocks = self.v_layer_blocks(in_dim, out_dim)
        copies = num_imas // blocks
        if copies >= 1:
            vectors_per_copy = -(-num_vectors // copies)
            waves = vectors_per_copy
        else:
            rounds = -(-blocks // num_imas)
            waves = num_vectors * rounds
        return waves * self.vector_cycles * self.cycle_time

    # ------------------------------------------------------------------
    # E-layer (sparse, graph-like)
    # ------------------------------------------------------------------
    def e_layer_latency(
        self, feature_dim: int, nnz_blocks: int, num_crossbars: int
    ) -> float:
        """Seconds for one E-layer pass (SpMM of the blocked adjacency).

        Every nonzero adjacency block multiplies its 8-row input slice for
        each of ``feature_dim`` feature columns, 16 cycles per column.
        Blocks run concurrently across crossbars, so below the crossbar
        budget the pass takes a *fixed* ``feature_dim x 16`` cycles;
        above it, block rounds serialize (crossbars are reprogrammed
        between rounds).  Blocks are stored once — spare crossbars buffer
        the next sub-graph's load rather than holding replicas, because
        ReRAM writes are too expensive to duplicate per input.
        """
        if feature_dim < 1:
            raise ValueError("feature_dim must be positive")
        if nnz_blocks < 0:
            raise ValueError("nnz_blocks must be non-negative")
        if num_crossbars < 1:
            raise ValueError("need at least one crossbar")
        if nnz_blocks == 0:
            return 0.0
        rounds = -(-nnz_blocks // num_crossbars)
        return feature_dim * rounds * self.vector_cycles * self.cycle_time

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def adjacency_write_latency(self, nnz_blocks: int, num_crossbars: int) -> float:
        """Seconds to program a sub-graph's adjacency blocks (parallel
        across crossbars, serialized over rounds if crossbars are scarce)."""
        if nnz_blocks < 0 or num_crossbars < 1:
            raise ValueError("invalid write request")
        if nnz_blocks == 0:
            return 0.0
        rounds = -(-nnz_blocks // num_crossbars)
        rows = self.e_tile.crossbar_size
        return rounds * rows * self.write_cycles_per_row * self.cycle_time

    def weight_write_latency(self, num_blocks: int, num_imas: int) -> float:
        """Seconds to (re)program dense weight blocks onto V-IMAs."""
        if num_blocks < 0 or num_imas < 1:
            raise ValueError("invalid write request")
        if num_blocks == 0:
            return 0.0
        rounds = -(-num_blocks // num_imas)
        rows = self.v_tile.crossbar_size
        return rounds * rows * self.write_cycles_per_row * self.cycle_time
