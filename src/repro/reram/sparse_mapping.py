"""Block tiling of sparse adjacency matrices onto small crossbars.

This is the heterogeneity argument of the paper (Sec. IV.A, Fig. 3): the
``N x N`` adjacency matrix is cut into ``M x M`` blocks; all-zero blocks are
discarded and only nonzero blocks are mapped to ``M x M`` ReRAM crossbars.
Smaller ``M`` discards far more zeros — the paper reports up to 7X more
zeros stored by 128x128 blocks than by 8x8 blocks.

The mapper also computes the E-PE demand (how many tiles are needed to hold
a sub-graph's blocks), which drives the batch-size trade-off of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import CSRGraph
from repro.reram.tile import TileSpec, e_tile_spec


@dataclass(frozen=True)
class BlockMapping:
    """Result of tiling one adjacency matrix into ``block_size`` blocks.

    Attributes:
        block_size: the crossbar edge M.
        num_nodes: matrix dimension N.
        nnz_entries: stored nonzero entries (directed adjacency entries).
        nnz_blocks: blocks containing at least one nonzero.
        block_rows: distinct block-row ids with at least one nonzero block.
        block_ids: sorted array of linearized nonzero block ids
            (``block_row * num_block_cols + block_col``).
        blocks_per_block_row: nonzero block count per occupied block-row.
    """

    block_size: int
    num_nodes: int
    nnz_entries: int
    nnz_blocks: int
    block_rows: int
    block_ids: np.ndarray
    blocks_per_block_row: np.ndarray

    @property
    def num_block_cols(self) -> int:
        return -(-self.num_nodes // self.block_size)

    @property
    def cells_used(self) -> int:
        """ReRAM cells consumed by the mapped (nonzero) blocks."""
        return self.nnz_blocks * self.block_size * self.block_size

    @property
    def zeros_stored(self) -> int:
        """Zero cells inside mapped blocks — the Fig. 3 quantity."""
        return self.cells_used - self.nnz_entries

    @property
    def density(self) -> float:
        """Fraction of mapped cells that hold actual edges."""
        return self.nnz_entries / self.cells_used if self.cells_used else 0.0

    def tiles_needed(self, tile: TileSpec | None = None) -> int:
        """E-tiles required to store every nonzero block."""
        tile = tile or e_tile_spec()
        if tile.crossbar_size != self.block_size:
            raise ValueError(
                f"tile crossbar size {tile.crossbar_size} != block size "
                f"{self.block_size}"
            )
        per_tile = tile.adjacency_blocks_per_tile
        return -(-self.nnz_blocks // per_tile)


def block_tile_adjacency(graph: CSRGraph, block_size: int) -> BlockMapping:
    """Tile ``graph``'s adjacency into ``block_size`` square blocks.

    Works directly on the CSR arrays (no dense materialization), so it
    scales to the full Table II graph sizes.
    """
    if block_size < 1:
        raise ValueError(f"block size must be positive, got {block_size}")
    n = graph.num_nodes
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    cols = graph.indices
    num_block_cols = -(-n // block_size)
    block_id = (rows // block_size) * num_block_cols + (cols // block_size)
    block_ids = np.unique(block_id)
    block_row_of = block_ids // num_block_cols
    occupied_rows, counts = np.unique(block_row_of, return_counts=True)
    del occupied_rows
    return BlockMapping(
        block_size=block_size,
        num_nodes=n,
        nnz_entries=int(cols.size),
        nnz_blocks=int(block_ids.size),
        block_rows=int(counts.size),
        block_ids=block_ids,
        blocks_per_block_row=counts,
    )


def zeros_ratio(graph: CSRGraph, small: int = 8, large: int = 128) -> float:
    """Fig. 3 ratio: zeros stored by ``large`` blocks over ``small`` blocks."""
    zs = block_tile_adjacency(graph, small).zeros_stored
    zl = block_tile_adjacency(graph, large).zeros_stored
    if zs == 0:
        raise ValueError("small-block tiling stored no zeros; ratio undefined")
    return zl / zs
