"""Device non-ideality modeling: conductance variation and stuck-at faults.

ReRAM accelerators are analog at heart; real deployments must tolerate
cycle-to-cycle/device-to-device conductance variation and stuck cells.
This module injects both into the functional crossbar model so the
library can quantify how much non-ideality the GNN workload tolerates —
a standard robustness study for ISAAC-lineage designs.

Model:

* **Lognormal conductance variation** — each programmed cell's effective
  weight is ``code * exp(N(0, sigma))`` (multiplicative, the accepted
  first-order model for oxide ReRAM).
* **Stuck-at faults** — a fraction of cells is stuck at zero conductance
  (stuck-off, the common failure) or at full scale (stuck-on).

Faults are drawn per *device* (fixed at program time); variation is drawn
per program operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reram.cells import CellSpec, FixedPointFormat
from repro.reram.crossbar import Crossbar
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class VariationModel:
    """Non-ideality parameters.

    Attributes:
        sigma: lognormal sigma of the multiplicative conductance error
            (0 = ideal; published devices: 0.05-0.3).
        stuck_off_rate: fraction of cells stuck at zero conductance.
        stuck_on_rate: fraction of cells stuck at the maximum level.
        seed: RNG seed for fault placement and variation draws.
    """

    sigma: float = 0.0
    stuck_off_rate: float = 0.0
    stuck_on_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        for name in ("stuck_off_rate", "stuck_on_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stuck_off_rate + self.stuck_on_rate > 1.0:
            raise ValueError("total fault rate cannot exceed 1")

    @property
    def is_ideal(self) -> bool:
        return self.sigma == 0 and self.stuck_off_rate == 0 and self.stuck_on_rate == 0

    def perturb(
        self, codes: np.ndarray, levels: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Effective analog conductances for integer cell ``codes``."""
        codes = np.asarray(codes, dtype=np.float64)
        effective = codes.copy()
        if self.sigma > 0:
            effective *= np.exp(rng.normal(0.0, self.sigma, size=codes.shape))
        total_rate = self.stuck_off_rate + self.stuck_on_rate
        if total_rate > 0:
            draw = rng.random(codes.shape)
            effective[draw < self.stuck_off_rate] = 0.0
            on_mask = (draw >= self.stuck_off_rate) & (draw < total_rate)
            effective[on_mask] = levels - 1
        return effective


class NoisyCrossbar(Crossbar):
    """A crossbar whose analog read path includes device non-idealities.

    Faults are fixed per device instance; variation is re-drawn whenever
    the crossbar is (re)programmed, matching write-time programming error.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        cell: CellSpec | None = None,
        variation: VariationModel | None = None,
    ) -> None:
        super().__init__(rows, cols, cell)
        self.variation = variation or VariationModel()
        self._rng = rng_from_seed(self.variation.seed)
        self._effective = np.zeros((rows, cols), dtype=np.float64)

    def program(self, codes: np.ndarray) -> None:
        super().program(codes)
        self._effective = self.variation.perturb(
            self._conductance, self.cell.levels, self._rng
        )

    def program_partial(self, row: int, col: int, block: np.ndarray) -> None:
        super().program_partial(row, col, block)
        self._effective = self.variation.perturb(
            self._conductance, self.cell.levels, self._rng
        )

    def mac_wave(self, input_bits: np.ndarray) -> np.ndarray:
        input_bits = np.asarray(input_bits, dtype=np.int64)
        if input_bits.shape != (self.rows,):
            raise ValueError(
                f"input shape {input_bits.shape} does not match rows {self.rows}"
            )
        if np.any((input_bits != 0) & (input_bits != 1)):
            raise ValueError("DAC drive must be binary (1-bit DACs, Table I)")
        self.read_count += 1
        return input_bits.astype(np.float64) @ self._effective


def _nonnegative_bitserial_mac(
    w_codes: np.ndarray,
    x_codes: np.ndarray,
    variation: VariationModel,
    fmt: FixedPointFormat,
    cell: CellSpec,
    seed_offset: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-serial product of non-negative codes through noisy crossbars.

    Returns the column vectors for two independent drive vectors packed in
    ``x_codes`` rows (positive and negative input parts share the arrays).
    """
    slices = fmt.slice_bits(w_codes, cell.bits)
    crossbars = []
    for idx, weight_slice in enumerate(slices):
        xb = NoisyCrossbar(
            *w_codes.shape,
            cell=cell,
            variation=VariationModel(
                sigma=variation.sigma,
                stuck_off_rate=variation.stuck_off_rate,
                stuck_on_rate=variation.stuck_on_rate,
                seed=variation.seed + seed_offset + idx,
            ),
        )
        xb.program(np.asarray(weight_slice))
        crossbars.append(xb)
    outputs = []
    for drive in x_codes:
        bits = fmt.slice_bits(drive, 1)
        acc = np.zeros(w_codes.shape[1], dtype=np.float64)
        for bit_idx, wave in enumerate(bits):
            wave_acc = np.zeros(w_codes.shape[1], dtype=np.float64)
            for s, xb in enumerate(crossbars):
                wave_acc += xb.mac_wave(np.asarray(wave)) * (1 << (cell.bits * s))
            acc += wave_acc * (1 << bit_idx)
        outputs.append(acc)
    return outputs[0], outputs[1]


def noisy_matvec(
    weights: np.ndarray,
    x: np.ndarray,
    variation: VariationModel,
    data_format: FixedPointFormat | None = None,
    cell: CellSpec | None = None,
) -> np.ndarray:
    """Compute ``x @ weights`` through bit-sliced noisy crossbars.

    Uses **differential (bipolar) encoding** — separate arrays for the
    positive and negative weight parts, and sign-split input drives — the
    standard ReRAM practice (GraphR/PipeLayer), because it keeps stored
    conductances proportional to |w| so multiplicative device error stays
    proportional to the actual operand magnitudes (two's-complement
    encoding would amplify noise by the unsigned offset).
    """
    fmt = data_format or FixedPointFormat()
    cell = cell or CellSpec()
    weights = np.asarray(weights, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (weights.shape[0],):
        raise ValueError(
            f"input shape {x.shape} does not match weight rows {weights.shape[0]}"
        )
    w_pos = fmt.quantize(np.maximum(weights, 0.0))
    w_neg = fmt.quantize(np.maximum(-weights, 0.0))
    x_codes = fmt.quantize(x)
    x_pos = np.maximum(x_codes, 0)
    x_neg = np.maximum(-x_codes, 0)
    drives = np.stack([x_pos, x_neg])
    pp, np_ = _nonnegative_bitserial_mac(w_pos, drives, variation, fmt, cell, 0)
    pn, nn = _nonnegative_bitserial_mac(w_neg, drives, variation, fmt, cell, 1000)
    acc = (pp + nn) - (pn + np_)
    return acc / (fmt.scale * fmt.scale)


def relative_error_study(
    variation: VariationModel,
    shape: tuple[int, int] = (64, 64),
    trials: int = 5,
    seed: int = 0,
) -> float:
    """Mean relative L2 error of noisy MACs vs the float reference."""
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = rng_from_seed(seed)
    errors = []
    for t in range(trials):
        w = rng.normal(scale=0.3, size=shape)
        x = rng.normal(scale=0.3, size=shape[0])
        got = noisy_matvec(
            w,
            x,
            VariationModel(
                sigma=variation.sigma,
                stuck_off_rate=variation.stuck_off_rate,
                stuck_on_rate=variation.stuck_on_rate,
                seed=variation.seed + 1000 * t,
            ),
        )
        ref = x @ w
        errors.append(np.linalg.norm(got - ref) / max(np.linalg.norm(ref), 1e-12))
    return float(np.mean(errors))
