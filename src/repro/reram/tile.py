"""ReRAM tiles: the V-PE and E-PE building blocks (paper Table I).

A tile bundles 12 IMAs plus peripheral buffers.  The two tile flavors
differ only in crossbar geometry and ADC resolution:

* **V-tile** — 128x128 crossbars, 8-bit ADCs.  The 8 crossbars of an IMA
  hold the 8 two-bit slices of one 16-bit logical weight block, so a V-tile
  stores 12 dense 128x128 weight blocks.
* **E-tile** — 8x8 crossbars, 6-bit ADCs.  Adjacency blocks are *binary*
  (the symmetric normalization ``D^-1/2 A D^-1/2`` is folded into the
  digital periphery as per-node scale factors), so every crossbar holds an
  independent 8x8 block: an E-tile stores ``12 x 8 = 96`` adjacency blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reram.cells import ADCSpec, CellSpec, DACSpec, FixedPointFormat
from repro.reram.ima import IMA, IMASpec


@dataclass(frozen=True)
class TileSpec:
    """Structural description of one ReRAM tile."""

    kind: str  # "v" or "e"
    ima: IMASpec
    num_imas: int = 12

    def __post_init__(self) -> None:
        if self.kind not in ("v", "e"):
            raise ValueError(f"tile kind must be 'v' or 'e', got {self.kind!r}")
        if self.num_imas < 1:
            raise ValueError("a tile needs at least one IMA")

    @property
    def crossbar_size(self) -> int:
        return self.ima.crossbar_size

    @property
    def weight_blocks_per_tile(self) -> int:
        """Dense full-precision logical weight blocks a V-tile holds."""
        return self.num_imas

    @property
    def adjacency_blocks_per_tile(self) -> int:
        """Binary adjacency blocks an E-tile holds (one per crossbar)."""
        return self.num_imas * self.ima.num_crossbars

    @property
    def cells_per_tile(self) -> int:
        return (
            self.num_imas
            * self.ima.num_crossbars
            * self.ima.crossbar_size
            * self.ima.crossbar_size
        )


def v_tile_spec() -> TileSpec:
    """Table I V-PE tile: 12 IMAs, 8x 128x128 crossbars, 8-bit ADCs."""
    return TileSpec(
        kind="v",
        ima=IMASpec(
            crossbar_size=128,
            num_crossbars=8,
            adc=ADCSpec(8),
            dac=DACSpec(1),
            cell=CellSpec(2),
            num_adcs=8,
            data_format=FixedPointFormat(16, 12),
        ),
    )


def e_tile_spec() -> TileSpec:
    """Table I E-PE tile: 12 IMAs, 8x 8x8 crossbars, 6-bit ADCs."""
    return TileSpec(
        kind="e",
        ima=IMASpec(
            crossbar_size=8,
            num_crossbars=8,
            adc=ADCSpec(6),
            dac=DACSpec(1),
            cell=CellSpec(2),
            num_adcs=8,
            data_format=FixedPointFormat(16, 12),
        ),
    )


class ReRAMTile:
    """A functional tile instance: 12 programmable IMAs.

    Used by the functional examples/tests; the large-scale experiments use
    the deterministic timing/energy models instead of instantiating
    millions of cells.
    """

    def __init__(self, spec: TileSpec) -> None:
        self.spec = spec
        self.imas = [IMA(spec.ima) for _ in range(spec.num_imas)]

    def program_layer(self, weights: np.ndarray) -> list[tuple[int, int, int]]:
        """Tile a dense weight matrix across this tile's IMAs.

        The matrix is cut into ``crossbar_size``-square blocks, assigned to
        IMAs in row-major order.  Returns ``(ima_index, block_row,
        block_col)`` for each programmed block.

        Raises:
            ValueError: if the matrix needs more blocks than the tile has IMAs
                (callers must split across tiles first).
        """
        weights = np.asarray(weights, dtype=np.float64)
        size = self.spec.crossbar_size
        n_br = -(-weights.shape[0] // size)
        n_bc = -(-weights.shape[1] // size)
        if n_br * n_bc > len(self.imas):
            raise ValueError(
                f"{weights.shape} needs {n_br * n_bc} blocks; tile has "
                f"{len(self.imas)} IMAs"
            )
        placements: list[tuple[int, int, int]] = []
        idx = 0
        for br in range(n_br):
            for bc in range(n_bc):
                block = weights[br * size:(br + 1) * size, bc * size:(bc + 1) * size]
                self.imas[idx].program_weights(block)
                placements.append((idx, br, bc))
                idx += 1
        self._placements = placements
        self._shape = weights.shape
        return placements

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """Compute ``x @ W`` for the programmed layer using the IMAs."""
        if not getattr(self, "_placements", None):
            raise RuntimeError("tile used before program_layer")
        x = np.asarray(x, dtype=np.float64)
        rows, cols = self._shape
        if x.shape[1] != rows:
            raise ValueError(f"input width {x.shape[1]} != weight rows {rows}")
        size = self.spec.crossbar_size
        out = np.zeros((x.shape[0], cols))
        for ima_idx, br, bc in self._placements:
            r0, r1 = br * size, min((br + 1) * size, rows)
            c0, c1 = bc * size, min((bc + 1) * size, cols)
            out[:, c0:c1] += self.imas[ima_idx].matmul(x[:, r0:r1])[:, : c1 - c0]
        return out
