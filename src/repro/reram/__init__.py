"""ReRAM substrate: crossbar MAC arrays, IMAs, tiles, timing and energy.

Implements the deterministic ReRAM execution model the paper adopts from
ISAAC [6] / PipeLayer [7] (large 128x128 crossbars for dense V-layers) and
GraphR [8] (small 8x8 crossbars for sparse E-layers).  The functional model
computes real quantized MACs; the timing/energy models are deterministic,
as stated in paper Sec. V.A.
"""

from repro.reram.cells import ADCSpec, CellSpec, DACSpec, FixedPointFormat
from repro.reram.crossbar import Crossbar
from repro.reram.energy import EnergyModel, ReRAMEnergySpec
from repro.reram.ima import IMA, IMASpec
from repro.reram.sparse_mapping import BlockMapping, block_tile_adjacency
from repro.reram.tile import ReRAMTile, TileSpec, e_tile_spec, v_tile_spec
from repro.reram.timing import ReRAMTimingModel
from repro.reram.variation import (
    NoisyCrossbar,
    VariationModel,
    noisy_matvec,
    relative_error_study,
)

__all__ = [
    "CellSpec",
    "ADCSpec",
    "DACSpec",
    "FixedPointFormat",
    "Crossbar",
    "IMA",
    "IMASpec",
    "ReRAMTile",
    "TileSpec",
    "v_tile_spec",
    "e_tile_spec",
    "ReRAMTimingModel",
    "EnergyModel",
    "ReRAMEnergySpec",
    "BlockMapping",
    "block_tile_adjacency",
    "VariationModel",
    "NoisyCrossbar",
    "noisy_matvec",
    "relative_error_study",
]
