"""In-situ Multiply Accumulate unit (IMA): 8 crossbars + converters.

Per Table I, one IMA bundles 8 crossbars, 8 ADCs, and one 1-bit DAC per
row.  The 8 crossbars hold the 8 two-bit slices of a 16-bit weight block,
so a single IMA realizes one full-precision logical matrix of
``crossbar_size x crossbar_size``.  ``matvec`` runs the complete bit-serial
dance — 16 input waves x 8 slices, shift-and-add — and returns a real
matrix-vector product computed entirely by the functional crossbar model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reram.cells import ADCSpec, CellSpec, DACSpec, FixedPointFormat
from repro.reram.crossbar import Crossbar


@dataclass(frozen=True)
class IMASpec:
    """Structural parameters of one IMA (Table I)."""

    crossbar_size: int = 128
    num_crossbars: int = 8
    adc: ADCSpec = ADCSpec(8)
    dac: DACSpec = DACSpec(1)
    cell: CellSpec = CellSpec(2)
    num_adcs: int = 8
    data_format: FixedPointFormat = FixedPointFormat(16, 12)

    def __post_init__(self) -> None:
        if self.crossbar_size < 1:
            raise ValueError("crossbar size must be positive")
        slices_needed = -(-self.data_format.total_bits // self.cell.bits)
        if self.num_crossbars < slices_needed:
            raise ValueError(
                f"{self.num_crossbars} crossbars cannot hold "
                f"{self.data_format.total_bits}-bit weights in "
                f"{self.cell.bits}-bit cells ({slices_needed} slices needed)"
            )

    @property
    def weight_slices(self) -> int:
        """Crossbars used as bit-slices of one logical weight block."""
        return -(-self.data_format.total_bits // self.cell.bits)

    @property
    def logical_weights(self) -> int:
        """Full-precision weights one IMA stores."""
        return self.crossbar_size * self.crossbar_size


class IMA:
    """One IMA instance with programmable logical weight block."""

    def __init__(self, spec: IMASpec | None = None) -> None:
        self.spec = spec or IMASpec()
        self.crossbars = [
            Crossbar(self.spec.crossbar_size, self.spec.crossbar_size, self.spec.cell)
            for _ in range(self.spec.num_crossbars)
        ]
        self._programmed_shape: tuple[int, int] | None = None

    def program_weights(self, weights: np.ndarray) -> None:
        """Quantize ``weights`` and distribute bit-slices to the crossbars.

        ``weights`` may be smaller than the crossbar (padding with zeros);
        larger blocks must be tiled across IMAs by the caller.
        """
        weights = np.asarray(weights, dtype=np.float64)
        size = self.spec.crossbar_size
        if weights.ndim != 2 or weights.shape[0] > size or weights.shape[1] > size:
            raise ValueError(
                f"weight block {weights.shape} does not fit a {size}x{size} crossbar"
            )
        codes = self.spec.data_format.quantize(weights)
        padded = np.zeros((size, size), dtype=np.int64)
        padded[: weights.shape[0], : weights.shape[1]] = codes
        slices = self.spec.data_format.slice_bits(padded, self.spec.cell.bits)
        for crossbar, weight_slice in zip(self.crossbars, slices):
            crossbar.program(weight_slice)
        self._programmed_shape = weights.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Full-precision ``W^T x`` via bit-serial analog MACs.

        Args:
            x: input vector of length == programmed rows.

        Returns:
            Real-valued product of length == programmed cols, subject only
            to the 16-bit fixed-point quantization of weights and inputs.
        """
        if self._programmed_shape is None:
            raise RuntimeError("IMA used before programming weights")
        rows, cols = self._programmed_shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (rows,):
            raise ValueError(f"input shape {x.shape} does not match block rows {rows}")
        fmt = self.spec.data_format
        x_codes = fmt.quantize(x)
        size = self.spec.crossbar_size
        x_padded = np.zeros(size, dtype=np.int64)
        x_padded[:rows] = x_codes
        x_bits = [
            np.asarray(b, dtype=np.int64)
            for b in fmt.slice_bits(x_padded, self.spec.dac.bits)
        ]
        cell_bits = self.spec.cell.bits
        n_slices = self.spec.weight_slices
        # Accumulate sum over input-bit waves and weight slices with the
        # appropriate binary shifts (ISAAC shift-and-add pipeline).
        acc = np.zeros(size, dtype=np.int64)
        for bit_idx, wave in enumerate(x_bits):
            wave_acc = np.zeros(size, dtype=np.int64)
            for s in range(n_slices):
                wave_acc += self.crossbars[s].mac_wave(wave) << (cell_bits * s)
            acc += wave_acc << bit_idx
        # Two's-complement correction: both operands were represented as
        # unsigned total_bits-wide codes; subtract the wrap contributions.
        total = np.int64(1) << fmt.total_bits
        w_codes = fmt.combine_slices(
            [xb.stored() for xb in self.crossbars[:n_slices]], cell_bits
        )
        w_unsigned_minus_signed = ((w_codes < 0) * total).astype(np.int64)
        x_unsigned_minus_signed = ((x_padded < 0) * total).astype(np.int64)
        acc -= x_unsigned_minus_signed @ (w_codes + w_unsigned_minus_signed)
        acc -= x_padded @ w_unsigned_minus_signed
        result = acc.astype(np.float64) / (fmt.scale * fmt.scale)
        return result[:cols]

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec` over the rows of ``x`` (``x @ W``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {x.shape}")
        return np.stack([self.matvec(row) for row in x])

    @property
    def total_reads(self) -> int:
        return sum(xb.read_count for xb in self.crossbars)

    @property
    def total_writes(self) -> int:
        return sum(xb.write_count for xb in self.crossbars)
