"""Functional model of one analog ReRAM MAC crossbar.

A crossbar stores one unsigned bit-slice of a weight block as cell
conductances and computes, per cycle, the analog dot product of a 1-bit
input wave with every stored column.  The IMA (one level up) owns the
shift-and-add that reassembles full-precision results from the eight
2-bit slices and the sixteen input bits.
"""

from __future__ import annotations

import numpy as np

from repro.reram.cells import CellSpec


class Crossbar:
    """An ``rows x cols`` array of multi-bit ReRAM cells.

    The stored matrix holds unsigned integer cell codes in
    ``[0, cell.levels)``.  ``mac_wave`` applies a binary input vector
    (one DAC bit per row) and returns the ideal analog column sums —
    the quantity the column ADCs digitize.
    """

    def __init__(self, rows: int, cols: int, cell: CellSpec | None = None) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"crossbar dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.cell = cell or CellSpec()
        self._conductance = np.zeros((rows, cols), dtype=np.int64)
        self.write_count = 0  # total cell writes (writes are slow + wear out)
        self.read_count = 0  # total MAC waves executed

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def program(self, codes: np.ndarray) -> None:
        """Write a full block of cell codes (one weight bit-slice)."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape != (self.rows, self.cols):
            raise ValueError(
                f"program shape {codes.shape} does not match crossbar "
                f"{self.rows}x{self.cols}"
            )
        if codes.min() < 0 or codes.max() >= self.cell.levels:
            raise ValueError(
                f"cell codes must lie in [0, {self.cell.levels}), "
                f"got range [{codes.min()}, {codes.max()}]"
            )
        self._conductance = codes.copy()
        self.write_count += self.num_cells

    def program_partial(self, row: int, col: int, block: np.ndarray) -> None:
        """Write a sub-block with top-left corner at ``(row, col)``."""
        block = np.asarray(block, dtype=np.int64)
        if row < 0 or col < 0 or row + block.shape[0] > self.rows or col + block.shape[1] > self.cols:
            raise ValueError("partial program exceeds crossbar bounds")
        if block.min() < 0 or block.max() >= self.cell.levels:
            raise ValueError("cell code out of range")
        self._conductance[row:row + block.shape[0], col:col + block.shape[1]] = block
        self.write_count += block.size

    def stored(self) -> np.ndarray:
        """Copy of the stored cell codes."""
        return self._conductance.copy()

    def mac_wave(self, input_bits: np.ndarray) -> np.ndarray:
        """One analog MAC wave: binary row drive -> integer column sums.

        Args:
            input_bits: ``(rows,)`` array of 0/1 DAC outputs.

        Returns:
            ``(cols,)`` integer column sums (ideal ADC inputs); maximum
            possible value is ``rows * (levels - 1)``.
        """
        input_bits = np.asarray(input_bits, dtype=np.int64)
        if input_bits.shape != (self.rows,):
            raise ValueError(
                f"input shape {input_bits.shape} does not match rows {self.rows}"
            )
        if np.any((input_bits != 0) & (input_bits != 1)):
            raise ValueError("DAC drive must be binary (1-bit DACs, Table I)")
        self.read_count += 1
        return input_bits @ self._conductance

    def zero_cells(self) -> int:
        """Number of cells currently storing zero (wasted on sparsity)."""
        return int((self._conductance == 0).sum())
