"""ReRAM cell, converter, and fixed-point primitives.

The paper's Table I fixes: 2-bit ReRAM cells, 1-bit DACs, 8-bit ADCs for
V-PEs and 6-bit ADCs for E-PEs, 10 MHz arrays.  16-bit fixed-point operands
are realized ISAAC-style: weights are bit-sliced across 8 two-bit cells
(one per crossbar of the IMA) and inputs are streamed bit-serially through
the 1-bit DACs over 16 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CellSpec:
    """A single ReRAM cell: how many bits one device stores."""

    bits: int = 2

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"cell must store at least one bit, got {self.bits}")

    @property
    def levels(self) -> int:
        """Distinct conductance levels the cell resolves."""
        return 1 << self.bits


@dataclass(frozen=True)
class DACSpec:
    """Input digital-to-analog converter (drives one crossbar row)."""

    bits: int = 1

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"DAC resolution must be positive, got {self.bits}")

    def cycles_for(self, operand_bits: int) -> int:
        """Bit-serial cycles to stream an ``operand_bits`` input."""
        if operand_bits < 1:
            raise ValueError(f"operand must have at least one bit, got {operand_bits}")
        return -(-operand_bits // self.bits)  # ceil division


@dataclass(frozen=True)
class ADCSpec:
    """Column analog-to-digital converter."""

    bits: int = 8

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"ADC resolution must be positive, got {self.bits}")

    @property
    def max_code(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format for weights and activations.

    ``total_bits`` includes the sign; ``frac_bits`` is the binary point
    position.  16-bit operands with 12 fractional bits cover the activation
    ranges GCN training produces while keeping quantization error small.
    """

    total_bits: int = 16
    frac_bits: int = 12

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("need at least a sign and one magnitude bit")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                f"frac_bits must be in [0, {self.total_bits}), got {self.frac_bits}"
            )

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    @property
    def max_int(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        return -(1 << (self.total_bits - 1))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> integer codes (saturating round-to-nearest)."""
        codes = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(codes, self.min_int, self.max_int).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) / self.scale

    def round_trip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the representable approximation)."""
        return self.dequantize(self.quantize(values))

    def slice_bits(self, codes: np.ndarray, bits_per_slice: int) -> list[np.ndarray]:
        """Split integer codes into little-endian unsigned bit-slices.

        Negative codes are represented in two's complement over
        ``total_bits``, matching how ISAAC distributes a signed weight
        across unsigned conductance slices (the sign is restored digitally
        after the shift-and-add).

        Returns ``ceil(total_bits / bits_per_slice)`` arrays of slice codes
        in ``[0, 2**bits_per_slice)``.
        """
        if bits_per_slice < 1:
            raise ValueError(f"bits_per_slice must be positive, got {bits_per_slice}")
        unsigned = np.asarray(codes, dtype=np.int64) & ((1 << self.total_bits) - 1)
        num_slices = -(-self.total_bits // bits_per_slice)
        mask = (1 << bits_per_slice) - 1
        return [
            (unsigned >> (bits_per_slice * i)) & mask for i in range(num_slices)
        ]

    def combine_slices(self, slices: list[np.ndarray], bits_per_slice: int) -> np.ndarray:
        """Inverse of :meth:`slice_bits` — shift-and-add, then sign-extend."""
        total = np.zeros_like(np.asarray(slices[0], dtype=np.int64))
        for i, s in enumerate(slices):
            total = total + (np.asarray(s, dtype=np.int64) << (bits_per_slice * i))
        total &= (1 << self.total_bits) - 1
        sign_bit = 1 << (self.total_bits - 1)
        return (total ^ sign_bit) - sign_bit  # sign extension
