"""Homogeneous (all-128x128 crossbar) baseline for the Fig. 3 argument.

An ISAAC-like accelerator would store the adjacency matrix in the same
128x128 crossbars it uses for weights.  This module quantifies the cost:
zeros stored and E-PE (tile) demand when large crossbars hold the sparse
adjacency, versus the heterogeneous 8x8 mapping ReGraphX uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import CSRGraph
from repro.reram.sparse_mapping import BlockMapping, block_tile_adjacency
from repro.reram.tile import TileSpec, v_tile_spec


@dataclass(frozen=True)
class HomogeneousDemand:
    """Storage cost of mapping an adjacency matrix onto large crossbars."""

    mapping: BlockMapping
    tiles_needed: int

    @property
    def zeros_stored(self) -> int:
        return self.mapping.zeros_stored


def homogeneous_epe_demand(
    graph: CSRGraph, tile: TileSpec | None = None
) -> HomogeneousDemand:
    """Tiles needed to store ``graph``'s adjacency in 128x128 crossbars.

    In the homogeneous design every adjacency block occupies one logical
    (bit-sliced) IMA block, exactly like a dense weight block.
    """
    tile = tile or v_tile_spec()
    mapping = block_tile_adjacency(graph, tile.crossbar_size)
    tiles = -(-mapping.nnz_blocks // tile.weight_blocks_per_tile)
    return HomogeneousDemand(mapping=mapping, tiles_needed=tiles)
