"""Analytical model of Cluster-GCN training on an NVIDIA Tesla V100.

The paper's Fig. 8 baseline is the Cluster-GCN TensorFlow implementation on
a V100.  We model one training step on one merged sub-graph as three
roofline terms and take the max-sum:

* **Compute**: dense V-layer FLOPs at a dense efficiency (~35% for the
  small matrices Cluster-GCN batches produce) plus sparse E-layer FLOPs at
  SpMM efficiency (~2.5% of peak — published cuSPARSE SpMM numbers for
  graph-shaped matrices are 200-500 GFLOP/s on V100).
* **Memory**: activation/weight/adjacency traffic against HBM2 bandwidth.
* **Overhead**: fixed per-step framework cost (kernel launches, host sync,
  feed — TensorFlow-era Cluster-GCN dispatches dozens of kernels per step;
  a few milliseconds per mini-batch step is what the published Cluster-GCN
  wall-clock numbers imply for graphs of this size).

Energy = step time x average board power (V100 runs near its 300 W TDP
under training; sustained average ~250 W).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GIGA, MICRO, TERA


@dataclass(frozen=True)
class GPUSpec:
    """NVIDIA Tesla V100 (SXM2) parameters with workload efficiencies."""

    name: str = "tesla-v100"
    peak_flops: float = 14 * TERA  # fp32
    memory_bandwidth: float = 900 * GIGA  # bytes/s, HBM2
    average_power: float = 250.0  # watts, sustained training draw
    dense_efficiency: float = 0.35
    spmm_efficiency: float = 0.05
    memory_efficiency: float = 0.7
    # Fixed per-mini-batch framework cost: TensorFlow-era Cluster-GCN
    # dispatches ~60-100 kernels per step (gather/scatter, SpMM, dense,
    # optimizer) plus feed/host sync; published Cluster-GCN wall-clock
    # numbers imply ~5-15 ms per step for graphs of this size.
    step_overhead: float = 4200 * MICRO
    bytes_per_value: int = 4  # fp32

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("peak rates must be positive")
        for name in ("dense_efficiency", "spmm_efficiency", "memory_efficiency"):
            if not 0 < getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.average_power <= 0:
            raise ValueError("power must be positive")
        if self.step_overhead < 0:
            raise ValueError("overhead must be non-negative")


@dataclass(frozen=True)
class GPUStepCost:
    """Breakdown of one training step (one merged sub-graph, fwd+bwd)."""

    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        """Compute and memory overlap (max); overhead serializes."""
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds


class GPUModel:
    """Cost model for Cluster-GCN GCN training steps on a GPU."""

    # Training = forward + backward; backward does ~2x the forward math
    # (gradient w.r.t. activations and weights).
    TRAINING_FLOP_FACTOR = 3.0
    # Activations are read/written several times across fwd/bwd + optimizer.
    TRAINING_BYTES_FACTOR = 4.0

    def __init__(self, spec: GPUSpec | None = None) -> None:
        self.spec = spec or GPUSpec()

    def step_cost(
        self,
        num_nodes: int,
        nnz_entries: int,
        layer_dims: list[tuple[int, int]],
    ) -> GPUStepCost:
        """Cost of one training step on a sub-graph.

        Args:
            num_nodes: nodes in the merged sub-graph.
            nnz_entries: stored adjacency entries of the sub-graph.
            layer_dims: (in_dim, out_dim) per neural layer.
        """
        if num_nodes < 1:
            raise ValueError("sub-graph must have at least one node")
        if nnz_entries < 0:
            raise ValueError("nnz_entries must be non-negative")
        if not layer_dims:
            raise ValueError("need at least one layer")
        s = self.spec
        dense_flops = 0.0
        sparse_flops = 0.0
        moved_values = 0.0
        for in_dim, out_dim in layer_dims:
            dense_flops += 2.0 * num_nodes * in_dim * out_dim
            sparse_flops += 2.0 * nnz_entries * out_dim
            moved_values += num_nodes * (in_dim + out_dim) + in_dim * out_dim
        moved_values += 2.0 * nnz_entries  # adjacency indices + values
        compute = self.TRAINING_FLOP_FACTOR * (
            dense_flops / (s.peak_flops * s.dense_efficiency)
            + sparse_flops / (s.peak_flops * s.spmm_efficiency)
        )
        memory = (
            self.TRAINING_BYTES_FACTOR
            * moved_values
            * s.bytes_per_value
            / (s.memory_bandwidth * s.memory_efficiency)
        )
        return GPUStepCost(
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=s.step_overhead,
        )

    def epoch_time(
        self,
        num_inputs: int,
        num_nodes_per_input: int,
        nnz_per_input: int,
        layer_dims: list[tuple[int, int]],
    ) -> float:
        """Seconds per training epoch (``num_inputs`` sequential steps)."""
        if num_inputs < 1:
            raise ValueError("need at least one input per epoch")
        step = self.step_cost(num_nodes_per_input, nnz_per_input, layer_dims)
        return num_inputs * step.total_seconds

    def epoch_energy(self, epoch_seconds: float) -> float:
        """Joules per epoch: the board draws average power throughout."""
        if epoch_seconds < 0:
            raise ValueError("epoch time must be non-negative")
        return epoch_seconds * self.spec.average_power
