"""Planar (2D) NoC baseline.

Paper Sec. IV.B argues traditional planar architectures suffer from long
physical separation between tiles.  This baseline keeps the tile counts of
ReGraphX but flattens all three tiers into one plane: the same 192 routers
arranged as a single 16x12 mesh.  Routing, scheduling, and traffic
extraction are unchanged — only the topology (and therefore hop distances
and multicast tree sizes) differs, isolating the 3D-integration benefit.
"""

from __future__ import annotations

from repro.noc.topology import Mesh3D


def planar_mesh_for(topo: Mesh3D) -> Mesh3D:
    """Flatten a 3D mesh into a single-tier mesh with equal router count.

    Tiers are laid side by side along X, which preserves each tier's
    internal geometry while forcing former vertical one-hop neighbors to
    cross the plane — the long-range traffic the paper attributes to 2D.
    """
    if topo.tiers == 1:
        return topo
    return Mesh3D(width=topo.width * topo.tiers, height=topo.height, tiers=1)


def planar_router_map(topo: Mesh3D) -> dict[int, int]:
    """Map each 3D router id to its position in :func:`planar_mesh_for`.

    Tier ``z`` occupies the X slab ``[z * width, (z + 1) * width)``.
    """
    flat = planar_mesh_for(topo)
    mapping: dict[int, int] = {}
    for router in range(topo.num_routers):
        x, y, z = topo.coords(router)
        mapping[router] = flat.router_id(z * topo.width + x, y, 0)
    return mapping
