"""Baselines the paper compares against or argues around.

* :mod:`repro.baselines.gpu` — the NVIDIA Tesla V100 running Cluster-GCN
  (the paper's Fig. 8 comparison point), as a documented roofline +
  overhead + energy model.
* :mod:`repro.baselines.planar` — a 2D-mesh variant of ReGraphX (the
  "traditional planar architectures are not suited" argument of Sec. IV.B).
* :mod:`repro.baselines.homogeneous` — an all-128x128-crossbar variant
  (the Fig. 3 heterogeneity argument).
"""

from repro.baselines.gpu import GPUModel, GPUSpec
from repro.baselines.homogeneous import homogeneous_epe_demand
from repro.baselines.planar import planar_mesh_for

__all__ = [
    "GPUModel",
    "GPUSpec",
    "planar_mesh_for",
    "homogeneous_epe_demand",
]
