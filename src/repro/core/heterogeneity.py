"""Heterogeneity analysis: why ReGraphX mixes 8x8 and 128x128 crossbars.

Two studies from the paper:

* **Zero storage (Fig. 3)** — tile each dataset's adjacency with small and
  large blocks and count the zeros that end up inside mapped blocks.
* **E-PE demand vs. batch size (Fig. 6, right axis)** — larger merged
  sub-graphs occupy more adjacency blocks, so E-PE demand grows with beta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.clustering import ClusterBatcher
from repro.graph.graph import CSRGraph
from repro.graph.partition import PartitionResult
from repro.reram.sparse_mapping import BlockMapping, block_tile_adjacency
from repro.reram.tile import TileSpec, e_tile_spec


@dataclass(frozen=True)
class ZeroStorageResult:
    """Zeros stored when tiling one graph at two block sizes."""

    graph_name: str
    small_block: int
    large_block: int
    zeros_small: int
    zeros_large: int

    @property
    def ratio(self) -> float:
        """Fig. 3's bar: zeros(large) / zeros(small)."""
        if self.zeros_small == 0:
            raise ValueError("small-block mapping stored no zeros")
        return self.zeros_large / self.zeros_small


def zero_storage_study(
    graph: CSRGraph, small_block: int = 8, large_block: int = 128
) -> ZeroStorageResult:
    """Count zeros stored under both crossbar sizes for ``graph``."""
    if small_block >= large_block:
        raise ValueError("small block must be smaller than large block")
    small = block_tile_adjacency(graph, small_block)
    large = block_tile_adjacency(graph, large_block)
    return ZeroStorageResult(
        graph_name=graph.name,
        small_block=small_block,
        large_block=large_block,
        zeros_small=small.zeros_stored,
        zeros_large=large.zeros_stored,
    )


@dataclass(frozen=True)
class EPEDemand:
    """E-PE requirements of one batch-size setting (Fig. 6 support)."""

    batch_size: int
    num_inputs: int
    subgraph_nodes: int
    subgraph_entries: int
    block_mapping: BlockMapping
    tiles_needed: int


def epe_demand_for_beta(
    graph: CSRGraph,
    partition: PartitionResult,
    batch_size: int,
    tile: TileSpec | None = None,
    seed: int = 0,
) -> EPEDemand:
    """Measure the adjacency-storage demand of one merged input at ``beta``.

    Samples one representative merged sub-graph (deterministic per seed),
    tiles its adjacency at the E-PE block size, and reports blocks/tiles.
    """
    tile = tile or e_tile_spec()
    batcher = ClusterBatcher(graph, partition, batch_size, seed=seed)
    batch = batcher.epoch()[0]
    mapping = block_tile_adjacency(batch.subgraph, tile.crossbar_size)
    return EPEDemand(
        batch_size=batch_size,
        num_inputs=batcher.num_inputs,
        subgraph_nodes=batch.subgraph.num_nodes,
        subgraph_entries=mapping.nnz_entries,
        block_mapping=mapping,
        tiles_needed=mapping.tiles_needed(tile),
    )
