"""Thermal model for 3D-stacked tiers (the paper's stated future work).

Paper Sec. IV.B: "adding more tiers can lead to thermal issues and
investigating thermal-aware 3D architectures for GNN training is part of
our future work."  This module provides that investigation: a standard 1-D
vertical resistive network for a 3D stack with the heat sink on top.

Heat generated on tier ``i`` flows upward through tiers ``i+1 .. Z-1`` to
the sink, so the *bottom* tier sees the cumulative thermal resistance of
the whole stack — which is why stacking more tiers raises peak temperature
superlinearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import ReGraphXReport


@dataclass(frozen=True)
class ThermalSpec:
    """1-D stack thermal parameters.

    Attributes:
        ambient_celsius: environment temperature.
        sink_resistance: heat-sink + spreader resistance (K/W).
        layer_resistance: vertical resistance of one die + bond layer
            (K/W) — dominated by the thermal interface material; typical
            values for 3D stacks are ~0.1-0.4 K/W at chip scale.
        max_junction_celsius: reliability limit used by feasibility checks.
    """

    ambient_celsius: float = 45.0
    sink_resistance: float = 0.12
    layer_resistance: float = 0.25
    max_junction_celsius: float = 105.0

    def __post_init__(self) -> None:
        if self.sink_resistance < 0 or self.layer_resistance < 0:
            raise ValueError("thermal resistances must be non-negative")
        if self.max_junction_celsius <= self.ambient_celsius:
            raise ValueError("junction limit must exceed ambient")


@dataclass(frozen=True)
class ThermalProfile:
    """Steady-state result for one stack configuration."""

    tier_celsius: tuple[float, ...]
    spec: ThermalSpec

    @property
    def peak_celsius(self) -> float:
        return max(self.tier_celsius)

    @property
    def peak_tier(self) -> int:
        return self.tier_celsius.index(self.peak_celsius)

    @property
    def feasible(self) -> bool:
        return self.peak_celsius <= self.spec.max_junction_celsius


class ThermalModel:
    """Steady-state 1-D thermal solver for a tier stack."""

    def __init__(self, spec: ThermalSpec | None = None) -> None:
        self.spec = spec or ThermalSpec()

    def steady_state(self, tier_powers: list[float]) -> ThermalProfile:
        """Temperatures for tiers indexed bottom (0) to top (sink side).

        Tier ``i``'s temperature accumulates the resistance of every layer
        between it and the sink times the heat flowing through that layer
        (all power generated at or below it).
        """
        if not tier_powers:
            raise ValueError("need at least one tier")
        if any(p < 0 for p in tier_powers):
            raise ValueError("tier power must be non-negative")
        spec = self.spec
        total = sum(tier_powers)
        temps: list[float] = []
        sink_temperature = spec.ambient_celsius + spec.sink_resistance * total
        for tier in range(len(tier_powers)):
            t = sink_temperature
            # Layers above this tier each carry the heat of everything below.
            for layer in range(tier, len(tier_powers)):
                heat_through = sum(tier_powers[: layer + 1])
                t += spec.layer_resistance * heat_through
            temps.append(t)
        return ThermalProfile(tier_celsius=tuple(temps), spec=spec)

    def max_feasible_tiers(
        self, power_per_tier: float, max_tiers: int = 16
    ) -> int:
        """Largest uniform-power stack that stays under the junction limit."""
        if power_per_tier < 0:
            raise ValueError("power must be non-negative")
        feasible = 0
        for tiers in range(1, max_tiers + 1):
            profile = self.steady_state([power_per_tier] * tiers)
            if not profile.feasible:
                break
            feasible = tiers
        return feasible


def tier_powers_from_report(report: ReGraphXReport) -> list[float]:
    """Approximate per-tier average power from an evaluation report.

    The chip's static draw is spread evenly across tiers; per-input dynamic
    energy is attributed by tile role — the middle (V) tier carries the
    dense compute energy, the E tiers split the sparse compute, writes, and
    their share of NoC energy.
    """
    config = report.config
    period_energy = report.energy_per_input  # one input traverses per period
    period = report.pipeline.period
    if period <= 0:
        raise ValueError("report has a zero pipeline period")
    dynamic_power = period_energy / period
    static_each = config.energy.static_power_watts / config.tiers
    if period_energy > 0:
        v_share = report.compute_energy_per_input / period_energy
    else:
        v_share = 0.0  # no dynamic energy: nothing to attribute to the V tier
    # Rough role split: V compute stays on the V tier; everything else
    # (E compute, writes, NoC) splits over the E tiers.
    powers = []
    num_e_tiers = len(config.e_tiers)
    for tier in range(config.tiers):
        if tier == config.v_tier:
            powers.append(static_each + dynamic_power * 0.2 * v_share)
        else:
            powers.append(
                static_each + dynamic_power * (1 - 0.2 * v_share) / num_e_tiers
            )
    return powers
