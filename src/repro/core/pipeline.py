"""Pipelined GNN training schedule (paper Fig. 4).

A GNN with L neural layers trains as a ``4L``-stage pipeline (V and E
sublayers, forward and backward).  One merged input sub-graph occupies one
stage per period; after the fill phase every PE group is busy every period.
The period ``T`` is set by the slowest stage — the larger of its compute
latency and the time its outgoing communication needs on the NoC — which is
exactly the quantity paper Fig. 7 compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import stage_names


@dataclass(frozen=True)
class StageCost:
    """Per-stage latency components for one pipeline period."""

    name: str
    compute_seconds: float
    communication_seconds: float

    def __post_init__(self) -> None:
        if self.compute_seconds < 0 or self.communication_seconds < 0:
            raise ValueError(f"stage {self.name}: latencies must be non-negative")

    @property
    def period_bound(self) -> float:
        """The stage's lower bound on the pipeline period."""
        return max(self.compute_seconds, self.communication_seconds)


@dataclass(frozen=True)
class PipelineTiming:
    """Resolved pipeline timing for a workload."""

    stages: tuple[StageCost, ...]
    num_inputs: int

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")
        if self.num_inputs < 1:
            raise ValueError("pipeline needs at least one input")

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def period(self) -> float:
        """Pipeline period T = max over stages of max(comp, comm)."""
        return max(s.period_bound for s in self.stages)

    @property
    def bottleneck(self) -> StageCost:
        """The stage that sets the period."""
        return max(self.stages, key=lambda s: s.period_bound)

    @property
    def worst_compute(self) -> float:
        """Worst-case computation delay across stages (Fig. 7 bar)."""
        return max(s.compute_seconds for s in self.stages)

    @property
    def worst_communication(self) -> float:
        """Worst-case communication delay across stages (Fig. 7 bar)."""
        return max(s.communication_seconds for s in self.stages)

    @property
    def epoch_seconds(self) -> float:
        """One epoch: fill + steady state over all inputs (Fig. 4)."""
        return self.period * (self.num_inputs + self.num_stages - 1)

    @property
    def steady_state_utilization(self) -> float:
        """Fraction of stage-slots doing useful work across the epoch."""
        total_slots = (self.num_inputs + self.num_stages - 1) * self.num_stages
        return (self.num_inputs * self.num_stages) / total_slots


class PipelineModel:
    """Assembles :class:`PipelineTiming` from per-stage costs."""

    def __init__(self, num_layers: int, training: bool = True) -> None:
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.num_layers = num_layers
        self.training = training
        self.stage_order = stage_names(num_layers, training)

    def timing(
        self,
        compute: dict[str, float],
        communication: dict[str, float],
        num_inputs: int,
    ) -> PipelineTiming:
        """Build the timing record.

        Args:
            compute: stage name -> compute seconds (missing stages are 0).
            communication: stage name -> outgoing communication seconds.
            num_inputs: merged sub-graphs per epoch (Table II NumInput).
        """
        unknown = (set(compute) | set(communication)) - set(self.stage_order)
        if unknown:
            raise ValueError(f"unknown stages: {sorted(unknown)}")
        stages = tuple(
            StageCost(
                name=name,
                compute_seconds=compute.get(name, 0.0),
                communication_seconds=communication.get(name, 0.0),
            )
            for name in self.stage_order
        )
        return PipelineTiming(stages=stages, num_inputs=num_inputs)
