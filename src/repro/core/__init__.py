"""ReGraphX core: the paper's heterogeneous 3D ReRAM architecture.

Composition:

* :mod:`repro.core.config` — Table I architecture parameters.
* :mod:`repro.core.mapping` — SA-based layer-to-router placement.
* :mod:`repro.core.traffic` — extraction of the many-to-one-to-many and
  multicast message sets of pipelined GNN training.
* :mod:`repro.core.pipeline` — the 4L-stage training pipeline schedule.
* :mod:`repro.core.heterogeneity` — zero-storage / E-PE-demand analysis.
* :mod:`repro.core.accelerator` — the ReGraphX façade tying it together.
* :mod:`repro.core.evaluation` — full-system comparison against the GPU.
"""

from repro.core.accelerator import ReGraphX, Workload
from repro.core.config import ReGraphXConfig
from repro.core.dse import (
    DesignPoint,
    evaluate_design,
    pareto_front,
    sweep_autoscaler_targets,
    sweep_mesh,
    sweep_sa_restarts,
    sweep_serving_qps,
    sweep_tiers,
)
from repro.core.evaluation import FullSystemComparison, compare_with_gpu
from repro.core.heterogeneity import epe_demand_for_beta, zero_storage_study
from repro.core.mapping import (
    IncrementalCost,
    StageMap,
    anneal_mapping,
    contiguous_mapping,
    default_sa_iterations,
    random_mapping,
)
from repro.core.pipeline import PipelineModel, StageCost
from repro.core.thermal import (
    ThermalModel,
    ThermalProfile,
    ThermalSpec,
    tier_powers_from_report,
)
from repro.core.traffic import GNNTrafficModel, NoCValidation, cross_validate_traffic

__all__ = [
    "ReGraphXConfig",
    "StageMap",
    "contiguous_mapping",
    "anneal_mapping",
    "random_mapping",
    "default_sa_iterations",
    "IncrementalCost",
    "GNNTrafficModel",
    "NoCValidation",
    "cross_validate_traffic",
    "PipelineModel",
    "StageCost",
    "ReGraphX",
    "Workload",
    "zero_storage_study",
    "epe_demand_for_beta",
    "compare_with_gpu",
    "FullSystemComparison",
    "ThermalModel",
    "ThermalSpec",
    "ThermalProfile",
    "tier_powers_from_report",
    "DesignPoint",
    "evaluate_design",
    "sweep_tiers",
    "sweep_mesh",
    "sweep_sa_restarts",
    "sweep_serving_qps",
    "sweep_autoscaler_targets",
    "pareto_front",
]
