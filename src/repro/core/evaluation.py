"""Full-system comparison: ReGraphX vs. the GPU baseline (paper Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel
from repro.core.accelerator import ReGraphXReport


@dataclass(frozen=True)
class FullSystemComparison:
    """Fig. 8's three panels for one dataset."""

    dataset: str
    regraphx_epoch_seconds: float
    gpu_epoch_seconds: float
    regraphx_epoch_energy: float
    gpu_epoch_energy: float

    def __post_init__(self) -> None:
        for name in (
            "regraphx_epoch_seconds",
            "gpu_epoch_seconds",
            "regraphx_epoch_energy",
            "gpu_epoch_energy",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def speedup(self) -> float:
        """Fig. 8(a): GPU time / ReGraphX time."""
        return self.gpu_epoch_seconds / self.regraphx_epoch_seconds

    @property
    def energy_ratio(self) -> float:
        """Fig. 8(b): GPU energy / ReGraphX energy."""
        return self.gpu_epoch_energy / self.regraphx_epoch_energy

    @property
    def edp_improvement(self) -> float:
        """Fig. 8(c): GPU EDP / ReGraphX EDP = speedup x energy ratio."""
        return self.speedup * self.energy_ratio


def compare_with_gpu(
    report: ReGraphXReport, gpu: GPUModel | None = None
) -> FullSystemComparison:
    """Evaluate the GPU baseline on the same workload and compare.

    Both sides process identical merged sub-graphs: the GPU runs them
    sequentially (Cluster-GCN steps), ReGraphX streams them through its
    pipeline.
    """
    gpu = gpu or GPUModel()
    wl = report.workload
    gpu_epoch = gpu.epoch_time(
        num_inputs=report.pipeline.num_inputs,
        num_nodes_per_input=wl.num_nodes_per_input,
        nnz_per_input=wl.nnz_per_input,
        layer_dims=wl.layer_dims,
    )
    return FullSystemComparison(
        dataset=wl.spec.name,
        regraphx_epoch_seconds=report.epoch_seconds,
        gpu_epoch_seconds=gpu_epoch,
        regraphx_epoch_energy=report.epoch_energy,
        gpu_epoch_energy=gpu.epoch_energy(gpu_epoch),
    )
