"""Design-space exploration: mesh geometry, tier count, and Pareto fronts.

The paper fixes one design point (8x8x3); this module sweeps the
architectural knobs around it — tier count (with the thermal model keeping
score), mesh footprint, NoC clock — and extracts the Pareto-efficient
designs on (epoch time, epoch energy, peak temperature).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.accelerator import ReGraphX, Workload
from repro.core.config import ReGraphXConfig
from repro.core.thermal import ThermalModel, ThermalSpec, tier_powers_from_report


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    label: str
    config: ReGraphXConfig
    epoch_seconds: float
    epoch_energy_joules: float
    peak_celsius: float
    thermally_feasible: bool

    @property
    def edp(self) -> float:
        return self.epoch_seconds * self.epoch_energy_joules


def evaluate_design(
    config: ReGraphXConfig,
    workload_dataset: str,
    scale: float,
    label: str,
    seed: int = 0,
    thermal: ThermalSpec | None = None,
) -> DesignPoint:
    """Evaluate one configuration end to end (timing, energy, thermals)."""
    accelerator = ReGraphX(config)
    workload = accelerator.build_workload(workload_dataset, scale=scale, seed=seed)
    report = accelerator.evaluate(workload, multicast=True, use_sa=False)
    model = ThermalModel(thermal)
    profile = model.steady_state(tier_powers_from_report(report))
    return DesignPoint(
        label=label,
        config=config,
        epoch_seconds=report.epoch_seconds,
        epoch_energy_joules=report.epoch_energy,
        peak_celsius=profile.peak_celsius,
        thermally_feasible=profile.feasible,
    )


def sweep_tiers(
    tier_counts: list[int],
    workload_dataset: str = "reddit",
    scale: float = 0.02,
    base: ReGraphXConfig | None = None,
    seed: int = 0,
) -> list[DesignPoint]:
    """Sweep the number of stacked tiers (paper future work, quantified).

    Each configuration keeps one V tier in the middle of the stack; extra
    tiers add E-PE capacity (fewer E rounds) but raise the stack's peak
    temperature.  The total chip static power scales with the tile count.
    """
    if not tier_counts:
        raise ValueError("need at least one tier count")
    if any(t < 2 for t in tier_counts):
        raise ValueError("a ReGraphX stack needs at least 2 tiers")
    base = base or ReGraphXConfig()
    base_tiles = base.num_v_tiles + base.num_e_tiles
    points = []
    for tiers in tier_counts:
        config = replace(base, tiers=tiers, v_tier=tiers // 2)
        # Static power scales with the physical tile count.
        tiles = config.num_v_tiles + config.num_e_tiles
        energy = replace(
            base.energy,
            static_power_watts=base.energy.static_power_watts * tiles / base_tiles,
        )
        config = replace(config, energy=energy)
        points.append(
            evaluate_design(
                config, workload_dataset, scale, label=f"{tiers}-tier", seed=seed
            )
        )
    return points


def sweep_mesh(
    widths: list[int],
    workload_dataset: str = "reddit",
    scale: float = 0.02,
    base: ReGraphXConfig | None = None,
    seed: int = 0,
) -> list[DesignPoint]:
    """Sweep the planar mesh footprint at fixed tier count."""
    if not widths:
        raise ValueError("need at least one width")
    base = base or ReGraphXConfig()
    base_tiles = base.num_v_tiles + base.num_e_tiles
    points = []
    for width in widths:
        config = replace(base, mesh_width=width, mesh_height=width)
        tiles = config.num_v_tiles + config.num_e_tiles
        energy = replace(
            base.energy,
            static_power_watts=base.energy.static_power_watts * tiles / base_tiles,
        )
        config = replace(config, energy=energy)
        points.append(
            evaluate_design(
                config, workload_dataset, scale, label=f"{width}x{width}", seed=seed
            )
        )
    return points


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Pareto-efficient subset on (epoch time, energy, peak temperature).

    A point is dominated if another point is no worse on all three axes
    and strictly better on at least one.
    """

    def dominates(a: DesignPoint, b: DesignPoint) -> bool:
        no_worse = (
            a.epoch_seconds <= b.epoch_seconds
            and a.epoch_energy_joules <= b.epoch_energy_joules
            and a.peak_celsius <= b.peak_celsius
        )
        strictly = (
            a.epoch_seconds < b.epoch_seconds
            or a.epoch_energy_joules < b.epoch_energy_joules
            or a.peak_celsius < b.peak_celsius
        )
        return no_worse and strictly

    return [
        p for p in points if not any(dominates(q, p) for q in points if q is not p)
    ]
