"""Design-space exploration: mesh geometry, tier count, and Pareto fronts.

The paper fixes one design point (8x8x3); this module sweeps the
architectural knobs around it — tier count (with the thermal model keeping
score), mesh footprint, NoC clock — and extracts the Pareto-efficient
designs on (epoch time, epoch energy, peak temperature).

Since the campaign engine landed, every sweep here is a thin declarative
wrapper: scenarios go through :func:`repro.campaign.executor.run_scenarios`,
which adds process-parallel fan-out (``jobs``) and content-addressed result
caching (``store``) for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import ReGraphXConfig
from repro.core.thermal import ThermalSpec

# The campaign engine imports the core evaluation stack, so dse (imported
# by ``repro.core.__init__``) pulls it in lazily inside each function to
# keep the package import graph acyclic from every entry point.
if TYPE_CHECKING:
    from repro.campaign.store import ResultStore


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    label: str
    config: ReGraphXConfig
    epoch_seconds: float
    epoch_energy_joules: float
    peak_celsius: float
    thermally_feasible: bool

    @property
    def edp(self) -> float:
        return self.epoch_seconds * self.epoch_energy_joules


def evaluate_design(
    config: ReGraphXConfig,
    workload_dataset: str,
    scale: float,
    label: str,
    seed: int = 0,
    thermal: ThermalSpec | None = None,
    multicast: bool = True,
    use_sa: bool = False,
    sa_restarts: int = 1,
) -> DesignPoint:
    """Evaluate one configuration end to end (timing, energy, thermals)."""
    from repro.campaign.executor import evaluate_scenario
    from repro.campaign.spec import Scenario

    scenario = Scenario(
        dataset=workload_dataset,
        scale=scale,
        seed=seed,
        multicast=multicast,
        use_sa=use_sa,
        sa_restarts=sa_restarts,
        label=label,
    )
    record = evaluate_scenario(scenario, base_config=config, thermal=thermal)
    return DesignPoint(
        label=label,
        config=config,
        epoch_seconds=record.epoch_seconds,
        epoch_energy_joules=record.epoch_energy_joules,
        peak_celsius=record.peak_celsius,
        thermally_feasible=record.thermally_feasible,
    )


def sweep_tiers(
    tier_counts: list[int],
    workload_dataset: str = "reddit",
    scale: float = 0.02,
    base: ReGraphXConfig | None = None,
    seed: int = 0,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[DesignPoint]:
    """Sweep the number of stacked tiers (paper future work, quantified).

    Each configuration keeps one V tier in the middle of the stack; extra
    tiers add E-PE capacity (fewer E rounds) but raise the stack's peak
    temperature.  The total chip static power scales with the tile count
    (the campaign layer's ``Scenario.to_config`` convention).
    """
    from repro.campaign.analysis import to_design_point
    from repro.campaign.executor import run_scenarios
    from repro.campaign.spec import Scenario

    if not tier_counts:
        raise ValueError("need at least one tier count")
    if any(t < 2 for t in tier_counts):
        raise ValueError("a ReGraphX stack needs at least 2 tiers")
    base = base or ReGraphXConfig()
    scenarios = [
        Scenario(
            dataset=workload_dataset,
            scale=scale,
            seed=seed,
            tiers=tiers,
            label=f"{tiers}-tier",
        )
        for tiers in tier_counts
    ]
    result = run_scenarios(
        scenarios, base_config=base, jobs=jobs, store=store, name="sweep-tiers"
    )
    return [
        to_design_point(record, base_config=base, scenario=scenario)
        for scenario, record in zip(scenarios, result.records)
    ]


def sweep_mesh(
    widths: list[int],
    workload_dataset: str = "reddit",
    scale: float = 0.02,
    base: ReGraphXConfig | None = None,
    seed: int = 0,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[DesignPoint]:
    """Sweep the planar mesh footprint at fixed tier count."""
    from repro.campaign.analysis import to_design_point
    from repro.campaign.executor import run_scenarios
    from repro.campaign.spec import Scenario

    if not widths:
        raise ValueError("need at least one width")
    base = base or ReGraphXConfig()
    scenarios = [
        Scenario(
            dataset=workload_dataset,
            scale=scale,
            seed=seed,
            mesh_width=width,
            mesh_height=width,
            label=f"{width}x{width}",
        )
        for width in widths
    ]
    result = run_scenarios(
        scenarios, base_config=base, jobs=jobs, store=store, name="sweep-mesh"
    )
    return [
        to_design_point(record, base_config=base, scenario=scenario)
        for scenario, record in zip(scenarios, result.records)
    ]


def sweep_sa_restarts(
    restart_counts: list[int],
    workload_dataset: str = "ppi",
    scale: float = 0.05,
    base: ReGraphXConfig | None = None,
    seed: int = 0,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[DesignPoint]:
    """Sweep the annealer's multi-restart budget at the paper design point.

    Quantifies how much extra placement quality additional independent
    annealing chains buy — affordable to sweep at all since the
    incremental-cost annealer took stage mapping off the evaluation
    critical path.
    """
    from repro.campaign.analysis import to_design_point
    from repro.campaign.executor import run_scenarios
    from repro.campaign.spec import Scenario

    if not restart_counts:
        raise ValueError("need at least one restart count")
    if any(r < 1 for r in restart_counts):
        raise ValueError("restart counts must be at least 1")
    base = base or ReGraphXConfig()
    scenarios = [
        Scenario(
            dataset=workload_dataset,
            scale=scale,
            seed=seed,
            use_sa=True,
            sa_restarts=restarts,
            label=f"sa-x{restarts}",
        )
        for restarts in restart_counts
    ]
    result = run_scenarios(
        scenarios, base_config=base, jobs=jobs, store=store, name="sweep-sa-restarts"
    )
    return [
        to_design_point(record, base_config=base, scenario=scenario)
        for scenario, record in zip(scenarios, result.records)
    ]


def sweep_serving_qps(
    qps_values: list[float],
    dataset: str = "ppi",
    scale: float = 0.05,
    instances: int = 2,
    max_batch: int = 8,
    duration_seconds: float = 1.0,
    arrival: str = "poisson",
    seed: int = 0,
    jobs: int = 1,
    store: ResultStore | None = None,
):
    """Sweep offered load on the serving engine; the latency-vs-load axis.

    The serving-layer analogue of the architecture sweeps above: each QPS
    point runs the full arrival -> batching -> replica simulation (service
    times calibrated once from the inference-mode ``evaluate()``) and
    returns one :class:`~repro.serve.scenario.ServingRecord` per rate with
    p50/p95/p99 latency, throughput, utilization and SLO-violation rate.
    """
    from repro.campaign.spec import CampaignSpec
    from repro.serve.scenario import ServingScenario
    from repro.serve.sweep import run_serving_campaign

    if not qps_values:
        raise ValueError("need at least one qps value")
    if any(q <= 0 for q in qps_values):
        raise ValueError("qps values must be positive")
    spec = CampaignSpec(
        name="sweep-serving-qps",
        base=ServingScenario(
            dataset=dataset,
            scale=scale,
            instances=instances,
            max_batch=max_batch,
            duration_seconds=duration_seconds,
            arrival=arrival,
            seed=seed,
        ),
        axes=(("qps", tuple(float(q) for q in qps_values)),),
    )
    return run_serving_campaign(spec, jobs=jobs, store=store).records


def sweep_autoscaler_targets(
    targets: list[float],
    autoscaler: str = "target-util",
    dataset: str = "ppi",
    scale: float = 0.05,
    qps: float = 150.0,
    arrival: str = "mmpp",
    instances: int = 2,
    min_instances: int = 1,
    max_instances: int = 12,
    max_batch: int = 8,
    duration_seconds: float = 2.0,
    seed: int = 0,
    jobs: int = 1,
    store: "ResultStore | None" = None,
):
    """Sweep the autoscaler setpoint; the cost-vs-tail trade-off axis.

    Each target runs the full closed-loop simulation (the fleet grows and
    shrinks against the bursty arrival stream) and returns one
    :class:`~repro.serve.scenario.ServingRecord` per setpoint.  A tight
    target (high utilization / deep queue tolerance) spends few
    instance-seconds but lets tails grow; a loose one buys latency with
    capacity — the sweep shows where the knee sits for a workload.
    """
    from repro.campaign.spec import CampaignSpec
    from repro.serve.scenario import ServingScenario
    from repro.serve.sweep import run_serving_campaign

    if not targets:
        raise ValueError("need at least one autoscaler target")
    if any(t <= 0 for t in targets):
        raise ValueError("autoscaler targets must be positive")
    spec = CampaignSpec(
        name="sweep-autoscaler-targets",
        base=ServingScenario(
            dataset=dataset,
            scale=scale,
            arrival=arrival,
            qps=qps,
            instances=instances,
            min_instances=min_instances,
            max_instances=max_instances,
            max_batch=max_batch,
            duration_seconds=duration_seconds,
            autoscaler=autoscaler,
            seed=seed,
        ),
        axes=(("autoscale_target", tuple(float(t) for t in targets)),),
    )
    return run_serving_campaign(spec, jobs=jobs, store=store).records


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Pareto-efficient subset on (epoch time, energy, peak temperature).

    A point is dominated if another point is no worse on all three axes
    and strictly better on at least one.  Duplicate points never dominate
    each other, so exact ties all survive.
    """

    def dominates(a: DesignPoint, b: DesignPoint) -> bool:
        no_worse = (
            a.epoch_seconds <= b.epoch_seconds
            and a.epoch_energy_joules <= b.epoch_energy_joules
            and a.peak_celsius <= b.peak_celsius
        )
        strictly = (
            a.epoch_seconds < b.epoch_seconds
            or a.epoch_energy_joules < b.epoch_energy_joules
            or a.peak_celsius < b.peak_celsius
        )
        return no_worse and strictly

    return [
        p for p in points if not any(dominates(q, p) for q in points if q is not p)
    ]
