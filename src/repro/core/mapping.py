"""Layer-to-router mapping with simulated annealing (paper Sec. IV.D).

Each of the 4L pipeline stages (V1..VL, E1..EL and their backward twins)
gets a disjoint set of routers: V stages draw from the V tier, E stages
from the two E tiers.  The SA optimizer (following GRAMARCH [12]) swaps
routers between stages to pull heavily-communicating stage pairs close,
minimizing a volume-weighted distance cost — the proxy for long-range and
multicast traffic the paper optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ReGraphXConfig
from repro.utils.rng import rng_from_seed


def stage_names(num_layers: int, training: bool = True) -> list[str]:
    """Pipeline stage names in dataflow order (Fig. 4, generalized).

    Training: V1 E1 ... VL EL followed by the backward mirror BEL BVL ...
    BE1 BV1 (4L stages).  Inference: forward stages only (2L stages).
    """
    if num_layers < 1:
        raise ValueError("need at least one layer")
    forward = []
    for i in range(1, num_layers + 1):
        forward += [f"V{i}", f"E{i}"]
    if not training:
        return forward
    backward = []
    for i in range(num_layers, 0, -1):
        backward += [f"BE{i}", f"BV{i}"]
    return forward + backward


def communication_legs(num_layers: int, training: bool = True) -> list[tuple[str, str]]:
    """Directed stage pairs that exchange activation/gradient rows.

    Forward: Vi->Ei and Ei->Vi+1; when training, also the multicast legs
    Ei->BVi+1 (saved input activations) and Ei->BEi (saved ReLU masks),
    the loss turnaround EL->BEL, and the backward chain BEi->BVi and
    BVi->BEi-1.
    """
    legs: list[tuple[str, str]] = []
    for i in range(1, num_layers + 1):
        legs.append((f"V{i}", f"E{i}"))
        if i < num_layers:
            legs.append((f"E{i}", f"V{i + 1}"))
        if not training:
            continue
        if i < num_layers:
            legs.append((f"E{i}", f"BV{i + 1}"))
        legs.append((f"E{i}", f"BE{i}"))
        legs.append((f"BE{i}", f"BV{i}"))
        if i > 1:
            legs.append((f"BV{i}", f"BE{i - 1}"))
    return legs


@dataclass(frozen=True)
class StageMap:
    """Assignment of router sets to pipeline stages."""

    assignment: dict[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for stage, routers in self.assignment.items():
            if not routers:
                raise ValueError(f"stage {stage} has no routers")
            overlap = seen & set(routers)
            if overlap:
                raise ValueError(f"routers {overlap} assigned to multiple stages")
            seen.update(routers)

    def routers(self, stage: str) -> tuple[int, ...]:
        if stage not in self.assignment:
            raise KeyError(f"unknown stage {stage!r}")
        return self.assignment[stage]

    @property
    def stages(self) -> list[str]:
        return list(self.assignment)


def contiguous_mapping(config: ReGraphXConfig, training: bool = True) -> StageMap:
    """Baseline mapping: deal routers to stages in id order.

    V stages slice the V tier contiguously; E stages slice the
    concatenated E tiers contiguously.  Simple, deterministic, and the
    starting point for annealing.  Inference pipelines have half the
    stages, so each stage receives twice the routers.
    """
    names = stage_names(config.num_layers, training)
    v_stages = [s for s in names if s.lstrip("B").startswith("V")]
    e_stages = [s for s in names if s.lstrip("B").startswith("E")]
    v_pool = config.v_routers()
    e_pool = config.e_routers()
    per_v = len(v_pool) // len(v_stages)
    per_e = len(e_pool) // len(e_stages)
    assignment: dict[str, tuple[int, ...]] = {}
    for idx, stage in enumerate(v_stages):
        assignment[stage] = tuple(v_pool[idx * per_v:(idx + 1) * per_v])
    for idx, stage in enumerate(e_stages):
        assignment[stage] = tuple(e_pool[idx * per_e:(idx + 1) * per_e])
    return StageMap(assignment)


def random_mapping(
    config: ReGraphXConfig, seed: int | np.random.Generator | None = 0
) -> StageMap:
    """Random router-to-stage assignment (the SA ablation baseline).

    Respects tier constraints (V stages on the V tier, E stages on the E
    tiers) but scatters each stage's routers arbitrarily — the kind of
    placement an application-agnostic allocator would produce.
    """
    rng = rng_from_seed(seed)
    names = stage_names(config.num_layers)
    v_stages = [s for s in names if s.lstrip("B").startswith("V")]
    e_stages = [s for s in names if s.lstrip("B").startswith("E")]
    v_pool = list(rng.permutation(config.v_routers()))
    e_pool = list(rng.permutation(config.e_routers()))
    per_v = config.v_routers_per_stage
    per_e = config.e_routers_per_stage
    assignment: dict[str, tuple[int, ...]] = {}
    for idx, stage in enumerate(v_stages):
        assignment[stage] = tuple(int(r) for r in v_pool[idx * per_v:(idx + 1) * per_v])
    for idx, stage in enumerate(e_stages):
        assignment[stage] = tuple(int(r) for r in e_pool[idx * per_e:(idx + 1) * per_e])
    return StageMap(assignment)


def _mapping_cost(
    assignment: dict[str, tuple[int, ...]],
    legs: list[tuple[str, str]],
    leg_volumes: dict[tuple[str, str], float],
    coords: np.ndarray,
) -> float:
    """Volume-weighted mean Manhattan distance between stage groups."""
    cost = 0.0
    for leg in legs:
        src, dst = leg
        a = np.asarray(assignment[src])
        b = np.asarray(assignment[dst])
        dist = np.abs(coords[a][:, None, :] - coords[b][None, :, :]).sum(axis=2)
        cost += leg_volumes.get(leg, 1.0) * float(dist.mean())
    return cost


def anneal_mapping(
    config: ReGraphXConfig,
    leg_volumes: dict[tuple[str, str], float] | None = None,
    iterations: int = 2000,
    initial_temperature: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> StageMap:
    """Simulated-annealing refinement of :func:`contiguous_mapping`.

    Args:
        config: the architecture instance.
        leg_volumes: relative communication volume per stage pair (defaults
            to 1.0 per leg); typically filled from the workload's per-layer
            output sizes.
        iterations: SA steps (each proposes one router swap).
        initial_temperature: SA temperature, decayed geometrically to ~1%.
        seed: RNG seed for proposal and acceptance draws.

    Returns:
        The best :class:`StageMap` found.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    rng = rng_from_seed(seed)
    legs = communication_legs(config.num_layers)
    volumes = leg_volumes or {}
    topo = config.topology
    coords = np.asarray([topo.coords(r) for r in range(topo.num_routers)], dtype=float)

    current = {s: list(r) for s, r in contiguous_mapping(config).assignment.items()}
    v_stages = [s for s in current if s.lstrip("B").startswith("V")]
    e_stages = [s for s in current if s.lstrip("B").startswith("E")]

    def snapshot() -> dict[str, tuple[int, ...]]:
        return {s: tuple(r) for s, r in current.items()}

    cost = _mapping_cost(snapshot(), legs, volumes, coords)
    best, best_cost = snapshot(), cost
    if iterations == 0:
        return StageMap(best)
    alpha = 0.01 ** (1.0 / iterations)  # decay to 1% of T0
    temperature = initial_temperature * cost / max(len(legs), 1)
    for _ in range(iterations):
        pool = v_stages if rng.random() < 0.5 else e_stages
        s1, s2 = rng.choice(len(pool), size=2, replace=False)
        stage_a, stage_b = pool[s1], pool[s2]
        ia = int(rng.integers(len(current[stage_a])))
        ib = int(rng.integers(len(current[stage_b])))
        current[stage_a][ia], current[stage_b][ib] = (
            current[stage_b][ib],
            current[stage_a][ia],
        )
        new_cost = _mapping_cost(snapshot(), legs, volumes, coords)
        accept = new_cost <= cost or rng.random() < np.exp(
            (cost - new_cost) / max(temperature, 1e-12)
        )
        if accept:
            cost = new_cost
            if cost < best_cost:
                best, best_cost = snapshot(), cost
        else:  # undo
            current[stage_a][ia], current[stage_b][ib] = (
                current[stage_b][ib],
                current[stage_a][ia],
            )
        temperature *= alpha
    return StageMap(best)
