"""Layer-to-router mapping with simulated annealing (paper Sec. IV.D).

Each of the 4L pipeline stages (V1..VL, E1..EL and their backward twins)
gets a disjoint set of routers: V stages draw from the V tier, E stages
from the two E tiers.  The SA optimizer (following GRAMARCH [12]) swaps
routers between stages to pull heavily-communicating stage pairs close,
minimizing a volume-weighted distance cost — the proxy for long-range and
multicast traffic the paper optimizes.

Cost evaluation has two modes.  ``cost_mode="incremental"`` (the default)
keeps per-leg cross-group distance sums as exact integer running state and
updates only the legs incident to the two swapped stages on each proposal
— O(legs touched) bookkeeping per step instead of re-materializing every
O(|A|·|B|) pairwise-distance matrix.  ``cost_mode="full"`` is the original
full-recompute path, retained as the reference oracle; both modes draw the
same RNG sequence and produce bit-identical accept/reject decisions, so
the same seed yields the same :class:`StageMap` either way.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.config import ReGraphXConfig
from repro.utils.rng import rng_from_seed, spawn_rngs

#: SA iterations at the paper's 8x8x3 design point; the default iteration
#: budget scales linearly with router count around this anchor.
_BASE_ITERATIONS = 2000
_BASE_ROUTERS = 192


def stage_names(num_layers: int, training: bool = True) -> list[str]:
    """Pipeline stage names in dataflow order (Fig. 4, generalized).

    Training: V1 E1 ... VL EL followed by the backward mirror BEL BVL ...
    BE1 BV1 (4L stages).  Inference: forward stages only (2L stages).
    """
    if num_layers < 1:
        raise ValueError("need at least one layer")
    forward = []
    for i in range(1, num_layers + 1):
        forward += [f"V{i}", f"E{i}"]
    if not training:
        return forward
    backward = []
    for i in range(num_layers, 0, -1):
        backward += [f"BE{i}", f"BV{i}"]
    return forward + backward


def communication_legs(num_layers: int, training: bool = True) -> list[tuple[str, str]]:
    """Directed stage pairs that exchange activation/gradient rows.

    Forward: Vi->Ei and Ei->Vi+1; when training, also the multicast legs
    Ei->BVi+1 (saved input activations) and Ei->BEi (saved ReLU masks),
    the loss turnaround EL->BEL, and the backward chain BEi->BVi and
    BVi->BEi-1.
    """
    legs: list[tuple[str, str]] = []
    for i in range(1, num_layers + 1):
        legs.append((f"V{i}", f"E{i}"))
        if i < num_layers:
            legs.append((f"E{i}", f"V{i + 1}"))
        if not training:
            continue
        if i < num_layers:
            legs.append((f"E{i}", f"BV{i + 1}"))
        legs.append((f"E{i}", f"BE{i}"))
        legs.append((f"BE{i}", f"BV{i}"))
        if i > 1:
            legs.append((f"BV{i}", f"BE{i - 1}"))
    return legs


@dataclass(frozen=True)
class StageMap:
    """Assignment of router sets to pipeline stages."""

    assignment: dict[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for stage, routers in self.assignment.items():
            if not routers:
                raise ValueError(f"stage {stage} has no routers")
            overlap = seen & set(routers)
            if overlap:
                raise ValueError(f"routers {overlap} assigned to multiple stages")
            seen.update(routers)

    def routers(self, stage: str) -> tuple[int, ...]:
        if stage not in self.assignment:
            raise KeyError(f"unknown stage {stage!r}")
        return self.assignment[stage]

    @property
    def stages(self) -> list[str]:
        return list(self.assignment)


def contiguous_mapping(config: ReGraphXConfig, training: bool = True) -> StageMap:
    """Baseline mapping: deal routers to stages in id order.

    V stages slice the V tier contiguously; E stages slice the
    concatenated E tiers contiguously.  Simple, deterministic, and the
    starting point for annealing.  Inference pipelines have half the
    stages, so each stage receives twice the routers.
    """
    names = stage_names(config.num_layers, training)
    v_stages = [s for s in names if s.lstrip("B").startswith("V")]
    e_stages = [s for s in names if s.lstrip("B").startswith("E")]
    v_pool = config.v_routers()
    e_pool = config.e_routers()
    per_v = len(v_pool) // len(v_stages)
    per_e = len(e_pool) // len(e_stages)
    assignment: dict[str, tuple[int, ...]] = {}
    for idx, stage in enumerate(v_stages):
        assignment[stage] = tuple(v_pool[idx * per_v:(idx + 1) * per_v])
    for idx, stage in enumerate(e_stages):
        assignment[stage] = tuple(e_pool[idx * per_e:(idx + 1) * per_e])
    return StageMap(assignment)


def random_mapping(
    config: ReGraphXConfig,
    seed: int | np.random.Generator | None = 0,
    training: bool = True,
) -> StageMap:
    """Random router-to-stage assignment (the SA ablation baseline).

    Respects tier constraints (V stages on the V tier, E stages on the E
    tiers) but scatters each stage's routers arbitrarily — the kind of
    placement an application-agnostic allocator would produce.  Like
    :func:`contiguous_mapping`, inference (``training=False``) builds the
    2L forward-only pipeline with twice the routers per stage.
    """
    rng = rng_from_seed(seed)
    names = stage_names(config.num_layers, training)
    v_stages = [s for s in names if s.lstrip("B").startswith("V")]
    e_stages = [s for s in names if s.lstrip("B").startswith("E")]
    v_pool = list(rng.permutation(config.v_routers()))
    e_pool = list(rng.permutation(config.e_routers()))
    per_v = len(v_pool) // len(v_stages)
    per_e = len(e_pool) // len(e_stages)
    assignment: dict[str, tuple[int, ...]] = {}
    for idx, stage in enumerate(v_stages):
        assignment[stage] = tuple(int(r) for r in v_pool[idx * per_v:(idx + 1) * per_v])
    for idx, stage in enumerate(e_stages):
        assignment[stage] = tuple(int(r) for r in e_pool[idx * per_e:(idx + 1) * per_e])
    return StageMap(assignment)


def default_sa_iterations(config: ReGraphXConfig) -> int:
    """Default SA budget: 2000 steps at 8x8x3, linear in router count.

    Bigger meshes have more placement freedom per stage, so the proposal
    budget grows with the router population; tiny meshes keep a floor
    that still anneals past the greedy phase.
    """
    routers = config.topology.num_routers
    return max(200, round(_BASE_ITERATIONS * routers / _BASE_ROUTERS))


def _mapping_cost(
    assignment: dict[str, tuple[int, ...]],
    legs: list[tuple[str, str]],
    leg_volumes: dict[tuple[str, str], float],
    coords: np.ndarray,
) -> float:
    """Volume-weighted mean Manhattan distance between stage groups."""
    cost = 0.0
    for leg in legs:
        src, dst = leg
        a = np.asarray(assignment[src])
        b = np.asarray(assignment[dst])
        dist = np.abs(coords[a][:, None, :] - coords[b][None, :, :]).sum(axis=2)
        cost += leg_volumes.get(leg, 1.0) * float(dist.mean())
    return cost


class IncrementalCost:
    """Exact running state for the SA cost under single-router swaps.

    The cost is ``sum_leg w_leg * S_leg / (|A_leg| * |B_leg|)`` where
    ``S_leg`` is the integer sum of pairwise Manhattan distances between
    the leg's two stage groups.  Manhattan distances on an integer mesh
    are integers, so ``S_leg`` is maintained as exact integer state and
    :meth:`total_cost` reconstructs the float cost with the same per-leg
    term and accumulation order as :func:`_mapping_cost` — making the
    incremental cost bit-identical to a full recompute.

    Per leg the state also carries two int64 vectors over *all* routers:
    the distance-sum to the leg's current destination group and from its
    current source group.  Replacing one router in a stage then costs two
    O(1) lookups plus one O(num_routers) vectorized vector update per
    incident leg; a rejected swap is reverted by applying the inverse
    replacements, which is exact in integer arithmetic.
    """

    def __init__(
        self,
        assignment: dict[str, tuple[int, ...] | list[int]],
        legs: list[tuple[str, str]],
        leg_volumes: dict[tuple[str, str], float],
        coords: np.ndarray,
    ) -> None:
        dist = np.abs(coords[:, None, :] - coords[None, :, :]).sum(axis=2)
        self._D = np.asarray(np.rint(dist), dtype=np.int64)
        self._legs = list(legs)
        self._weights = [leg_volumes.get(leg, 1.0) for leg in self._legs]
        self._sizes: list[int] = []
        self._sums: list[int] = []
        self._to_dst: list[np.ndarray] = []  # per leg: sum of D[r, dst members]
        self._from_src: list[np.ndarray] = []  # per leg: sum of D[src members, r]
        self._stage_legs: dict[str, list[tuple[int, bool]]] = {}
        for idx, (src, dst) in enumerate(self._legs):
            a = np.asarray(assignment[src], dtype=np.int64)
            b = np.asarray(assignment[dst], dtype=np.int64)
            self._sizes.append(int(a.size) * int(b.size))
            self._sums.append(int(self._D[np.ix_(a, b)].sum()))
            self._to_dst.append(self._D[:, b].sum(axis=1))
            self._from_src.append(self._D[a, :].sum(axis=0))
            self._stage_legs.setdefault(src, []).append((idx, True))
            self._stage_legs.setdefault(dst, []).append((idx, False))

    def replace(self, stage: str, old: int, new: int) -> None:
        """Account for router ``old`` -> ``new`` in ``stage``'s group."""
        incident = self._stage_legs.get(stage)
        if not incident:
            return
        # The distance-row difference is the same for every incident leg.
        diff = self._D[new] - self._D[old]
        sums = self._sums
        for idx, as_src in incident:
            if as_src:
                vec = self._to_dst[idx]
                sums[idx] += int(vec[new]) - int(vec[old])
                self._from_src[idx] += diff
            else:
                vec = self._from_src[idx]
                sums[idx] += int(vec[new]) - int(vec[old])
                self._to_dst[idx] += diff

    def swap(self, stage_a: str, router_a: int, stage_b: str, router_b: int) -> None:
        """Exchange ``router_a`` (in ``stage_a``) with ``router_b``."""
        self.replace(stage_a, router_a, router_b)
        self.replace(stage_b, router_b, router_a)

    def total_cost(self) -> float:
        """The current cost, bit-identical to :func:`_mapping_cost`."""
        cost = 0.0
        for weight, total, size in zip(self._weights, self._sums, self._sizes):
            cost += weight * (total / size)
        return cost


def _anneal_once(
    config: ReGraphXConfig,
    leg_volumes: dict[tuple[str, str], float] | None,
    iterations: int,
    initial_temperature: float,
    rng: np.random.Generator,
    training: bool,
    cost_mode: str,
) -> tuple[dict[str, tuple[int, ...]], float]:
    """One annealing run; returns (best assignment, best cost)."""
    legs = communication_legs(config.num_layers, training)
    volumes = leg_volumes or {}
    topo = config.topology
    coords = np.asarray([topo.coords(r) for r in range(topo.num_routers)], dtype=float)

    current = {
        s: list(r) for s, r in contiguous_mapping(config, training).assignment.items()
    }
    v_stages = [s for s in current if s.lstrip("B").startswith("V")]
    e_stages = [s for s in current if s.lstrip("B").startswith("E")]

    def snapshot() -> dict[str, tuple[int, ...]]:
        return {s: tuple(r) for s, r in current.items()}

    state = (
        IncrementalCost(current, legs, volumes, coords)
        if cost_mode == "incremental"
        else None
    )
    cost = state.total_cost() if state is not None else _mapping_cost(
        snapshot(), legs, volumes, coords
    )
    best, best_cost = snapshot(), cost
    if iterations == 0:
        return best, best_cost
    alpha = 0.01 ** (1.0 / iterations)  # decay to 1% of T0
    temperature = initial_temperature * cost / max(len(legs), 1)
    for _ in range(iterations):
        pool = v_stages if rng.random() < 0.5 else e_stages
        if len(pool) < 2:
            # Degenerate pool (e.g. a 1-layer inference pipeline has a
            # single V and a single E stage): nothing to swap — keep the
            # temperature schedule ticking and move on.
            temperature *= alpha
            continue
        s1, s2 = rng.choice(len(pool), size=2, replace=False)
        stage_a, stage_b = pool[s1], pool[s2]
        ia = int(rng.integers(len(current[stage_a])))
        ib = int(rng.integers(len(current[stage_b])))
        router_a, router_b = current[stage_a][ia], current[stage_b][ib]
        current[stage_a][ia], current[stage_b][ib] = router_b, router_a
        if state is not None:
            state.swap(stage_a, router_a, stage_b, router_b)
            new_cost = state.total_cost()
        else:
            new_cost = _mapping_cost(snapshot(), legs, volumes, coords)
        accept = new_cost <= cost or rng.random() < np.exp(
            (cost - new_cost) / max(temperature, 1e-12)
        )
        if accept:
            cost = new_cost
            if cost < best_cost:
                best, best_cost = snapshot(), cost
        else:  # undo
            current[stage_a][ia], current[stage_b][ib] = router_a, router_b
            if state is not None:
                state.swap(stage_a, router_b, stage_b, router_a)
        temperature *= alpha
    return best, best_cost


def _anneal_restart(args: tuple) -> tuple[dict[str, tuple[int, ...]], float]:
    """Module-level worker so restart fan-out can cross process pools."""
    return _anneal_once(*args)


def anneal_mapping(
    config: ReGraphXConfig,
    leg_volumes: dict[tuple[str, str], float] | None = None,
    iterations: int | None = None,
    initial_temperature: float = 2.0,
    seed: int | np.random.Generator | None = 0,
    training: bool = True,
    cost_mode: str = "incremental",
    restarts: int = 1,
    jobs: int = 1,
) -> StageMap:
    """Simulated-annealing refinement of :func:`contiguous_mapping`.

    Args:
        config: the architecture instance.
        leg_volumes: relative communication volume per stage pair (defaults
            to 1.0 per leg); typically filled from the workload's per-layer
            output sizes.
        iterations: SA steps (each proposes one router swap); ``None``
            scales the budget with mesh size (:func:`default_sa_iterations`,
            2000 at the paper's 8x8x3 point).
        initial_temperature: SA temperature, decayed geometrically to ~1%.
        seed: RNG seed for proposal and acceptance draws.
        training: anneal the 4L training pipeline (default) or the 2L
            forward-only inference pipeline.
        cost_mode: ``"incremental"`` (delta-cost running state, the fast
            default) or ``"full"`` (recompute every proposal, the
            reference oracle).  Both are bit-identical for the same seed.
        restarts: independent annealing runs; the first uses ``seed``
            exactly (so ``restarts=1`` reproduces historical results) and
            the rest use child streams spawned from it.  The best final
            cost wins, ties broken toward the earliest restart.
        jobs: worker processes for restart fan-out (``<= 1`` runs inline;
            the campaign executor keeps this at 1 inside its own pool).

    Returns:
        The best :class:`StageMap` found.
    """
    if iterations is None:
        iterations = default_sa_iterations(config)
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if cost_mode not in ("incremental", "full"):
        raise ValueError(f"unknown cost_mode {cost_mode!r}")
    if restarts < 1:
        raise ValueError("restarts must be at least 1")
    rngs = [rng_from_seed(seed)]
    if restarts > 1:
        rngs += spawn_rngs(seed, restarts - 1)
    payloads = [
        (config, leg_volumes, iterations, initial_temperature, rng, training, cost_mode)
        for rng in rngs
    ]
    if restarts > 1 and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, restarts)) as pool:
            results = list(pool.map(_anneal_restart, payloads))
    else:
        results = [_anneal_once(*payload) for payload in payloads]
    best, best_cost = results[0]
    for candidate, candidate_cost in results[1:]:
        if candidate_cost < best_cost:
            best, best_cost = candidate, candidate_cost
    return StageMap(best)
