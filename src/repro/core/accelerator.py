"""The ReGraphX façade: build a workload, map it, schedule it, evaluate it.

This is the top of the library: everything below (graph substrate, GNN
shapes, ReRAM timing/energy, NoC scheduling, SA mapping, pipeline algebra)
is composed here into the numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ReGraphXConfig
from repro.core.mapping import StageMap, anneal_mapping, contiguous_mapping
from repro.core.pipeline import PipelineModel, PipelineTiming
from repro.core.traffic import GNNTrafficModel
from repro.graph.clustering import ClusterBatcher
from repro.graph.datasets import DatasetSpec, get_dataset_spec, load_dataset
from repro.graph.graph import CSRGraph
from repro.graph.partition import PartitionResult, partition_graph
from repro.noc.schedule import ScheduleResult, StaticScheduler
from repro.reram.energy import EnergyModel
from repro.reram.sparse_mapping import BlockMapping, block_tile_adjacency


@dataclass
class Workload:
    """A dataset instance prepared for architectural evaluation.

    The representative merged sub-graph stands for every pipeline input:
    the paper's evaluation is likewise worst-case/steady-state over a
    typical input (Sec. V.C).
    """

    spec: DatasetSpec
    graph: CSRGraph
    partition: PartitionResult
    batch_size: int
    num_inputs: int
    rep_subgraph: CSRGraph
    block_mapping: BlockMapping
    layer_dims: list[tuple[int, int]]

    @property
    def num_nodes_per_input(self) -> int:
        return self.rep_subgraph.num_nodes

    @property
    def nnz_per_input(self) -> int:
        return self.block_mapping.nnz_entries

    @property
    def full_scale_num_inputs(self) -> int:
        """NumInput at the paper's full dataset size (Table II).

        Per-input sub-graph statistics are scale-invariant by construction
        (partitions scale with nodes), so epoch-level projections use the
        full-scale input count even when the graph was generated at a
        reduced scale.
        """
        return max(1, self.spec.num_partitions // self.batch_size)


@dataclass
class ReGraphXReport:
    """Full evaluation output for one workload on one configuration."""

    workload: Workload
    config: ReGraphXConfig
    stage_map: StageMap
    multicast: bool
    compute_seconds: dict[str, float]
    communication_seconds: dict[str, float]
    pipeline: PipelineTiming
    schedule: ScheduleResult
    compute_energy_per_input: float
    write_energy_per_input: float
    noc_energy_per_input: float
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def epoch_seconds(self) -> float:
        return self.pipeline.epoch_seconds

    @property
    def energy_per_input(self) -> float:
        return (
            self.compute_energy_per_input
            + self.write_energy_per_input
            + self.noc_energy_per_input
        )

    @property
    def static_epoch_energy(self) -> float:
        """Chip static draw over the whole epoch (dominant at 10 MHz)."""
        return self.config.energy.static_power_watts * self.epoch_seconds

    @property
    def epoch_energy(self) -> float:
        dynamic = self.energy_per_input * self.pipeline.num_inputs
        return dynamic + self.static_epoch_energy

    @property
    def worst_compute(self) -> float:
        return self.pipeline.worst_compute

    @property
    def worst_communication(self) -> float:
        return self.pipeline.worst_communication


class ReGraphX:
    """The accelerator model: one instance per architecture configuration."""

    def __init__(self, config: ReGraphXConfig | None = None) -> None:
        self.config = config or ReGraphXConfig()
        self._pipeline_model = PipelineModel(self.config.num_layers)
        self._inference_pipeline = PipelineModel(
            self.config.num_layers, training=False
        )

    # ------------------------------------------------------------------
    # Workload preparation
    # ------------------------------------------------------------------
    def build_workload(
        self,
        dataset: str | DatasetSpec,
        scale: float = 0.02,
        seed: int = 0,
        batch_size: int | None = None,
        graph: CSRGraph | None = None,
        partition: PartitionResult | None = None,
    ) -> Workload:
        """Prepare a dataset for evaluation.

        Args:
            dataset: dataset name or spec (Table II).
            scale: synthetic graph scale (1.0 = full Table II size).
            seed: RNG seed for generation/partitioning/batching.
            batch_size: beta; defaults to the paper's per-dataset choice.
            graph: optionally reuse an already-generated graph.
            partition: optionally reuse an existing partition.
        """
        spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset_spec(dataset)
        beta = batch_size if batch_size is not None else spec.batch_size
        if beta < 1:
            raise ValueError(f"batch size must be >= 1, got {beta}")
        if graph is None:
            graph = load_dataset(spec.name, scale=scale, seed=seed, with_features=False)
        _, _, num_parts = spec.scaled(scale)
        num_parts = max(num_parts, beta)
        num_parts -= num_parts % beta or 0
        if partition is None:
            partition = partition_graph(graph, num_parts, seed=seed)
        batcher = ClusterBatcher(graph, partition, beta, seed=seed)
        rep = batcher.epoch()[0].subgraph
        mapping = block_tile_adjacency(rep, self.config.e_tile.crossbar_size)
        dims = [spec.feature_dim] + [spec.hidden_dim] * (spec.num_layers - 1) + [
            spec.num_classes
        ]
        layer_dims = list(zip(dims[:-1], dims[1:]))
        if len(layer_dims) != self.config.num_layers:
            raise ValueError(
                f"dataset wants {len(layer_dims)} layers but the architecture "
                f"is configured for {self.config.num_layers}"
            )
        return Workload(
            spec=spec,
            graph=graph,
            partition=partition,
            batch_size=beta,
            num_inputs=batcher.num_inputs,
            rep_subgraph=rep,
            block_mapping=mapping,
            layer_dims=layer_dims,
        )

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_stages(
        self,
        workload: Workload,
        use_sa: bool = True,
        sa_iterations: int | None = None,
        seed: int = 0,
        cost_mode: str = "incremental",
        restarts: int = 1,
        jobs: int = 1,
    ) -> StageMap:
        """Place pipeline stages on routers (SA-optimized by default).

        ``sa_iterations=None`` scales the annealing budget with mesh size
        (2000 steps at the paper's 8x8x3 point).  ``restarts > 1`` runs
        independent annealing chains and keeps the cheapest final map,
        fanned out over ``jobs`` worker processes when asked.
        """
        if not use_sa:
            return contiguous_mapping(self.config)
        baseline = contiguous_mapping(self.config)
        traffic = GNNTrafficModel(
            self.config,
            baseline,
            workload.block_mapping,
            workload.num_nodes_per_input,
            workload.layer_dims,
        )
        return anneal_mapping(
            self.config,
            leg_volumes=traffic.leg_volumes(),
            iterations=sa_iterations,
            seed=seed,
            cost_mode=cost_mode,
            restarts=restarts,
            jobs=jobs,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        workload: Workload,
        multicast: bool = True,
        stage_map: StageMap | None = None,
        use_sa: bool = True,
        seed: int = 0,
        training: bool = True,
        sa_restarts: int = 1,
    ) -> ReGraphXReport:
        """Run the full architectural evaluation for one workload.

        With ``training=False`` the pipeline carries forward stages only
        (2L instead of 4L), each stage receives twice the PE budget, and
        no gradient/mask traffic is generated — the inference deployment
        of the same chip.  ``sa_restarts`` forwards to
        :meth:`map_stages` when the stage map is annealed here.
        """
        cfg = self.config
        if stage_map is None:
            if training:
                stage_map = self.map_stages(
                    workload, use_sa=use_sa, seed=seed, restarts=sa_restarts
                )
            else:
                stage_map = contiguous_mapping(cfg, training=False)
        n = workload.num_nodes_per_input
        blocks = workload.block_mapping.nnz_blocks

        compute = self._stage_compute(workload, n, blocks, training)
        traffic = GNNTrafficModel(
            cfg,
            stage_map,
            workload.block_mapping,
            n,
            workload.layer_dims,
            training=training,
        )
        scheduler = StaticScheduler(cfg.topology, cfg.noc)
        schedule = scheduler.simulate(traffic.messages(), multicast=multicast)
        comm = self._stage_communication(schedule)
        pipeline_model = self._pipeline_model if training else self._inference_pipeline
        timing = pipeline_model.timing(
            compute, comm, workload.full_scale_num_inputs
        )

        compute_energy, write_energy = self._input_energy(
            workload, n, blocks, training
        )
        return ReGraphXReport(
            workload=workload,
            config=cfg,
            stage_map=stage_map,
            multicast=multicast,
            compute_seconds=compute,
            communication_seconds=comm,
            pipeline=timing,
            schedule=schedule,
            compute_energy_per_input=compute_energy,
            write_energy_per_input=write_energy,
            noc_energy_per_input=schedule.energy_joules(),
        )

    def _stage_budgets(self, training: bool) -> tuple[int, int]:
        """(V IMAs, E crossbars) per pipeline stage for the mode."""
        cfg = self.config
        if training:
            return cfg.v_imas_per_stage, cfg.e_crossbars_per_stage
        # Inference halves the stage count, doubling each stage's share.
        v_stages = cfg.num_layers
        e_stages = cfg.num_layers
        v_imas = (
            len(cfg.v_routers()) // v_stages
        ) * cfg.tiles_per_router * cfg.v_tile.num_imas
        e_xbars = (
            len(cfg.e_routers()) // e_stages
        ) * cfg.tiles_per_router * cfg.e_tile.adjacency_blocks_per_tile
        return v_imas, e_xbars

    def _stage_compute(
        self, workload: Workload, n: int, blocks: int, training: bool = True
    ) -> dict[str, float]:
        """Deterministic per-stage compute latencies (Sec. V.A models)."""
        cfg = self.config
        t = cfg.timing
        compute: dict[str, float] = {}
        v_imas, e_xbars = self._stage_budgets(training)
        write = t.adjacency_write_latency(blocks, e_xbars)
        for i, (din, dout) in enumerate(workload.layer_dims, start=1):
            v_lat = t.v_layer_latency(n, din, dout, v_imas)
            e_lat = t.e_layer_latency(dout, blocks, e_xbars)
            compute[f"V{i}"] = v_lat
            # E stages overlap compute with (double-buffered) block loads.
            compute[f"E{i}"] = max(e_lat, write)
            if training:
                # Backward V does two matrix products (dX and dW).
                compute[f"BV{i}"] = 2.0 * v_lat
                compute[f"BE{i}"] = max(e_lat, write)
        return compute

    def _stage_communication(self, schedule: ScheduleResult) -> dict[str, float]:
        """Per-stage outgoing communication time from the NoC schedule."""
        comm: dict[str, float] = {}
        for tag, cycles in schedule.tag_finish.items():
            stage = tag.split("->")[0]
            seconds = cycles * schedule.config.cycle_time
            comm[stage] = max(comm.get(stage, 0.0), seconds)
        return comm

    def _input_energy(
        self, workload: Workload, n: int, blocks: int, training: bool = True
    ) -> tuple[float, float]:
        """(compute, write) energy one input spends traversing the pipeline."""
        cfg = self.config
        model = EnergyModel(cfg.energy)
        v_spec = cfg.v_tile.ima
        e_spec = cfg.e_tile.ima
        compute = 0.0
        for din, dout in workload.layer_dims:
            v_energy = model.v_layer_energy(
                n,
                din,
                dout,
                data_bits=v_spec.data_format.total_bits,
                crossbar_size=v_spec.crossbar_size,
                adc_bits=v_spec.adc.bits,
                slices=v_spec.weight_slices,
            )
            e_energy = model.e_layer_energy(
                dout,
                blocks,
                data_bits=e_spec.data_format.total_bits,
                block_size=e_spec.crossbar_size,
                adc_bits=e_spec.adc.bits,
            )
            if training:
                # Forward V + backward V (2x: dX, dW), forward + backward E.
                compute += 3.0 * v_energy + 2.0 * e_energy
            else:
                compute += v_energy + e_energy
        # Each input's adjacency blocks are programmed into every E stage
        # slot it passes through (forward + backward E stages when
        # training, forward only for inference).
        e_slots = (2 if training else 1) * cfg.num_layers
        writes = e_slots * model.adjacency_write_energy(
            blocks, e_spec.crossbar_size
        )
        return compute, writes
