"""Traffic extraction for pipelined GNN training (paper Sec. III / IV.B).

Given a stage mapping and the block structure of the representative merged
sub-graph, this module produces the exact message set one pipeline period
carries.  The construction follows the dataflow of Fig. 1(d)/Fig. 4.

**Block placement.**  Each E stage's adjacency blocks are spread over its
routers on a 2D grid: block ``(br, bc)`` lives at grid position
``(br mod a, bc mod b)``.  A feature row therefore multicasts to at most
``a`` routers (the grid column of its block-column), and each block-row's
partial sums converge from at most ``b`` routers onto the block-row's
accumulation home — the *many-to-one-to-many* pattern of Sec. III with a
bounded multicast degree.  Backward E stages hold the transposed blocks
(grid position ``(bc mod a, br mod b)``), mirroring the pattern for
gradients.

**Legs** (all tagged ``SRC->DST`` so the pipeline model can attribute the
finish time to the producing stage):

* ``Vi -> Ei`` — updated feature rows to the grid column holding their
  block-column (multicast, degree <= a).
* ``Ei -> Ei`` — partial-sum reduction onto block-row homes (many-to-one).
* ``Ei -> Vi+1`` — aggregated rows to the V routers owning them next layer
  *and* the backward-phase ``BVi+1`` routers (the fwd/bwd multicast).
* ``Ei -> BEi`` — ReLU masks (1 bit/value); for the last layer also the
  full-precision loss gradient.
* ``BEi -> BEi`` — backward partial-sum reduction.
* ``BEi -> BVi`` and ``BVi -> BEi-1`` — the mirrored backward chain.

Row ownership inside V-type stages is contiguous-chunked over the stage's
routers.  Messages with identical (source, destination set, tag) are
coalesced, as a DMA engine would.

**Extraction engines.**  :meth:`GNNTrafficModel.messages` builds the set
through a vectorized numpy group-by over the nonzero blocks (stable-sorted
by block row/column, so per-group destination lists come out in the same
order the scalar code visited them); the original per-router Python loops
are retained behind ``messages(vectorized=False)`` as the reference
oracle.  Both engines produce bit-identical message ids and ordering.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.config import ReGraphXConfig
from repro.core.mapping import StageMap
from repro.noc.packet import Message
from repro.reram.sparse_mapping import BlockMapping


def _grid_shape(num_routers: int) -> tuple[int, int]:
    """Largest divisor pair (a, b), a <= b, a as close to sqrt as possible."""
    best = (1, num_routers)
    for a in range(1, int(np.sqrt(num_routers)) + 1):
        if num_routers % a == 0:
            best = (a, num_routers // a)
    return best


@dataclass(frozen=True)
class _EPlacement:
    """Grid placement of adjacency blocks on one E stage's routers."""

    routers: tuple[int, ...]
    transposed: bool  # backward stages hold the transposed blocks

    @property
    def grid(self) -> tuple[int, int]:
        return _grid_shape(len(self.routers))

    def block_router(self, br: int, bc: int) -> int:
        """Router holding block (br, bc)."""
        a, b = self.grid
        if self.transposed:
            br, bc = bc, br
        return self.routers[(br % a) * b + (bc % b)]

    def block_routers(self, brs: np.ndarray, bcs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_router` over parallel block arrays."""
        a, b = self.grid
        if self.transposed:
            brs, bcs = bcs, brs
        return np.asarray(self.routers)[(brs % a) * b + (bcs % b)]

    def input_dests(self, group: int, partners: np.ndarray) -> set[int]:
        """Routers needing input rows of block group ``group``.

        ``partners`` are the occupied opposite-dimension groups: block-rows
        adjacent to an input column (forward) or block-columns adjacent to
        an input row (backward).
        """
        if self.transposed:
            return {self.block_router(int(group), int(p)) for p in partners}
        return {self.block_router(int(p), int(group)) for p in partners}

    def row_home(self, group: int) -> int:
        """Accumulation home of output group ``group``."""
        return self.routers[group % len(self.routers)]

    def partial_sources(self, group: int, partners: np.ndarray) -> set[int]:
        """Routers producing partial sums for output group ``group``."""
        if self.transposed:
            return {self.block_router(int(p), int(group)) for p in partners}
        return {self.block_router(int(group), int(p)) for p in partners}


@dataclass(frozen=True)
class _BlockIndex:
    """Row/column adjacency structure of the nonzero blocks.

    Beyond the per-group partner dictionaries the scalar path consumes,
    the index carries stable group-by orderings of the raw block arrays:
    ``order_by_col`` sorts blocks by block-column while preserving the
    original block order inside each column (likewise ``order_by_row``),
    so vectorized per-group slices enumerate partners in exactly the
    order the scalar dictionaries recorded them.
    """

    brs_by_col: dict[int, np.ndarray]  # block-col -> occupied block-rows
    bcs_by_row: dict[int, np.ndarray]  # block-row -> occupied block-cols
    occupied_rows: np.ndarray
    occupied_cols: np.ndarray
    brs: np.ndarray  # block-row of every nonzero block
    bcs: np.ndarray  # block-col of every nonzero block
    order_by_col: np.ndarray  # stable argsort of bcs
    order_by_row: np.ndarray  # stable argsort of brs
    col_splits: np.ndarray  # split points into order_by_col per occupied col
    row_splits: np.ndarray  # split points into order_by_row per occupied row


def _build_block_index(mapping: BlockMapping) -> _BlockIndex:
    nbc = mapping.num_block_cols
    brs = mapping.block_ids // nbc
    bcs = mapping.block_ids % nbc
    brs_by_col: dict[int, list[int]] = defaultdict(list)
    bcs_by_row: dict[int, list[int]] = defaultdict(list)
    for br, bc in zip(brs.tolist(), bcs.tolist()):
        brs_by_col[bc].append(br)
        bcs_by_row[br].append(bc)
    occupied_rows = np.unique(brs)
    occupied_cols = np.unique(bcs)
    order_by_col = np.argsort(bcs, kind="stable")
    order_by_row = np.argsort(brs, kind="stable")
    return _BlockIndex(
        brs_by_col={k: np.asarray(v) for k, v in brs_by_col.items()},
        bcs_by_row={k: np.asarray(v) for k, v in bcs_by_row.items()},
        occupied_rows=occupied_rows,
        occupied_cols=occupied_cols,
        brs=brs,
        bcs=bcs,
        order_by_col=order_by_col,
        order_by_row=order_by_row,
        col_splits=np.searchsorted(bcs[order_by_col], occupied_cols[1:]),
        row_splits=np.searchsorted(brs[order_by_row], occupied_rows[1:]),
    )


class GNNTrafficModel:
    """Builds the per-period message set of the full training pipeline."""

    def __init__(
        self,
        config: ReGraphXConfig,
        stage_map: StageMap,
        block_mapping: BlockMapping,
        num_nodes: int,
        layer_dims: list[tuple[int, int]],
        data_bits: int = 16,
        e_rounds: int = 1,
        training: bool = True,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("workload needs at least one node")
        if e_rounds < 1:
            raise ValueError("e_rounds must be at least 1")
        self.training = training
        if len(layer_dims) != config.num_layers:
            raise ValueError(
                f"got {len(layer_dims)} layer dims for a "
                f"{config.num_layers}-layer configuration"
            )
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        self.config = config
        self.stage_map = stage_map
        self.block_mapping = block_mapping
        self.num_nodes = num_nodes
        self.layer_dims = layer_dims
        self.data_bits = data_bits
        # When an E stage's block set exceeds its crossbar budget, blocks
        # are processed in rounds over disjoint block-COLUMN ranges, so
        # each input row is still delivered once (to the round that owns
        # its column group).  ``e_rounds`` is retained for sensitivity
        # studies (e_rounds > 1 models row-range rounds, which would
        # re-stream inputs every round); the accelerator default is 1.
        self.e_rounds = e_rounds
        self.block_size = block_mapping.block_size
        self._index = _build_block_index(block_mapping)
        # (layer, transposed, axis) -> per-group dest-router arrays.
        self._group_cache: dict[tuple[int, bool, str], list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _placement(self, layer: int, backward: bool) -> _EPlacement:
        stage = f"BE{layer}" if backward else f"E{layer}"
        return _EPlacement(
            routers=self.stage_map.routers(stage), transposed=backward
        )

    def _chunk_bounds(self, routers: tuple[int, ...]) -> np.ndarray:
        """Row-range boundaries for contiguous chunk ownership."""
        r = len(routers)
        return np.asarray([(k * self.num_nodes) // r for k in range(r + 1)])

    def _owners(self, routers: tuple[int, ...], lo: int, hi: int) -> set[int]:
        """Routers owning any row in ``[lo, hi)``."""
        bounds = self._chunk_bounds(routers)
        first = max(int(np.searchsorted(bounds, lo, side="right") - 1), 0)
        last = min(
            int(np.searchsorted(bounds, hi - 1, side="right") - 1), len(routers) - 1
        )
        return {routers[k] for k in range(first, last + 1)}

    def _chunks_overlapping(
        self, routers: tuple[int, ...], lo: int, hi: int
    ) -> list[tuple[int, int]]:
        """(router, rows) pairs covering ``[lo, hi)`` by chunk ownership."""
        bounds = self._chunk_bounds(routers)
        first = max(int(np.searchsorted(bounds, lo, side="right") - 1), 0)
        last = min(
            int(np.searchsorted(bounds, hi - 1, side="right") - 1), len(routers) - 1
        )
        out = []
        for k in range(first, last + 1):
            rows = min(hi, int(bounds[k + 1])) - max(lo, int(bounds[k]))
            if rows > 0:
                out.append((routers[k], rows))
        return out

    def _group_rows(self, group: int) -> tuple[int, int]:
        """Row range [lo, hi) covered by block group ``group``."""
        lo = group * self.block_size
        hi = min(lo + self.block_size, self.num_nodes)
        return lo, hi

    # ------------------------------------------------------------------
    # Vectorized group-by helpers
    # ------------------------------------------------------------------
    def _block_routers_by(
        self, layer: int, transposed: bool, axis: str
    ) -> list[np.ndarray]:
        """Per-group arrays of block-holding routers, numpy group-by built.

        ``axis="col"`` groups by block-column (aligned with
        ``occupied_cols``); ``axis="row"`` by block-row.  Within a group,
        routers appear in original block order — the same enumeration the
        scalar partner dictionaries produce — so downstream ``set()``
        construction inserts elements in the historical order.
        """
        key = (layer, transposed, axis)
        cached = self._group_cache.get(key)
        if cached is not None:
            return cached
        idx = self._index
        placement = self._placement(layer, backward=transposed)
        per_block = placement.block_routers(idx.brs, idx.bcs)
        if axis == "col":
            grouped = np.split(per_block[idx.order_by_col], idx.col_splits)
        else:
            grouped = np.split(per_block[idx.order_by_row], idx.row_splits)
        self._group_cache[key] = grouped
        return grouped

    def _chunk_spans(
        self, routers: tuple[int, ...], groups: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized chunk-ownership spans for every group's row range.

        Returns ``(bounds, los, his, firsts, lasts)`` where chunk indices
        ``firsts[k]..lasts[k]`` of ``routers`` cover rows
        ``[los[k], his[k])`` of group ``groups[k]``.
        """
        bounds = self._chunk_bounds(routers)
        los = groups * self.block_size
        his = np.minimum(los + self.block_size, self.num_nodes)
        firsts = np.maximum(np.searchsorted(bounds, los, side="right") - 1, 0)
        lasts = np.minimum(
            np.searchsorted(bounds, his - 1, side="right") - 1, len(routers) - 1
        )
        return bounds, los, his, firsts, lasts

    # ------------------------------------------------------------------
    # Message construction
    # ------------------------------------------------------------------
    def messages(self, vectorized: bool = True) -> list[Message]:
        """The full message set of one pipeline period, all legs tagged.

        ``vectorized=False`` runs the original scalar construction — kept
        as the reference oracle; both engines are bit-identical (same
        message ids, ordering, and contents).
        """
        acc: dict[tuple[int, frozenset[int], str], int] = defaultdict(int)
        # Pick the engine once; the leg sequence itself is defined in one
        # place so the two implementations cannot drift apart.
        if vectorized:
            into_e = self._vec_leg_into_e
            partial_sums = self._vec_leg_partial_sums
            e_out = self._vec_leg_e_out
            e_to_be = self._vec_leg_e_to_be
            be_to_bv = self._vec_leg_be_to_bv
        else:
            into_e = self._leg_into_e
            partial_sums = self._leg_partial_sums
            e_out = self._leg_e_out
            e_to_be = self._leg_e_to_be
            be_to_bv = self._leg_be_to_bv
        num_layers = self.config.num_layers
        for i in range(1, num_layers + 1):
            din, dout = self.layer_dims[i - 1]
            into_e(acc, i, dout, backward=False)
            partial_sums(acc, i, dout, backward=False)
            e_out(acc, i, dout, is_last=(i == num_layers))
            if not self.training:
                continue
            e_to_be(acc, i, dout, gradient=(i == num_layers))
            partial_sums(acc, i, dout, backward=True)
            be_to_bv(acc, i, dout)
            if i > 1:
                into_e(acc, i, din, backward=True)
        messages: list[Message] = []
        for msg_id, ((src, dests, tag), bits) in enumerate(sorted(acc.items(), key=str)):
            messages.append(
                Message(
                    src=src,
                    dests=tuple(sorted(dests)),
                    size_bits=bits,
                    tag=tag,
                    msg_id=msg_id,
                )
            )
        return messages

    def _add(
        self,
        acc: dict[tuple[int, frozenset[int], str], int],
        src: int,
        dests: set[int],
        bits: int,
        tag: str,
    ) -> None:
        dests = dests - {src}
        if not dests or bits <= 0:
            return
        acc[(src, frozenset(dests), tag)] += bits

    # ------------------------------------------------------------------
    # Vectorized legs (numpy group-by; the default engine)
    # ------------------------------------------------------------------
    def _vec_leg_into_e(self, acc, layer: int, width: int, backward: bool) -> None:
        """Rows into an E-type stage: Vi->Ei, or BVi->BEi-1 for gradients."""
        idx = self._index
        if backward:
            src_routers = self.stage_map.routers(f"BV{layer}")
            dest_groups = self._block_routers_by(layer - 1, transposed=True, axis="row")
            groups = idx.occupied_rows
            tag = f"BV{layer}->BE{layer - 1}"
        else:
            src_routers = self.stage_map.routers(f"V{layer}")
            dest_groups = self._block_routers_by(layer, transposed=False, axis="col")
            groups = idx.occupied_cols
            tag = f"V{layer}->E{layer}"
        bounds, los, his, firsts, lasts = self._chunk_spans(src_routers, groups)
        factor = width * self.data_bits * self.e_rounds
        for k in range(len(groups)):
            dests = set(dest_groups[k].tolist())
            lo, hi = int(los[k]), int(his[k])
            for c in range(int(firsts[k]), int(lasts[k]) + 1):
                rows = min(hi, int(bounds[c + 1])) - max(lo, int(bounds[c]))
                if rows > 0:
                    self._add(acc, src_routers[c], dests, rows * factor, tag)

    def _vec_leg_partial_sums(self, acc, layer: int, dout: int, backward: bool) -> None:
        """Within-stage reduction: partial block products to the row home."""
        idx = self._index
        if backward:
            groups = idx.occupied_cols
            src_groups = self._block_routers_by(layer, transposed=True, axis="col")
            stage = f"BE{layer}"
        else:
            groups = idx.occupied_rows
            src_groups = self._block_routers_by(layer, transposed=False, axis="row")
            stage = f"E{layer}"
        routers = self.stage_map.routers(stage)
        num_routers = len(routers)
        tag = f"{stage}->{stage}"
        factor = dout * self.data_bits
        for k, g in enumerate(groups.tolist()):
            lo, hi = self._group_rows(g)
            bits = (hi - lo) * factor
            home = routers[g % num_routers]
            for src in set(src_groups[k].tolist()):
                self._add(acc, src, {home}, bits, tag)

    def _vec_leg_e_out(self, acc, layer: int, dout: int, is_last: bool) -> None:
        """Ei -> Vi+1 (and BVi+1): aggregated rows fan out (multicast)."""
        if is_last:
            return  # the last E stage feeds the loss turnaround instead
        idx = self._index
        e_routers = self.stage_map.routers(f"E{layer}")
        num_e = len(e_routers)
        v_next = self.stage_map.routers(f"V{layer + 1}")
        bv_next = (
            self.stage_map.routers(f"BV{layer + 1}") if self.training else ()
        )
        groups = idx.occupied_rows
        _, los, his, v_firsts, v_lasts = self._chunk_spans(v_next, groups)
        if bv_next:
            _, _, _, bv_firsts, bv_lasts = self._chunk_spans(bv_next, groups)
        tag = f"E{layer}->V{layer + 1}"
        factor = dout * self.data_bits
        for k, br in enumerate(groups.tolist()):
            src = e_routers[br % num_e]
            dests = set(v_next[int(v_firsts[k]):int(v_lasts[k]) + 1])
            if bv_next:
                dests |= set(bv_next[int(bv_firsts[k]):int(bv_lasts[k]) + 1])
            self._add(acc, src, dests, int(his[k] - los[k]) * factor, tag)

    def _vec_leg_e_to_be(self, acc, layer: int, dout: int, gradient: bool) -> None:
        """Ei -> BEi: ReLU masks (plus the loss gradient at the last layer)."""
        idx = self._index
        e_routers = self.stage_map.routers(f"E{layer}")
        num_e = len(e_routers)
        dest_groups = self._block_routers_by(layer, transposed=True, axis="row")
        bits_per_value = self.data_bits + 1 if gradient else 1
        tag = f"E{layer}->BE{layer}"
        factor = dout * bits_per_value * self.e_rounds
        for k, br in enumerate(idx.occupied_rows.tolist()):
            lo, hi = self._group_rows(br)
            src = e_routers[br % num_e]
            dests = set(dest_groups[k].tolist())
            self._add(acc, src, dests, (hi - lo) * factor, tag)

    def _vec_leg_be_to_bv(self, acc, layer: int, dout: int) -> None:
        """BEi -> BVi: back-propagated rows to their chunk owners."""
        idx = self._index
        be_routers = self.stage_map.routers(f"BE{layer}")
        num_be = len(be_routers)
        bv_routers = self.stage_map.routers(f"BV{layer}")
        groups = idx.occupied_cols
        _, los, his, firsts, lasts = self._chunk_spans(bv_routers, groups)
        tag = f"BE{layer}->BV{layer}"
        factor = dout * self.data_bits
        for k, bc in enumerate(groups.tolist()):
            src = be_routers[bc % num_be]
            dests = set(bv_routers[int(firsts[k]):int(lasts[k]) + 1])
            self._add(acc, src, dests, int(his[k] - los[k]) * factor, tag)

    # ------------------------------------------------------------------
    # Scalar legs (the reference oracle behind ``vectorized=False``)
    # ------------------------------------------------------------------
    def _leg_into_e(self, acc, layer: int, width: int, backward: bool) -> None:
        """Rows into an E-type stage: Vi->Ei, or BVi->BEi-1 for gradients."""
        if backward:
            src_routers = self.stage_map.routers(f"BV{layer}")
            placement = self._placement(layer - 1, backward=True)
            groups = self._index.occupied_rows
            partners_of = self._index.bcs_by_row
            tag = f"BV{layer}->BE{layer - 1}"
        else:
            src_routers = self.stage_map.routers(f"V{layer}")
            placement = self._placement(layer, backward=False)
            groups = self._index.occupied_cols
            partners_of = self._index.brs_by_col
            tag = f"V{layer}->E{layer}"
        for g in groups:
            lo, hi = self._group_rows(int(g))
            dests = placement.input_dests(int(g), partners_of[int(g)])
            for router, rows in self._chunks_overlapping(src_routers, lo, hi):
                self._add(
                    acc,
                    router,
                    dests,
                    rows * width * self.data_bits * self.e_rounds,
                    tag,
                )

    def _leg_partial_sums(self, acc, layer: int, dout: int, backward: bool) -> None:
        """Within-stage reduction: partial block products to the row home."""
        placement = self._placement(layer, backward)
        if backward:
            groups = self._index.occupied_cols
            partners_of = self._index.brs_by_col
            stage = f"BE{layer}"
        else:
            groups = self._index.occupied_rows
            partners_of = self._index.bcs_by_row
            stage = f"E{layer}"
        tag = f"{stage}->{stage}"
        for g in groups:
            lo, hi = self._group_rows(int(g))
            home = placement.row_home(int(g))
            for src in placement.partial_sources(int(g), partners_of[int(g)]):
                self._add(acc, src, {home}, (hi - lo) * dout * self.data_bits, tag)

    def _leg_e_out(self, acc, layer: int, dout: int, is_last: bool) -> None:
        """Ei -> Vi+1 (and BVi+1): aggregated rows fan out (multicast)."""
        if is_last:
            return  # the last E stage feeds the loss turnaround instead
        placement = self._placement(layer, backward=False)
        v_next = self.stage_map.routers(f"V{layer + 1}")
        bv_next = (
            self.stage_map.routers(f"BV{layer + 1}") if self.training else ()
        )
        for br in self._index.occupied_rows:
            lo, hi = self._group_rows(int(br))
            src = placement.row_home(int(br))
            dests = self._owners(v_next, lo, hi)
            if bv_next:
                dests |= self._owners(bv_next, lo, hi)
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * self.data_bits,
                f"E{layer}->V{layer + 1}",
            )

    def _leg_e_to_be(self, acc, layer: int, dout: int, gradient: bool) -> None:
        """Ei -> BEi: ReLU masks (plus the loss gradient at the last layer)."""
        placement = self._placement(layer, backward=False)
        be_placement = self._placement(layer, backward=True)
        bits_per_value = self.data_bits + 1 if gradient else 1
        for br in self._index.occupied_rows:
            lo, hi = self._group_rows(int(br))
            src = placement.row_home(int(br))
            dests = be_placement.input_dests(int(br), self._index.bcs_by_row[int(br)])
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * bits_per_value * self.e_rounds,
                f"E{layer}->BE{layer}",
            )

    def _leg_be_to_bv(self, acc, layer: int, dout: int) -> None:
        """BEi -> BVi: back-propagated rows to their chunk owners."""
        placement = self._placement(layer, backward=True)
        bv_routers = self.stage_map.routers(f"BV{layer}")
        for bc in self._index.occupied_cols:
            lo, hi = self._group_rows(int(bc))
            src = placement.row_home(int(bc))
            dests = self._owners(bv_routers, lo, hi)
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * self.data_bits,
                f"BE{layer}->BV{layer}",
            )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def leg_volumes(self) -> dict[tuple[str, str], float]:
        """Total bits per (src_stage, dst_stage) leg — the SA cost weights."""
        volumes: dict[tuple[str, str], float] = defaultdict(float)
        for msg in self.messages():
            src_stage, dst_stage = msg.tag.split("->")
            volumes[(src_stage, dst_stage)] += msg.size_bits
            if dst_stage.startswith("V"):
                # The same messages also reach BV{i+1} (saved activations);
                # credit that leg so the annealer pulls it close too.
                volumes[(src_stage, "B" + dst_stage)] += msg.size_bits
        return dict(volumes)

    def multicast_degree(self) -> float:
        """Mean destination count per message (diagnostic)."""
        msgs = self.messages()
        if not msgs:
            return 0.0
        return float(np.mean([len(m.dests) for m in msgs]))


# ----------------------------------------------------------------------
# Cross-model validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoCValidation:
    """Agreement between the static schedule and the flit-level simulator
    on one message set (unicast expansion on both sides)."""

    static_makespan_cycles: int
    simulated_makespan_cycles: int
    flit_hops_match: bool
    num_messages: int

    @property
    def makespan_ratio(self) -> float:
        """static / simulated; ~1 means the models agree, >1 means the
        static schedule is (expectedly) more conservative."""
        if self.simulated_makespan_cycles == 0:
            return 1.0
        return self.static_makespan_cycles / self.simulated_makespan_cycles


def cross_validate_traffic(
    topo,
    noc_config,
    messages: list[Message],
    backend: str = "event",
) -> NoCValidation:
    """Check a message set against both NoC models (paper Sec. V.A).

    Runs the static conflict-free schedule analyzer and the flit-level
    simulator (event backend by default, so even full GNN traffic sets are
    affordable) over the same unicast expansion and reports how closely
    they agree.  Used by the integration suite and NoC-scaling studies to
    confirm the scheduler's contention model on real pipeline traffic.
    """
    from repro.noc.schedule import StaticScheduler
    from repro.noc.simulator import FlitSimulator

    static = StaticScheduler(topo, noc_config).simulate(messages, multicast=False)
    simulated = FlitSimulator(topo, noc_config, backend=backend).simulate(messages)
    return NoCValidation(
        static_makespan_cycles=static.makespan_cycles,
        simulated_makespan_cycles=simulated.makespan_cycles,
        flit_hops_match=(
            simulated.link_stats.total_flit_hops == static.total_flit_hops
        ),
        num_messages=len(messages),
    )
