"""Traffic extraction for pipelined GNN training (paper Sec. III / IV.B).

Given a stage mapping and the block structure of the representative merged
sub-graph, this module produces the exact message set one pipeline period
carries.  The construction follows the dataflow of Fig. 1(d)/Fig. 4.

**Block placement.**  Each E stage's adjacency blocks are spread over its
routers on a 2D grid: block ``(br, bc)`` lives at grid position
``(br mod a, bc mod b)``.  A feature row therefore multicasts to at most
``a`` routers (the grid column of its block-column), and each block-row's
partial sums converge from at most ``b`` routers onto the block-row's
accumulation home — the *many-to-one-to-many* pattern of Sec. III with a
bounded multicast degree.  Backward E stages hold the transposed blocks
(grid position ``(bc mod a, br mod b)``), mirroring the pattern for
gradients.

**Legs** (all tagged ``SRC->DST`` so the pipeline model can attribute the
finish time to the producing stage):

* ``Vi -> Ei`` — updated feature rows to the grid column holding their
  block-column (multicast, degree <= a).
* ``Ei -> Ei`` — partial-sum reduction onto block-row homes (many-to-one).
* ``Ei -> Vi+1`` — aggregated rows to the V routers owning them next layer
  *and* the backward-phase ``BVi+1`` routers (the fwd/bwd multicast).
* ``Ei -> BEi`` — ReLU masks (1 bit/value); for the last layer also the
  full-precision loss gradient.
* ``BEi -> BEi`` — backward partial-sum reduction.
* ``BEi -> BVi`` and ``BVi -> BEi-1`` — the mirrored backward chain.

Row ownership inside V-type stages is contiguous-chunked over the stage's
routers.  Messages with identical (source, destination set, tag) are
coalesced, as a DMA engine would.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.config import ReGraphXConfig
from repro.core.mapping import StageMap
from repro.noc.packet import Message
from repro.reram.sparse_mapping import BlockMapping


def _grid_shape(num_routers: int) -> tuple[int, int]:
    """Largest divisor pair (a, b), a <= b, a as close to sqrt as possible."""
    best = (1, num_routers)
    for a in range(1, int(np.sqrt(num_routers)) + 1):
        if num_routers % a == 0:
            best = (a, num_routers // a)
    return best


@dataclass(frozen=True)
class _EPlacement:
    """Grid placement of adjacency blocks on one E stage's routers."""

    routers: tuple[int, ...]
    transposed: bool  # backward stages hold the transposed blocks

    @property
    def grid(self) -> tuple[int, int]:
        return _grid_shape(len(self.routers))

    def block_router(self, br: int, bc: int) -> int:
        """Router holding block (br, bc)."""
        a, b = self.grid
        if self.transposed:
            br, bc = bc, br
        return self.routers[(br % a) * b + (bc % b)]

    def input_dests(self, group: int, partners: np.ndarray) -> set[int]:
        """Routers needing input rows of block group ``group``.

        ``partners`` are the occupied opposite-dimension groups: block-rows
        adjacent to an input column (forward) or block-columns adjacent to
        an input row (backward).
        """
        if self.transposed:
            return {self.block_router(int(group), int(p)) for p in partners}
        return {self.block_router(int(p), int(group)) for p in partners}

    def row_home(self, group: int) -> int:
        """Accumulation home of output group ``group``."""
        return self.routers[group % len(self.routers)]

    def partial_sources(self, group: int, partners: np.ndarray) -> set[int]:
        """Routers producing partial sums for output group ``group``."""
        if self.transposed:
            return {self.block_router(int(p), int(group)) for p in partners}
        return {self.block_router(int(group), int(p)) for p in partners}


@dataclass(frozen=True)
class _BlockIndex:
    """Row/column adjacency structure of the nonzero blocks."""

    brs_by_col: dict[int, np.ndarray]  # block-col -> occupied block-rows
    bcs_by_row: dict[int, np.ndarray]  # block-row -> occupied block-cols
    occupied_rows: np.ndarray
    occupied_cols: np.ndarray


def _build_block_index(mapping: BlockMapping) -> _BlockIndex:
    nbc = mapping.num_block_cols
    brs = mapping.block_ids // nbc
    bcs = mapping.block_ids % nbc
    brs_by_col: dict[int, list[int]] = defaultdict(list)
    bcs_by_row: dict[int, list[int]] = defaultdict(list)
    for br, bc in zip(brs.tolist(), bcs.tolist()):
        brs_by_col[bc].append(br)
        bcs_by_row[br].append(bc)
    return _BlockIndex(
        brs_by_col={k: np.asarray(v) for k, v in brs_by_col.items()},
        bcs_by_row={k: np.asarray(v) for k, v in bcs_by_row.items()},
        occupied_rows=np.unique(brs),
        occupied_cols=np.unique(bcs),
    )


class GNNTrafficModel:
    """Builds the per-period message set of the full training pipeline."""

    def __init__(
        self,
        config: ReGraphXConfig,
        stage_map: StageMap,
        block_mapping: BlockMapping,
        num_nodes: int,
        layer_dims: list[tuple[int, int]],
        data_bits: int = 16,
        e_rounds: int = 1,
        training: bool = True,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("workload needs at least one node")
        if e_rounds < 1:
            raise ValueError("e_rounds must be at least 1")
        self.training = training
        if len(layer_dims) != config.num_layers:
            raise ValueError(
                f"got {len(layer_dims)} layer dims for a "
                f"{config.num_layers}-layer configuration"
            )
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        self.config = config
        self.stage_map = stage_map
        self.block_mapping = block_mapping
        self.num_nodes = num_nodes
        self.layer_dims = layer_dims
        self.data_bits = data_bits
        # When an E stage's block set exceeds its crossbar budget, blocks
        # are processed in rounds over disjoint block-COLUMN ranges, so
        # each input row is still delivered once (to the round that owns
        # its column group).  ``e_rounds`` is retained for sensitivity
        # studies (e_rounds > 1 models row-range rounds, which would
        # re-stream inputs every round); the accelerator default is 1.
        self.e_rounds = e_rounds
        self.block_size = block_mapping.block_size
        self._index = _build_block_index(block_mapping)

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _placement(self, layer: int, backward: bool) -> _EPlacement:
        stage = f"BE{layer}" if backward else f"E{layer}"
        return _EPlacement(
            routers=self.stage_map.routers(stage), transposed=backward
        )

    def _chunk_bounds(self, routers: tuple[int, ...]) -> np.ndarray:
        """Row-range boundaries for contiguous chunk ownership."""
        r = len(routers)
        return np.asarray([(k * self.num_nodes) // r for k in range(r + 1)])

    def _owners(self, routers: tuple[int, ...], lo: int, hi: int) -> set[int]:
        """Routers owning any row in ``[lo, hi)``."""
        bounds = self._chunk_bounds(routers)
        first = max(int(np.searchsorted(bounds, lo, side="right") - 1), 0)
        last = min(
            int(np.searchsorted(bounds, hi - 1, side="right") - 1), len(routers) - 1
        )
        return {routers[k] for k in range(first, last + 1)}

    def _chunks_overlapping(
        self, routers: tuple[int, ...], lo: int, hi: int
    ) -> list[tuple[int, int]]:
        """(router, rows) pairs covering ``[lo, hi)`` by chunk ownership."""
        bounds = self._chunk_bounds(routers)
        first = max(int(np.searchsorted(bounds, lo, side="right") - 1), 0)
        last = min(
            int(np.searchsorted(bounds, hi - 1, side="right") - 1), len(routers) - 1
        )
        out = []
        for k in range(first, last + 1):
            rows = min(hi, int(bounds[k + 1])) - max(lo, int(bounds[k]))
            if rows > 0:
                out.append((routers[k], rows))
        return out

    def _group_rows(self, group: int) -> tuple[int, int]:
        """Row range [lo, hi) covered by block group ``group``."""
        lo = group * self.block_size
        hi = min(lo + self.block_size, self.num_nodes)
        return lo, hi

    # ------------------------------------------------------------------
    # Message construction
    # ------------------------------------------------------------------
    def messages(self) -> list[Message]:
        """The full message set of one pipeline period, all legs tagged."""
        acc: dict[tuple[int, frozenset[int], str], int] = defaultdict(int)
        num_layers = self.config.num_layers
        for i in range(1, num_layers + 1):
            din, dout = self.layer_dims[i - 1]
            self._leg_into_e(acc, i, dout, backward=False)
            self._leg_partial_sums(acc, i, dout, backward=False)
            self._leg_e_out(acc, i, dout, is_last=(i == num_layers))
            if not self.training:
                continue
            self._leg_e_to_be(acc, i, dout, gradient=(i == num_layers))
            self._leg_partial_sums(acc, i, dout, backward=True)
            self._leg_be_to_bv(acc, i, dout)
            if i > 1:
                self._leg_into_e(acc, i, din, backward=True)
        messages: list[Message] = []
        for msg_id, ((src, dests, tag), bits) in enumerate(sorted(acc.items(), key=str)):
            messages.append(
                Message(
                    src=src,
                    dests=tuple(sorted(dests)),
                    size_bits=bits,
                    tag=tag,
                    msg_id=msg_id,
                )
            )
        return messages

    def _add(
        self,
        acc: dict[tuple[int, frozenset[int], str], int],
        src: int,
        dests: set[int],
        bits: int,
        tag: str,
    ) -> None:
        dests = dests - {src}
        if not dests or bits <= 0:
            return
        acc[(src, frozenset(dests), tag)] += bits

    def _leg_into_e(self, acc, layer: int, width: int, backward: bool) -> None:
        """Rows into an E-type stage: Vi->Ei, or BVi->BEi-1 for gradients."""
        if backward:
            src_routers = self.stage_map.routers(f"BV{layer}")
            placement = self._placement(layer - 1, backward=True)
            groups = self._index.occupied_rows
            partners_of = self._index.bcs_by_row
            tag = f"BV{layer}->BE{layer - 1}"
        else:
            src_routers = self.stage_map.routers(f"V{layer}")
            placement = self._placement(layer, backward=False)
            groups = self._index.occupied_cols
            partners_of = self._index.brs_by_col
            tag = f"V{layer}->E{layer}"
        for g in groups:
            lo, hi = self._group_rows(int(g))
            dests = placement.input_dests(int(g), partners_of[int(g)])
            for router, rows in self._chunks_overlapping(src_routers, lo, hi):
                self._add(
                    acc,
                    router,
                    dests,
                    rows * width * self.data_bits * self.e_rounds,
                    tag,
                )

    def _leg_partial_sums(self, acc, layer: int, dout: int, backward: bool) -> None:
        """Within-stage reduction: partial block products to the row home."""
        placement = self._placement(layer, backward)
        if backward:
            groups = self._index.occupied_cols
            partners_of = self._index.brs_by_col
            stage = f"BE{layer}"
        else:
            groups = self._index.occupied_rows
            partners_of = self._index.bcs_by_row
            stage = f"E{layer}"
        tag = f"{stage}->{stage}"
        for g in groups:
            lo, hi = self._group_rows(int(g))
            home = placement.row_home(int(g))
            for src in placement.partial_sources(int(g), partners_of[int(g)]):
                self._add(acc, src, {home}, (hi - lo) * dout * self.data_bits, tag)

    def _leg_e_out(self, acc, layer: int, dout: int, is_last: bool) -> None:
        """Ei -> Vi+1 (and BVi+1): aggregated rows fan out (multicast)."""
        if is_last:
            return  # the last E stage feeds the loss turnaround instead
        placement = self._placement(layer, backward=False)
        v_next = self.stage_map.routers(f"V{layer + 1}")
        bv_next = (
            self.stage_map.routers(f"BV{layer + 1}") if self.training else ()
        )
        for br in self._index.occupied_rows:
            lo, hi = self._group_rows(int(br))
            src = placement.row_home(int(br))
            dests = self._owners(v_next, lo, hi)
            if bv_next:
                dests |= self._owners(bv_next, lo, hi)
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * self.data_bits,
                f"E{layer}->V{layer + 1}",
            )

    def _leg_e_to_be(self, acc, layer: int, dout: int, gradient: bool) -> None:
        """Ei -> BEi: ReLU masks (plus the loss gradient at the last layer)."""
        placement = self._placement(layer, backward=False)
        be_placement = self._placement(layer, backward=True)
        bits_per_value = self.data_bits + 1 if gradient else 1
        for br in self._index.occupied_rows:
            lo, hi = self._group_rows(int(br))
            src = placement.row_home(int(br))
            dests = be_placement.input_dests(int(br), self._index.bcs_by_row[int(br)])
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * bits_per_value * self.e_rounds,
                f"E{layer}->BE{layer}",
            )

    def _leg_be_to_bv(self, acc, layer: int, dout: int) -> None:
        """BEi -> BVi: back-propagated rows to their chunk owners."""
        placement = self._placement(layer, backward=True)
        bv_routers = self.stage_map.routers(f"BV{layer}")
        for bc in self._index.occupied_cols:
            lo, hi = self._group_rows(int(bc))
            src = placement.row_home(int(bc))
            dests = self._owners(bv_routers, lo, hi)
            self._add(
                acc,
                src,
                dests,
                (hi - lo) * dout * self.data_bits,
                f"BE{layer}->BV{layer}",
            )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def leg_volumes(self) -> dict[tuple[str, str], float]:
        """Total bits per (src_stage, dst_stage) leg — the SA cost weights."""
        volumes: dict[tuple[str, str], float] = defaultdict(float)
        for msg in self.messages():
            src_stage, dst_stage = msg.tag.split("->")
            volumes[(src_stage, dst_stage)] += msg.size_bits
            if dst_stage.startswith("V"):
                # The same messages also reach BV{i+1} (saved activations);
                # credit that leg so the annealer pulls it close too.
                volumes[(src_stage, "B" + dst_stage)] += msg.size_bits
        return dict(volumes)

    def multicast_degree(self) -> float:
        """Mean destination count per message (diagnostic)."""
        msgs = self.messages()
        if not msgs:
            return 0.0
        return float(np.mean([len(m.dests) for m in msgs]))


# ----------------------------------------------------------------------
# Cross-model validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoCValidation:
    """Agreement between the static schedule and the flit-level simulator
    on one message set (unicast expansion on both sides)."""

    static_makespan_cycles: int
    simulated_makespan_cycles: int
    flit_hops_match: bool
    num_messages: int

    @property
    def makespan_ratio(self) -> float:
        """static / simulated; ~1 means the models agree, >1 means the
        static schedule is (expectedly) more conservative."""
        if self.simulated_makespan_cycles == 0:
            return 1.0
        return self.static_makespan_cycles / self.simulated_makespan_cycles


def cross_validate_traffic(
    topo,
    noc_config,
    messages: list[Message],
    backend: str = "event",
) -> NoCValidation:
    """Check a message set against both NoC models (paper Sec. V.A).

    Runs the static conflict-free schedule analyzer and the flit-level
    simulator (event backend by default, so even full GNN traffic sets are
    affordable) over the same unicast expansion and reports how closely
    they agree.  Used by the integration suite and NoC-scaling studies to
    confirm the scheduler's contention model on real pipeline traffic.
    """
    from repro.noc.schedule import StaticScheduler
    from repro.noc.simulator import FlitSimulator

    static = StaticScheduler(topo, noc_config).simulate(messages, multicast=False)
    simulated = FlitSimulator(topo, noc_config, backend=backend).simulate(messages)
    return NoCValidation(
        static_makespan_cycles=static.makespan_cycles,
        simulated_makespan_cycles=simulated.makespan_cycles,
        flit_hops_match=(
            simulated.link_stats.total_flit_hops == static.total_flit_hops
        ),
        num_messages=len(messages),
    )
