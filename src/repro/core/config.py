"""ReGraphX architecture configuration (paper Table I + Sec. IV).

The reference instance is an 8x8x3 3D mesh: 64 routers per tier, 4 tiles
per router.  The middle tier (z = 1) carries the V-PEs (64 routers, 256
tiles of 128x128 crossbars); the top and bottom tiers carry the E-PEs
(128 routers, 512 tiles of 8x8 crossbars) — the sandwich of Fig. 2 that
gives every V-PE one-hop vertical reach to E-PEs in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.schedule import NoCConfig
from repro.noc.topology import Mesh3D
from repro.reram.energy import ReRAMEnergySpec
from repro.reram.tile import TileSpec, e_tile_spec, v_tile_spec
from repro.reram.timing import ReRAMTimingModel


@dataclass(frozen=True)
class ReGraphXConfig:
    """Complete parameterization of one ReGraphX instance."""

    mesh_width: int = 8
    mesh_height: int = 8
    tiers: int = 3
    v_tier: int = 1
    tiles_per_router: int = 4
    v_tile: TileSpec = field(default_factory=v_tile_spec)
    e_tile: TileSpec = field(default_factory=e_tile_spec)
    timing: ReRAMTimingModel = field(default_factory=ReRAMTimingModel)
    energy: ReRAMEnergySpec = field(default_factory=ReRAMEnergySpec)
    noc: NoCConfig = field(default_factory=NoCConfig)
    num_layers: int = 4  # GNN neural layers (paper Sec. V.A: four per dataset)

    def __post_init__(self) -> None:
        if not 0 <= self.v_tier < self.tiers:
            raise ValueError(f"v_tier {self.v_tier} outside [0, {self.tiers})")
        if self.tiers < 2:
            raise ValueError("ReGraphX needs at least one E tier besides the V tier")
        if self.tiles_per_router < 1:
            raise ValueError("need at least one tile per router")
        if self.v_tile.kind != "v" or self.e_tile.kind != "e":
            raise ValueError("tile specs assigned to the wrong roles")
        if self.num_layers < 1:
            raise ValueError("GNN must have at least one layer")
        # Every pipeline stage set must get at least one router.
        if self.v_routers_per_stage < 1:
            raise ValueError(
                f"{len(self.v_routers())} V routers cannot serve "
                f"{2 * self.num_layers} V pipeline stages"
            )
        if self.e_routers_per_stage < 1:
            raise ValueError(
                f"{len(self.e_routers())} E routers cannot serve "
                f"{2 * self.num_layers} E pipeline stages"
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Mesh3D:
        return Mesh3D(self.mesh_width, self.mesh_height, self.tiers)

    @property
    def e_tiers(self) -> tuple[int, ...]:
        return tuple(z for z in range(self.tiers) if z != self.v_tier)

    def v_routers(self) -> list[int]:
        """Router ids of the V tier."""
        return self.topology.tier_routers(self.v_tier)

    def e_routers(self) -> list[int]:
        """Router ids of all E tiers."""
        routers: list[int] = []
        for z in self.e_tiers:
            routers.extend(self.topology.tier_routers(z))
        return routers

    # ------------------------------------------------------------------
    # Resource counts
    # ------------------------------------------------------------------
    @property
    def num_v_tiles(self) -> int:
        return len(self.v_routers()) * self.tiles_per_router

    @property
    def num_e_tiles(self) -> int:
        return len(self.e_routers()) * self.tiles_per_router

    @property
    def num_v_imas(self) -> int:
        return self.num_v_tiles * self.v_tile.num_imas

    @property
    def num_e_crossbars(self) -> int:
        """Independent adjacency-block slots across all E tiles."""
        return self.num_e_tiles * self.e_tile.adjacency_blocks_per_tile

    # ------------------------------------------------------------------
    # Pipeline geometry
    # ------------------------------------------------------------------
    @property
    def num_pipeline_stages(self) -> int:
        """V+E sublayers, forward and backward (Fig. 4): 4 * layers."""
        return 4 * self.num_layers

    @property
    def v_routers_per_stage(self) -> int:
        """V routers per V pipeline stage (2L stages share the V tier)."""
        return len(self.v_routers()) // (2 * self.num_layers)

    @property
    def e_routers_per_stage(self) -> int:
        """E routers per E pipeline stage (2L stages share the E tiers)."""
        return len(self.e_routers()) // (2 * self.num_layers)

    @property
    def v_imas_per_stage(self) -> int:
        return self.v_routers_per_stage * self.tiles_per_router * self.v_tile.num_imas

    @property
    def e_crossbars_per_stage(self) -> int:
        return (
            self.e_routers_per_stage
            * self.tiles_per_router
            * self.e_tile.adjacency_blocks_per_tile
        )

    def summary(self) -> dict[str, object]:
        """Table I echo: the parameters a report would print."""
        return {
            "mesh": f"{self.mesh_width}x{self.mesh_height}x{self.tiers}",
            "v_tier": self.v_tier,
            "v_routers": len(self.v_routers()),
            "e_routers": len(self.e_routers()),
            "tiles_per_router": self.tiles_per_router,
            "v_tiles": self.num_v_tiles,
            "e_tiles": self.num_e_tiles,
            "v_crossbar": f"{self.v_tile.crossbar_size}x{self.v_tile.crossbar_size}",
            "e_crossbar": f"{self.e_tile.crossbar_size}x{self.e_tile.crossbar_size}",
            "imas_per_tile": self.v_tile.num_imas,
            "v_adc_bits": self.v_tile.ima.adc.bits,
            "e_adc_bits": self.e_tile.ima.adc.bits,
            "cell_bits": self.v_tile.ima.cell.bits,
            "clock_hz": self.timing.clock_hz,
            "pipeline_stages": self.num_pipeline_stages,
        }
