"""Fig. 5: GNN accuracy vs. epochs for different batch sizes (Reddit).

The paper fixes NumPart = 1500 and sweeps beta over {1, 5, 10, 20}: final
accuracy is insensitive to beta, but small beta shows *unstable* curves
(sudden accuracy drops), while large beta trains smoothly.  We reproduce
the study on the Reddit-like graph at reduced scale with a proportionally
reduced NumPart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentTable
from repro.gnn.model import GCN
from repro.gnn.training import ClusterGCNTrainer, TrainingHistory
from repro.graph.clustering import ClusterBatcher
from repro.graph.datasets import get_dataset_spec, load_dataset
from repro.graph.partition import partition_graph


@dataclass(frozen=True)
class Fig5Result:
    """Training histories per batch size."""

    dataset: str
    num_partitions: int
    histories: dict[int, TrainingHistory]

    def final_accuracy(self, beta: int) -> float:
        return self.histories[beta].final_val_accuracy

    def stability(self, beta: int) -> float:
        """Largest late-training validation accuracy drop (lower = stabler)."""
        return self.histories[beta].stability()

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=f"Fig. 5 - accuracy vs batch size ({self.dataset})",
            columns=["beta", "final train acc", "final val acc", "max late drop"],
        )
        for beta, hist in sorted(self.histories.items()):
            t.add_row(
                beta,
                hist.train_accuracy[-1],
                hist.val_accuracy[-1],
                hist.stability(),
            )
        return t


def run_fig5(
    dataset: str = "reddit",
    scale: float = 0.027,
    betas: tuple[int, ...] = (1, 5, 10, 20),
    num_partitions: int = 40,
    num_epochs: int = 30,
    hidden_dim: int = 64,
    feature_noise: float = 6.0,
    learning_rate: float = 0.01,
    seed: int = 0,
) -> Fig5Result:
    """Train the GCN at several batch sizes and record accuracy curves.

    Args:
        dataset: which Table II dataset to emulate.
        scale: generation scale (NumPart below must divide into it sensibly).
        betas: batch sizes swept (each must divide ``num_partitions``).
        num_partitions: scaled-down NumPart (paper: 1500 at full size).
        num_epochs: training epochs per run.
        hidden_dim: GCN hidden width (reduced for speed; the accuracy
            *stability* phenomenon does not depend on width).
        feature_noise: class-centroid noise (higher = harder task, so the
            curves differentiate instead of saturating immediately).
        learning_rate: Adam step size; the paper's instability phenomenon
            (small beta -> biased single-cluster gradients -> accuracy
            drops) is amplified by a realistic, non-tiny learning rate.
        seed: seeds generation, partitioning, batching, and init.
    """
    for beta in betas:
        if num_partitions % beta:
            raise ValueError(
                f"beta {beta} does not divide NumPart {num_partitions}"
            )
    spec = get_dataset_spec(dataset)
    graph = load_dataset(dataset, scale=scale, seed=seed, feature_noise=feature_noise)
    partition = partition_graph(graph, num_partitions, seed=seed)
    histories: dict[int, TrainingHistory] = {}
    for beta in betas:
        model = GCN(
            feature_dim=spec.feature_dim,
            hidden_dim=hidden_dim,
            num_classes=spec.num_classes,
            num_layers=spec.num_layers,
            seed=seed,
        )
        batcher = ClusterBatcher(graph, partition, beta, seed=seed + beta)
        trainer = ClusterGCNTrainer(model, graph, batcher, lr=learning_rate, seed=seed)
        histories[beta] = trainer.fit(num_epochs)
    return Fig5Result(
        dataset=dataset, num_partitions=num_partitions, histories=histories
    )
