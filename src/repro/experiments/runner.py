"""Run every experiment and print the paper's tables/figures as text.

Experiments live in the :data:`EXPERIMENTS` registry — a name-to-callable
map consumed by this runner, the ``python -m repro experiments`` CLI and
the campaign engine alike.  Each entry takes a seed and returns the
rendered table text.

Usage::

    python -m repro.experiments.runner                    # everything
    python -m repro.experiments.runner fig7 fig8          # a subset
    python -m repro.experiments.runner --seed 3 --jobs 4  # parallel, seeded
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from repro.experiments.fig3_zeros import run_fig3
from repro.experiments.fig5_accuracy import run_fig5
from repro.experiments.fig6_batch import run_fig6
from repro.experiments.fig7_noc import run_fig7
from repro.experiments.fig8_fullsystem import run_fig8
from repro.experiments.fig9_serving import run_fig9
from repro.experiments.fig10_autoscale import run_fig10
from repro.experiments.fig11_fleet import run_fig11
from repro.experiments.fig12_availability import run_fig12
from repro.experiments.tables import table1_parameters, table2_datasets


def _table1(seed: int) -> str:
    return table1_parameters().render()


def _table2(seed: int) -> str:
    return table2_datasets().render()


def _fig3(seed: int) -> str:
    return run_fig3(seed=seed).table().render()


def _fig5(seed: int) -> str:
    return run_fig5(seed=seed).table().render()


def _fig6(seed: int) -> str:
    return run_fig6(seed=seed).table().render()


def _fig7(seed: int) -> str:
    return run_fig7(seed=seed).table().render()


def _fig8(seed: int) -> str:
    result = run_fig8(seed=seed)
    summary = (
        f"\naverage speedup {result.mean_speedup:.2f} "
        f"(paper: ~3X), max {result.max_speedup:.2f} (paper: up to 3.5X)"
        f"\naverage energy savings {result.mean_energy_ratio:.2f} "
        f"(paper: up to ~11X)"
        f"\naverage EDP improvement {result.mean_edp_improvement:.1f} "
        f"(paper: ~34X average, up to 40X)"
    )
    return result.table().render() + summary


def _fig9(seed: int) -> str:
    result = run_fig9(seed=seed)
    knee = result.saturation_qps
    summary = (
        f"\nsaturation at ~{knee:g} qps offered"
        if knee is not None
        else "\nno saturation within the swept loads"
    )
    return result.table().render() + summary


def _fig10(seed: int) -> str:
    result = run_fig10(seed=seed)
    util = result.point("autoscale-util")
    summary = (
        f"\ntarget-util autoscaler: {result.savings:.1%} fewer "
        f"instance-seconds than static peak provisioning "
        f"({'SLO met' if util.meets_slo else 'SLO MISSED'})"
    )
    return result.table().render() + summary


def _fig11(seed: int) -> str:
    result = run_fig11(seed=seed)
    het = result.point("het-planned")
    best = result.best_homogeneous
    if het.feasible and best is not None:
        summary = (
            f"\nplanned fleet [{het.fleet}] meets the SLO at "
            f"{result.savings:.1%} lower $-rate than the best homogeneous "
            f"fleet [{best.fleet}] "
            f"({result.compositions_skipped} costlier compositions skipped)"
        )
    else:
        summary = "\nno feasible heterogeneous composition found"
    return result.table().render() + summary


def _fig12(seed: int) -> str:
    result = run_fig12(seed=seed)
    hedged = result.point("faults/retry+hedge")
    bare = result.point("faults/no-retry")
    summary = (
        f"\nretry+hedging recovers {hedged.recovery:.1%} of fault-free "
        f"SLO-attainment (no-retry: {bare.recovery:.1%}) at availability "
        f"{hedged.availability:.1%} despite {hedged.crashes} killed "
        f"instance(s)"
    )
    if result.plan_fleet_n1:
        summary += (
            f"\nN+1 fleet [{result.plan_fleet_n1}] survives the worst "
            f"single outage at {result.availability_premium:+.0%} $-rate "
            f"over N+0 [{result.plan_fleet_n0}]"
        )
    else:
        summary += "\nno feasible N+1 composition in the searched space"
    return result.table().render() + summary


#: Experiment registry: name -> callable(seed) -> rendered text.
EXPERIMENTS: dict[str, Callable[[int], str]] = {
    "table1": _table1,
    "table2": _table2,
    "fig3": _fig3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
}

ALL_EXPERIMENTS = tuple(EXPERIMENTS)


def _run_one(name: str, seed: int) -> tuple[str, str, float]:
    """Worker: run one registry entry (top level so pools can pickle it)."""
    start = time.time()
    text = EXPERIMENTS[name](seed)
    return name, text, time.time() - start


def run(
    names: list[str] | None = None, seed: int = 0, jobs: int = 1
) -> dict[str, str]:
    """Run the selected experiments; returns {name: rendered table}.

    With ``jobs > 1`` the experiments fan out across processes; output
    order still follows the requested order.
    """
    names = list(names or ALL_EXPERIMENTS)
    unknown = set(names) - set(EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")
    out: dict[str, str] = {}
    if jobs > 1 and len(names) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
            futures = [pool.submit(_run_one, name, seed) for name in names]
            results = {name: (text, elapsed)
                       for name, text, elapsed in (f.result() for f in futures)}
        for name in names:
            text, elapsed = results[name]
            out[name] = f"{text}\n[{elapsed:.1f}s]"
    else:
        for name in names:
            _, text, elapsed = _run_one(name, seed)
            out[name] = f"{text}\n[{elapsed:.1f}s]"
    return out


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "names", nargs="*", metavar="NAME",
        help=f"experiments to run (default all): {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    args = parser.parse_args(argv)
    try:
        results = run(args.names or None, seed=args.seed, jobs=args.jobs)
    except ValueError as error:
        parser.error(str(error))
    for _, text in results.items():
        print()
        print(text)


if __name__ == "__main__":
    main()
