"""Run every experiment and print the paper's tables/figures as text.

Usage::

    python -m repro.experiments.runner           # everything
    python -m repro.experiments.runner fig7 fig8 # a subset
"""

from __future__ import annotations

import sys
import time

from repro.experiments.fig3_zeros import run_fig3
from repro.experiments.fig5_accuracy import run_fig5
from repro.experiments.fig6_batch import run_fig6
from repro.experiments.fig7_noc import run_fig7
from repro.experiments.fig8_fullsystem import run_fig8
from repro.experiments.tables import table1_parameters, table2_datasets

ALL_EXPERIMENTS = ("table1", "table2", "fig3", "fig5", "fig6", "fig7", "fig8")


def run(names: list[str] | None = None, seed: int = 0) -> dict[str, str]:
    """Run the selected experiments; returns {name: rendered table}."""
    names = names or list(ALL_EXPERIMENTS)
    unknown = set(names) - set(ALL_EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")
    out: dict[str, str] = {}
    for name in names:
        start = time.time()
        if name == "table1":
            out[name] = table1_parameters().render()
        elif name == "table2":
            out[name] = table2_datasets().render()
        elif name == "fig3":
            out[name] = run_fig3(seed=seed).table().render()
        elif name == "fig5":
            out[name] = run_fig5(seed=seed).table().render()
        elif name == "fig6":
            out[name] = run_fig6(seed=seed).table().render()
        elif name == "fig7":
            out[name] = run_fig7(seed=seed).table().render()
        elif name == "fig8":
            result = run_fig8(seed=seed)
            summary = (
                f"\naverage speedup {result.mean_speedup:.2f} "
                f"(paper: ~3X), max {result.max_speedup:.2f} (paper: up to 3.5X)"
                f"\naverage energy savings {result.mean_energy_ratio:.2f} "
                f"(paper: up to ~11X)"
                f"\naverage EDP improvement {result.mean_edp_improvement:.1f} "
                f"(paper: ~34X average, up to 40X)"
            )
            out[name] = result.table().render() + summary
        out[name] += f"\n[{time.time() - start:.1f}s]"
    return out


def main(argv: list[str] | None = None) -> None:
    names = list(argv if argv is not None else sys.argv[1:]) or None
    for name, text in run(names).items():
        print()
        print(text)


if __name__ == "__main__":
    main()
