"""Fig. 9 (extension): serving latency vs. offered load.

Not a paper figure — the paper evaluates one-shot training runs — but the
canonical serving-system plot the reproduction's serving engine enables:
sweep offered QPS against a fixed fleet and watch tail latency hold flat
until the replicas saturate, then hockey-stick as queues grow.  The knee
is the fleet's practical capacity; the SLO-violation column shows how
much of the offered load still met the latency target at each rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentTable

#: Offered loads swept by default (requests/second); chosen to straddle
#: the 2-instance fleet's saturation point at the default PPI workload.
DEFAULT_QPS = (50.0, 100.0, 200.0, 400.0, 800.0)


@dataclass(frozen=True)
class Fig9Point:
    """One offered-load sample.

    ``peak_burn_rate`` is the worst burn-rate window
    (:mod:`repro.obs.slo`): a multiple of the sustainable
    budget-spending rate, so values above 1 mark the loads where the
    error budget was being spent faster than it regenerates.
    """

    qps: float
    throughput_qps: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    utilization: float
    slo_violation_rate: float
    peak_burn_rate: float = 0.0


@dataclass(frozen=True)
class Fig9Result:
    points: tuple[Fig9Point, ...]
    instances: int
    max_batch: int

    @property
    def saturation_qps(self) -> float | None:
        """First offered rate whose p99 exceeds 5x the lightest-load p99."""
        baseline = self.points[0].p99_latency_seconds
        for point in self.points:
            if point.p99_latency_seconds > 5.0 * baseline:
                return point.qps
        return None

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=(
                f"Fig. 9 - serving latency vs load "
                f"({self.instances} instances, batch<={self.max_batch})"
            ),
            columns=[
                "qps", "served", "p50 ms", "p99 ms", "util", "viol%", "burn x",
            ],
        )
        for p in self.points:
            t.add_row(
                p.qps,
                p.throughput_qps,
                p.p50_latency_seconds * 1e3,
                p.p99_latency_seconds * 1e3,
                p.utilization,
                p.slo_violation_rate * 100.0,
                p.peak_burn_rate,
            )
        return t


def run_fig9(
    qps_values: tuple[float, ...] = DEFAULT_QPS,
    seed: int = 0,
    instances: int = 2,
    max_batch: int = 8,
    duration_seconds: float = 1.0,
) -> Fig9Result:
    """Sweep offered load through the serving engine (Poisson arrivals)."""
    from repro.core.dse import sweep_serving_qps

    records = sweep_serving_qps(
        list(qps_values),
        instances=instances,
        max_batch=max_batch,
        duration_seconds=duration_seconds,
        seed=seed,
    )
    points = tuple(
        Fig9Point(
            qps=float(record.scenario["qps"]),
            throughput_qps=record.throughput_qps,
            p50_latency_seconds=record.p50_latency_seconds,
            p99_latency_seconds=record.p99_latency_seconds,
            utilization=record.utilization,
            slo_violation_rate=record.slo_violation_rate,
            peak_burn_rate=record.peak_burn_rate,
        )
        for record in records
    )
    return Fig9Result(points=points, instances=instances, max_batch=max_batch)
