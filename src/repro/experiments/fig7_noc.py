"""Fig. 7: computation vs. communication delay (unicast and multicast).

Per dataset, three bars normalized to the largest (the unicast
communication delay in the paper): worst-stage computation, worst-stage
communication without multicast, and with tree multicast.  The paper's
claims: communication always dominates computation, unicast is ~57% worse
than multicast on average, and for one dataset the computation/
communication gap nearly closes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import ReGraphX
from repro.experiments.common import DEFAULT_SCALES, ExperimentTable
from repro.graph.datasets import dataset_names


@dataclass(frozen=True)
class Fig7Point:
    """Delays for one dataset (seconds)."""

    dataset: str
    computation: float
    communication_unicast: float
    communication_multicast: float

    @property
    def normalizer(self) -> float:
        return max(
            self.computation,
            self.communication_unicast,
            self.communication_multicast,
        )

    @property
    def unicast_penalty(self) -> float:
        """How much worse unicast is than multicast (1.573 = 57.3% worse)."""
        return self.communication_unicast / self.communication_multicast


@dataclass(frozen=True)
class Fig7Result:
    points: dict[str, Fig7Point]

    @property
    def mean_unicast_penalty(self) -> float:
        vals = [p.unicast_penalty for p in self.points.values()]
        return sum(vals) / len(vals)

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title="Fig. 7 - normalized worst-stage delay",
            columns=["dataset", "computation", "comm-U", "comm-M"],
        )
        for name, p in self.points.items():
            norm = p.normalizer
            t.add_row(
                name,
                p.computation / norm,
                p.communication_unicast / norm,
                p.communication_multicast / norm,
            )
        return t


def run_fig7(
    scales: dict[str, float] | None = None,
    seed: int = 0,
    use_sa: bool = False,
    sa_restarts: int = 1,
) -> Fig7Result:
    """Evaluate every dataset with and without multicast routing."""
    scales = scales or DEFAULT_SCALES
    accelerator = ReGraphX()
    points: dict[str, Fig7Point] = {}
    for name in dataset_names():
        wl = accelerator.build_workload(name, scale=scales[name], seed=seed)
        multicast = accelerator.evaluate(
            wl, multicast=True, use_sa=use_sa, seed=seed, sa_restarts=sa_restarts
        )
        unicast = accelerator.evaluate(
            wl, multicast=False, stage_map=multicast.stage_map
        )
        points[name] = Fig7Point(
            dataset=name,
            computation=multicast.worst_compute,
            communication_unicast=unicast.worst_communication,
            communication_multicast=multicast.worst_communication,
        )
    return Fig7Result(points=points)
