"""Fig. 12 (extension): the availability-vs-cost frontier under faults.

Not a paper figure — the paper evaluates a fault-free accelerator — but
the first question a deployed fleet faces: when instances crash, slow
down, and fail by zone, how much of the fault-free service level can
client-side reliability policy buy back, and what does provisioning the
rest cost?  The experiment holds one workload against one fault zoo and
compares four serving stances:

* ``fault-free`` — the same scenario with no faults injected: the
  ceiling every other stance is measured against.
* ``faults/no-retry`` — the fault zoo with no reliability machinery:
  requests on crashed instances fail, requests behind slowed instances
  straggle past the SLO.
* ``faults/retry`` — deterministic exponential-backoff retries
  (:mod:`repro.serve.retry`): failures are re-driven until they
  complete, recovering *availability* but not stragglers.
* ``faults/retry+hedge`` — retries plus hedged dispatch: a duplicate is
  sent to a second target after a fixed delay and the first copy wins,
  converting slow-instance stragglers into on-SLO completions at the
  price of duplicate work.

The score is **SLO attainment** — completed requests that also met the
SLO, as a fraction of offered load (``completed * (1 - violation_rate)
/ offered``) — and each stance's ``recovery`` is its attainment
relative to fault-free.  The headline: retries plus hedging recover at
least 90% of the fault-free attainment under the full fault zoo.

The frontier's other axis is capital: the same availability target can
be bought with spare capacity instead of (or alongside) retries.  The
experiment prices that with the N+k planner —
:func:`repro.serve.capacity.plan_fleet` with ``availability=1`` must
survive the worst single-instance outage — and reports the $-rate
premium over the fault-oblivious N+0 plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentTable

#: The fault zoo the reliability stances are measured under: per-instance
#: crashes roughly every half second of instance-time with fast repair,
#: 4x slowdowns lasting 200 ms, and correlated two-zone outages.
DEFAULT_FAULT_ZOO = (
    "mtbf=0.5,mttr=0.08,slow_mtbf=0.6,slow_factor=4.0,"
    "slow_duration=0.2,zones=2,zone_mtbf=3.0,zone_mttr=0.12"
)

#: Hedge delay: fire the duplicate once a request has waited well past
#: the fault-free p99 but early enough for the copy to finish in-SLO.
DEFAULT_HEDGE_SECONDS = 0.04

#: The recovery fraction the headline claims (tests assert it).
RECOVERY_TARGET = 0.9


@dataclass(frozen=True)
class Fig12Point:
    """One reliability stance under the common workload and fault zoo."""

    label: str
    faults: str
    retry: str
    hedge_ms: float
    attainment: float  # in-SLO completions / offered
    recovery: float  # attainment / fault-free attainment
    availability: float  # completed / (completed + failed)
    failed: int
    retries: int
    crashes: int
    hedges_fired: int
    hedges_cancelled: int
    p99_latency_seconds: float
    slo_violation_rate: float
    cost_dollars: float


@dataclass(frozen=True)
class Fig12Result:
    points: tuple[Fig12Point, ...]
    slo_seconds: float
    fault_zoo: str
    #: N+0 vs N+1 sizing: fleet string and $-rate of each plan (empty /
    #: zero when the planner found no feasible composition).
    plan_fleet_n0: str
    plan_cost_n0: float
    plan_fleet_n1: str
    plan_cost_n1: float

    def point(self, label: str) -> Fig12Point:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    @property
    def availability_premium(self) -> float:
        """Extra $-rate fraction the N+1 plan costs over N+0."""
        if self.plan_cost_n0 <= 0 or not self.plan_fleet_n1:
            return 0.0
        return self.plan_cost_n1 / self.plan_cost_n0 - 1.0

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=(
                f"Fig. 12 - availability vs cost under faults "
                f"(SLO {self.slo_seconds * 1e3:g} ms, zoo [{self.fault_zoo}])"
            ),
            columns=[
                "stance", "attain", "recovery", "avail%", "failed",
                "retries", "hedges", "p99 ms", "viol%", "$ billed",
            ],
        )
        for p in self.points:
            t.add_row(
                p.label,
                p.attainment,
                p.recovery,
                p.availability * 100.0,
                p.failed,
                p.retries,
                f"{p.hedges_fired}/{p.hedges_cancelled}",
                p.p99_latency_seconds * 1e3,
                p.slo_violation_rate * 100.0,
                p.cost_dollars,
            )
        return t


def run_fig12(
    seed: int = 0,
    qps: float = 100.0,
    duration_seconds: float = 2.0,
    slo_seconds: float = 0.1,
    fleet: str = "small:2,default:2",
    fault_zoo: str = DEFAULT_FAULT_ZOO,
    hedge_seconds: float = DEFAULT_HEDGE_SECONDS,
) -> Fig12Result:
    """Measure the reliability stances and price the N+1 alternative.

    The default regime (Poisson 100 qps on a small+default fleet at a
    100 ms SLO) runs the fleet at moderate utilization — the regime
    where hedging earns its keep.  Under saturation the same policies
    invert: duplicates and re-driven failures add load exactly when
    capacity is short (the classic retry storm), which the experiment
    would faithfully report as recovery *below* the no-retry stance.
    """
    from repro.serve.capacity import plan_fleet
    from repro.serve.scenario import (
        ServingScenario,
        run_serving_scenario,
        scenario_with,
    )

    base = ServingScenario(
        dataset="ppi",
        scale=0.05,
        arrival="poisson",
        qps=qps,
        duration_seconds=duration_seconds,
        num_tenants=2,
        max_batch=8,
        instances=4,
        fleet=fleet,
        routing="size_affinity",
        slo_seconds=slo_seconds,
        seed=seed,
    )
    stances = (
        ("fault-free", {}),
        ("faults/no-retry", {"faults": fault_zoo}),
        ("faults/retry", {"faults": fault_zoo, "retry": "backoff"}),
        (
            "faults/retry+hedge",
            {
                "faults": fault_zoo,
                "retry": "backoff",
                "hedge_seconds": hedge_seconds,
            },
        ),
    )
    records = {
        label: run_serving_scenario(scenario_with(base, **overrides))
        for label, overrides in stances
    }

    def attainment(label: str) -> float:
        r = records[label]
        if r.offered == 0:
            return 0.0
        return r.completed * (1.0 - r.slo_violation_rate) / r.offered

    ceiling = attainment("fault-free")
    points = []
    for label, overrides in stances:
        r = records[label]
        points.append(
            Fig12Point(
                label=label,
                faults=str(overrides.get("faults", "")),
                retry=str(overrides.get("retry", "none")),
                hedge_ms=float(overrides.get("hedge_seconds", 0.0)) * 1e3,
                attainment=attainment(label),
                recovery=attainment(label) / ceiling if ceiling > 0 else 0.0,
                availability=r.availability,
                failed=r.failed,
                retries=r.retries,
                crashes=r.crashes,
                hedges_fired=r.hedges_fired,
                hedges_cancelled=r.hedges_cancelled,
                p99_latency_seconds=r.p99_latency_seconds,
                slo_violation_rate=r.slo_violation_rate,
                cost_dollars=r.cost_dollars,
            )
        )

    # The capital alternative: how much does surviving the worst single
    # outage cost up front?  Both plans probe the fault-free workload;
    # the N+1 plan must also meet the SLO with any one instance removed.
    plans = {
        k: plan_fleet(
            base,
            candidate_types=("small", "default"),
            max_per_type=3,
            max_total=4,
            availability=k,
        )
        for k in (0, 1)
    }
    return Fig12Result(
        points=tuple(points),
        slo_seconds=slo_seconds,
        fault_zoo=fault_zoo,
        plan_fleet_n0=plans[0].fleet or "",
        plan_cost_n0=plans[0].cost_rate or 0.0,
        plan_fleet_n1=plans[1].fleet or "",
        plan_cost_n1=plans[1].cost_rate or 0.0,
    )
