"""Tables I and II: architecture parameters and dataset statistics."""

from __future__ import annotations

from repro.core.config import ReGraphXConfig
from repro.experiments.common import ExperimentTable
from repro.graph.datasets import DATASETS, load_dataset


def table1_parameters(config: ReGraphXConfig | None = None) -> ExperimentTable:
    """Echo the Table I architecture parameters of a configuration."""
    config = config or ReGraphXConfig()
    t = ExperimentTable(
        title="Table I - ReGraphX architecture parameters",
        columns=["parameter", "value"],
    )
    for key, value in config.summary().items():
        t.add_row(key, value)
    return t


def table2_datasets(
    check_scale: float | None = None, seed: int = 0
) -> ExperimentTable:
    """Table II dataset statistics (and optionally a generated-graph check).

    With ``check_scale`` set, a synthetic instance is generated at that
    scale and its measured node/edge counts are appended, demonstrating the
    generators hit their targets.
    """
    columns = ["dataset", "nodes", "edges", "NumPart", "beta", "NumInput"]
    if check_scale is not None:
        columns += [f"nodes@{check_scale:g}", f"edges@{check_scale:g}"]
    t = ExperimentTable(title="Table II - graph data statistics", columns=columns)
    for name, spec in DATASETS.items():
        row: list[object] = [
            name,
            spec.num_nodes,
            spec.num_edges,
            spec.num_partitions,
            spec.batch_size,
            spec.num_inputs,
        ]
        if check_scale is not None:
            graph = load_dataset(name, scale=check_scale, seed=seed, with_features=False)
            row += [graph.num_nodes, graph.num_edges]
        t.add_row(*row)
    return t
