"""Experiment drivers: one module per reported table/figure.

Every driver returns a plain result dataclass plus a ``table()`` renderer
producing the same rows/series the paper reports (figs 3-8) or the
serving extensions add (figs 9-10).  Scales default to laptop-friendly
sizes whose *per-input* statistics match the full Table II datasets (see
``Workload.full_scale_num_inputs``).  The name-to-callable registry that
the CLI and campaign engine consume lives in
:mod:`repro.experiments.runner`.
"""

from repro.experiments.common import DEFAULT_SCALES, ExperimentTable
from repro.experiments.fig3_zeros import Fig3Result, run_fig3
from repro.experiments.fig5_accuracy import Fig5Result, run_fig5
from repro.experiments.fig6_batch import Fig6Result, run_fig6
from repro.experiments.fig7_noc import Fig7Result, run_fig7
from repro.experiments.fig8_fullsystem import Fig8Result, run_fig8
from repro.experiments.fig9_serving import Fig9Result, run_fig9
from repro.experiments.fig10_autoscale import Fig10Result, run_fig10
from repro.experiments.tables import table1_parameters, table2_datasets

__all__ = [
    "DEFAULT_SCALES",
    "ExperimentTable",
    "run_fig3",
    "Fig3Result",
    "run_fig5",
    "Fig5Result",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
    "table1_parameters",
    "table2_datasets",
]
