"""Experiment drivers: one module per paper table/figure (see DESIGN.md).

Every driver returns a plain dataclass of results and offers a
``format_*`` helper that renders the same rows/series the paper reports.
Scales default to laptop-friendly sizes whose *per-input* statistics match
the full Table II datasets (see ``Workload.full_scale_num_inputs``).
"""

from repro.experiments.common import DEFAULT_SCALES, ExperimentTable
from repro.experiments.fig3_zeros import Fig3Result, run_fig3
from repro.experiments.fig5_accuracy import Fig5Result, run_fig5
from repro.experiments.fig6_batch import Fig6Result, run_fig6
from repro.experiments.fig7_noc import Fig7Result, run_fig7
from repro.experiments.fig8_fullsystem import Fig8Result, run_fig8
from repro.experiments.fig9_serving import Fig9Result, run_fig9
from repro.experiments.tables import table1_parameters, table2_datasets

__all__ = [
    "DEFAULT_SCALES",
    "ExperimentTable",
    "run_fig3",
    "Fig3Result",
    "run_fig5",
    "Fig5Result",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
    "table1_parameters",
    "table2_datasets",
]
