"""Shared experiment utilities: default scales and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

# Laptop-friendly generation scales whose per-input sub-graph statistics
# match the full Table II datasets (partitions scale with nodes, so the
# merged-batch size is scale-invariant).  Each keeps NumInput >= 4 so the
# representative batch is a genuine subset of the graph.
DEFAULT_SCALES: dict[str, float] = {
    "ppi": 0.1,
    "reddit": 0.02,
    "amazon2m": 0.004,
}


@dataclass
class ExperimentTable:
    """A fixed-width text table (what the benchmark harness prints)."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table with aligned columns."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3g}"
        return str(value)
