"""Fig. 11 (extension): heterogeneous fleet composition vs homogeneous.

Not a paper figure — the paper benchmarks one accelerator design at a
time — but the question its cost model begs once instances come in
sizes: given a latency SLO and an offered load, is the cheapest fleet
all one instance type, or a mix?  The experiment holds the workload and
the SLO fixed and compares four provisioning answers:

* ``hom-small`` / ``hom-default`` / ``hom-large`` — the binary-search
  capacity planner (:func:`repro.serve.capacity.plan_capacity`)
  restricted to a single instance type.  At a tight SLO the small and
  default types are *structurally* infeasible: their scaled service
  time on the largest graphs exceeds the SLO before queueing even
  starts, so no replica count saves them.
* ``het-planned`` — the composition planner
  (:func:`repro.serve.capacity.plan_fleet`) searching mixed fleets in
  ascending declared-cost order under size-affinity routing, which
  steers the big graphs to the fast instances and lets cheap small
  instances soak up the rest.

The headline number is ``savings``: the fraction of the best feasible
homogeneous fleet's $-rate the planned heterogeneous composition
avoids while meeting the same violation budget.  Because
:func:`plan_fleet` enumerates in cost order, the winner is exactly the
brute-force optimum over the searched composition space — the figure
is a statement about fleets, not about a heuristic search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentTable

#: Violation budget shared by both planners and the SLO verdict.
DEFAULT_MAX_VIOLATION_RATE = 0.01

#: Instance types each homogeneous plan is restricted to.
HOMOGENEOUS_TYPES = ("small", "default", "large")


@dataclass(frozen=True)
class Fig11Point:
    """One provisioning answer under the common workload.

    ``cost_rate`` is the declared $-rate of the fleet; ``cost_dollars``
    is what the fleet actually billed over the serving window (the
    rate integrated over the run, so the two agree up to makespan).
    Infeasible plans carry an empty ``fleet`` and zero costs.
    """

    label: str
    fleet: str
    routing: str
    feasible: bool
    cost_rate: float
    cost_dollars: float
    p99_latency_seconds: float
    slo_violation_rate: float
    completed: int
    probes: int


@dataclass(frozen=True)
class Fig11Result:
    points: tuple[Fig11Point, ...]
    slo_seconds: float
    max_violation_rate: float
    compositions_skipped: int  # early-stop savings inside plan_fleet

    def point(self, label: str) -> Fig11Point:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    @property
    def best_homogeneous(self) -> Fig11Point | None:
        """The cheapest feasible single-type plan, if any."""
        feasible = [
            p
            for p in self.points
            if p.label != "het-planned" and p.feasible
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.cost_rate)

    @property
    def savings(self) -> float:
        """$-rate fraction the het plan saves vs the best homogeneous."""
        best = self.best_homogeneous
        het = self.point("het-planned")
        if best is None or not het.feasible or best.cost_rate <= 0:
            return 0.0
        return 1.0 - het.cost_rate / best.cost_rate

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=(
                f"Fig. 11 - fleet composition vs homogeneous "
                f"(SLO {self.slo_seconds * 1e3:g} ms, violations <= "
                f"{self.max_violation_rate:.0%})"
            ),
            columns=[
                "plan", "fleet", "routing", "$/s", "$ billed", "p99 ms",
                "viol%", "probes", "SLO",
            ],
        )
        for p in self.points:
            t.add_row(
                p.label,
                p.fleet or "infeasible",
                p.routing,
                p.cost_rate,
                p.cost_dollars,
                p.p99_latency_seconds * 1e3,
                p.slo_violation_rate * 100.0,
                p.probes,
                "met" if p.feasible else "MISS",
            )
        return t


def run_fig11(
    seed: int = 0,
    qps: float = 350.0,
    duration_seconds: float = 1.0,
    slo_seconds: float = 0.03,
    max_violation_rate: float = DEFAULT_MAX_VIOLATION_RATE,
    max_per_type: int = 4,
    routing: str = "size_affinity",
) -> Fig11Result:
    """Plan homogeneous and heterogeneous fleets for one workload.

    The default regime (Poisson 350 qps against a 30 ms p99 SLO on the
    ppi workload) is chosen so the composition question has teeth: the
    small and default types cannot meet the SLO at any count, a pure
    large fleet can but overshoots on capacity, and a small+large mix
    under size-affinity routing meets it strictly cheaper.
    """
    from repro.serve.capacity import plan_capacity, plan_fleet
    from repro.serve.fleet import FleetSpec
    from repro.serve.scenario import ServingScenario

    base = ServingScenario(
        dataset="ppi",
        scale=0.05,
        arrival="poisson",
        qps=qps,
        duration_seconds=duration_seconds,
        num_tenants=2,
        max_batch=8,
        instances=1,
        slo_seconds=slo_seconds,
        seed=seed,
    )

    points = []
    # Cap each homogeneous search a bit above the planner's likely
    # answer; an infeasible type is detected in a single probe.
    hom_ceiling = max(2 * max_per_type, 6)
    for name in HOMOGENEOUS_TYPES:
        plan = plan_capacity(
            base,
            max_instances=hom_ceiling,
            max_violation_rate=max_violation_rate,
            instance_type=name,
        )
        if plan.feasible:
            record = plan.record
            fleet = FleetSpec.homogeneous(name, plan.instances).render()
            points.append(
                Fig11Point(
                    label=f"hom-{name}",
                    fleet=fleet,
                    routing="shared_queue",
                    feasible=True,
                    cost_rate=FleetSpec.parse(fleet).cost_rate(),
                    cost_dollars=record.cost_dollars,
                    p99_latency_seconds=record.p99_latency_seconds,
                    slo_violation_rate=record.slo_violation_rate,
                    completed=record.completed,
                    probes=len(plan.evaluated),
                )
            )
        else:
            points.append(
                Fig11Point(
                    label=f"hom-{name}",
                    fleet="",
                    routing="shared_queue",
                    feasible=False,
                    cost_rate=0.0,
                    cost_dollars=0.0,
                    p99_latency_seconds=0.0,
                    slo_violation_rate=1.0,
                    completed=0,
                    probes=len(plan.evaluated),
                )
            )

    fleet_plan = plan_fleet(
        base,
        candidate_types=HOMOGENEOUS_TYPES,
        max_per_type=max_per_type,
        max_violation_rate=max_violation_rate,
        routing=routing,
    )
    if fleet_plan.feasible:
        record = fleet_plan.record
        points.append(
            Fig11Point(
                label="het-planned",
                fleet=fleet_plan.fleet,
                routing=routing,
                feasible=True,
                cost_rate=fleet_plan.cost_rate,
                cost_dollars=record.cost_dollars,
                p99_latency_seconds=record.p99_latency_seconds,
                slo_violation_rate=record.slo_violation_rate,
                completed=record.completed,
                probes=len(fleet_plan.evaluated),
            )
        )
    else:
        points.append(
            Fig11Point(
                label="het-planned",
                fleet="",
                routing=routing,
                feasible=False,
                cost_rate=0.0,
                cost_dollars=0.0,
                p99_latency_seconds=0.0,
                slo_violation_rate=1.0,
                completed=0,
                probes=len(fleet_plan.evaluated),
            )
        )
    return Fig11Result(
        points=tuple(points),
        slo_seconds=slo_seconds,
        max_violation_rate=max_violation_rate,
        compositions_skipped=fleet_plan.skipped,
    )
