"""Fig. 3: zeros stored by 8x8 vs 128x128 crossbars, per dataset.

The paper normalizes to the 8x8 count (so the 8x8 bar is 1.0) and reports
that 128x128 crossbars store up to ~7X more zeros.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heterogeneity import ZeroStorageResult, zero_storage_study
from repro.experiments.common import DEFAULT_SCALES, ExperimentTable
from repro.graph.datasets import dataset_names, load_dataset


@dataclass(frozen=True)
class Fig3Result:
    """Zero-storage ratios for every dataset."""

    results: dict[str, ZeroStorageResult]

    def ratio(self, dataset: str) -> float:
        return self.results[dataset].ratio

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title="Fig. 3 - zeros stored, normalized to 8x8 crossbars",
            columns=["dataset", "zeros 8x8 (norm)", "zeros 128x128 (norm)"],
        )
        for name, res in self.results.items():
            t.add_row(name, 1.0, res.ratio)
        return t


def run_fig3(
    scales: dict[str, float] | None = None,
    seed: int = 0,
    small_block: int = 8,
    large_block: int = 128,
) -> Fig3Result:
    """Tile every dataset's adjacency at both crossbar sizes.

    Args:
        scales: per-dataset generation scale (defaults to DEFAULT_SCALES).
        seed: generation seed.
        small_block / large_block: the two crossbar geometries compared.
    """
    scales = scales or DEFAULT_SCALES
    results: dict[str, ZeroStorageResult] = {}
    for name in dataset_names():
        graph = load_dataset(
            name, scale=scales.get(name, 0.02), seed=seed, with_features=False
        )
        results[name] = zero_storage_study(graph, small_block, large_block)
    return Fig3Result(results=results)
