"""Fig. 8: full-system speedup, energy savings, and EDP vs. the V100 GPU.

Paper headline: ReGraphX is up to 3.5X faster (3X on average), up to 11X
more energy efficient, and improves EDP by 34X on average (up to 40X).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel
from repro.core.accelerator import ReGraphX
from repro.core.evaluation import FullSystemComparison, compare_with_gpu
from repro.experiments.common import DEFAULT_SCALES, ExperimentTable
from repro.graph.datasets import dataset_names


@dataclass(frozen=True)
class Fig8Result:
    comparisons: dict[str, FullSystemComparison]

    @property
    def mean_speedup(self) -> float:
        vals = [c.speedup for c in self.comparisons.values()]
        return sum(vals) / len(vals)

    @property
    def max_speedup(self) -> float:
        return max(c.speedup for c in self.comparisons.values())

    @property
    def mean_energy_ratio(self) -> float:
        vals = [c.energy_ratio for c in self.comparisons.values()]
        return sum(vals) / len(vals)

    @property
    def max_energy_ratio(self) -> float:
        return max(c.energy_ratio for c in self.comparisons.values())

    @property
    def mean_edp_improvement(self) -> float:
        vals = [c.edp_improvement for c in self.comparisons.values()]
        return sum(vals) / len(vals)

    @property
    def max_edp_improvement(self) -> float:
        return max(c.edp_improvement for c in self.comparisons.values())

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title="Fig. 8 - ReGraphX vs GPU (normalized to GPU = 1)",
            columns=["dataset", "speedup", "energy savings", "EDP improvement"],
        )
        for name, c in self.comparisons.items():
            t.add_row(name, c.speedup, c.energy_ratio, c.edp_improvement)
        return t


def run_fig8(
    scales: dict[str, float] | None = None,
    seed: int = 0,
    use_sa: bool = False,
    sa_restarts: int = 1,
    gpu: GPUModel | None = None,
) -> Fig8Result:
    """Full-system comparison on every dataset."""
    scales = scales or DEFAULT_SCALES
    accelerator = ReGraphX()
    gpu = gpu or GPUModel()
    comparisons: dict[str, FullSystemComparison] = {}
    for name in dataset_names():
        wl = accelerator.build_workload(name, scale=scales[name], seed=seed)
        report = accelerator.evaluate(
            wl, multicast=True, use_sa=use_sa, seed=seed, sa_restarts=sa_restarts
        )
        comparisons[name] = compare_with_gpu(report, gpu)
    return Fig8Result(comparisons=comparisons)
