"""Fig. 10 (extension): autoscaling vs static peak provisioning.

Not a paper figure — the paper evaluates one-shot training runs — but the
experiment the serving layer's closed loop exists for: under bursty MMPP
traffic, a static fleet must be provisioned for the burst and then idles
through every quiet phase, while an autoscaler rides the load up and
down.  The comparison holds the workload and the latency SLO fixed and
asks what each strategy *pays* in instance-seconds (billed capacity
integrated over the serving window):

* ``static-peak`` — the smallest static fleet meeting the SLO, found by
  the binary-search capacity planner.  This is the honest open-loop
  baseline: anything smaller misses the SLO somewhere in the burst.
* ``static-min`` — the autoscaler's floor run statically, showing what
  under-provisioning does to the tail.
* ``autoscale-util`` / ``autoscale-pid`` — the two closed-loop policies,
  free to move between the static-min floor and the planned peak.  The
  ceiling is deliberately the static-peak fleet: the autoscaler never
  provisions more than the static operator would, so every saved
  instance-second comes from scaling in through the quiet phases.

The headline number is ``savings``: the fraction of the static-peak
instance-seconds the target-utilization autoscaler avoids while still
meeting the same violation budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentTable

#: Violation budget shared by the capacity plan and the SLO verdict.
DEFAULT_MAX_VIOLATION_RATE = 0.01


@dataclass(frozen=True)
class Fig10Point:
    """One provisioning strategy under the common bursty workload.

    ``peak_burn_rate`` (worst burn window, :mod:`repro.obs.slo`) and
    ``scale_events`` put the SLO verdict in context: a strategy can pass
    on the run average while burning its whole budget inside one burst.
    """

    label: str
    instances: int  # initial fleet (== the whole fleet when static)
    peak_instances: int
    instance_seconds: float
    p99_latency_seconds: float
    slo_violation_rate: float
    completed: int
    meets_slo: bool
    peak_burn_rate: float = 0.0
    scale_events: int = 0


@dataclass(frozen=True)
class Fig10Result:
    points: tuple[Fig10Point, ...]
    planned_peak: int
    slo_seconds: float
    max_violation_rate: float

    def point(self, label: str) -> Fig10Point:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    @property
    def savings(self) -> float:
        """Instance-seconds the util autoscaler saves vs static peak."""
        static = self.point("static-peak").instance_seconds
        auto = self.point("autoscale-util").instance_seconds
        return 1.0 - auto / static if static > 0 else 0.0

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=(
                f"Fig. 10 - autoscaling vs static provisioning "
                f"(bursty MMPP, SLO {self.slo_seconds * 1e3:g} ms, "
                f"planned peak {self.planned_peak})"
            ),
            columns=[
                "strategy", "fleet", "peak", "inst-s", "p99 ms", "viol%",
                "burn x", "steps", "SLO",
            ],
        )
        for p in self.points:
            t.add_row(
                p.label,
                p.instances,
                p.peak_instances,
                p.instance_seconds,
                p.p99_latency_seconds * 1e3,
                p.slo_violation_rate * 100.0,
                p.peak_burn_rate,
                p.scale_events,
                "met" if p.meets_slo else "MISS",
            )
        return t


def run_fig10(
    seed: int = 0,
    qps: float = 150.0,
    duration_seconds: float = 2.0,
    slo_seconds: float = 0.05,
    max_violation_rate: float = DEFAULT_MAX_VIOLATION_RATE,
    plan_ceiling: int = 16,
) -> Fig10Result:
    """Compare provisioning strategies on one bursty MMPP workload.

    ``plan_ceiling`` bounds only the capacity planner's binary search.
    The autoscalers' clamp band is *derived* from the plan rather than
    hardcoded: floor at the scenario minimum, ceiling at the planner's
    peak.  Deriving the ceiling keeps the comparison honest — the
    autoscaler can never provision more than the static operator would
    buy, so every saved instance-second is attributable to scaling in
    through the quiet phases, not to a hand-tuned clamp that happens to
    differ from the static baseline.
    """
    from repro.serve.capacity import plan_capacity
    from repro.serve.scenario import (
        ServingScenario,
        run_serving_scenario,
        scenario_with,
    )

    base = ServingScenario(
        dataset="ppi",
        scale=0.05,
        arrival="mmpp",
        qps=qps,
        duration_seconds=duration_seconds,
        num_tenants=2,
        max_batch=8,
        instances=1,
        slo_seconds=slo_seconds,
        min_instances=1,
        max_instances=plan_ceiling,
        seed=seed,
    )
    plan = plan_capacity(
        base, max_instances=plan_ceiling, max_violation_rate=max_violation_rate
    )
    # Even an infeasible plan has a best-effort ceiling to compare against.
    peak = plan.instances if plan.feasible else plan_ceiling

    def measure(label: str, scenario) -> Fig10Point:
        record = run_serving_scenario(scenario)
        return Fig10Point(
            label=label,
            instances=scenario.instances,
            peak_instances=record.peak_instances,
            instance_seconds=record.instance_seconds,
            p99_latency_seconds=record.p99_latency_seconds,
            slo_violation_rate=record.slo_violation_rate,
            completed=record.completed,
            meets_slo=record.slo_violation_rate <= max_violation_rate,
            peak_burn_rate=record.peak_burn_rate,
            scale_events=record.scale_events,
        )

    points = (
        measure("static-peak", scenario_with(base, instances=peak)),
        measure("static-min", scenario_with(base, instances=base.min_instances)),
        measure(
            "autoscale-util",
            scenario_with(
                base,
                instances=base.min_instances,
                autoscaler="target-util",
                autoscale_target=0.7,
                max_instances=peak,
            ),
        ),
        measure(
            "autoscale-pid",
            scenario_with(
                base,
                instances=base.min_instances,
                autoscaler="queue-pid",
                autoscale_target=1.0,
                max_instances=peak,
            ),
        ),
    )
    return Fig10Result(
        points=points,
        planned_peak=peak,
        slo_seconds=slo_seconds,
        max_violation_rate=max_violation_rate,
    )
