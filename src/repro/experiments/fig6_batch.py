"""Fig. 6: training time and E-PE demand vs. batch size (Reddit).

Both series are normalized to beta = 1.  Larger beta means fewer, larger
inputs: training time falls with diminishing returns (the paper notes the
knee around beta = 10) while E-PE demand rises steadily because larger
merged sub-graphs occupy more adjacency blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import ReGraphX
from repro.experiments.common import DEFAULT_SCALES, ExperimentTable


@dataclass(frozen=True)
class Fig6Point:
    """One batch-size setting."""

    batch_size: int
    num_inputs: int
    epoch_seconds: float
    epe_tiles: int
    nnz_blocks: int


@dataclass(frozen=True)
class Fig6Result:
    """The beta sweep, plus beta=1 normalization helpers."""

    dataset: str
    points: list[Fig6Point]

    def normalized_training_time(self) -> list[float]:
        base = self.points[0].epoch_seconds
        return [p.epoch_seconds / base for p in self.points]

    def normalized_epe_demand(self) -> list[float]:
        base = self.points[0].epe_tiles
        return [p.epe_tiles / base for p in self.points]

    def table(self) -> ExperimentTable:
        t = ExperimentTable(
            title=f"Fig. 6 - batch size trade-off ({self.dataset}, normalized to beta=1)",
            columns=["beta", "NumInput", "training time (norm)", "E-PEs (norm)"],
        )
        times = self.normalized_training_time()
        epes = self.normalized_epe_demand()
        for p, tt, ee in zip(self.points, times, epes):
            t.add_row(p.batch_size, p.num_inputs, tt, ee)
        return t


def run_fig6(
    dataset: str = "reddit",
    scale: float | None = None,
    betas: tuple[int, ...] = (1, 5, 10, 20),
    seed: int = 0,
) -> Fig6Result:
    """Sweep beta and evaluate epoch time + E-PE demand on ReGraphX.

    The graph and partition are built once (at the paper's NumPart,
    scaled); each beta re-batches the same partition, evaluates the full
    architecture model, and records epoch time and adjacency-tile demand.
    """
    if sorted(betas) != list(betas):
        raise ValueError("betas must be given in increasing order")
    scale = scale if scale is not None else DEFAULT_SCALES[dataset]
    accelerator = ReGraphX()
    base = accelerator.build_workload(dataset, scale=scale, seed=seed)
    points: list[Fig6Point] = []
    for beta in betas:
        wl = accelerator.build_workload(
            dataset,
            scale=scale,
            seed=seed,
            batch_size=beta,
            graph=base.graph,
            partition=base.partition,
        )
        report = accelerator.evaluate(wl, multicast=True, use_sa=False)
        points.append(
            Fig6Point(
                batch_size=beta,
                num_inputs=wl.full_scale_num_inputs,
                epoch_seconds=report.epoch_seconds,
                epe_tiles=wl.block_mapping.tiles_needed(
                    accelerator.config.e_tile
                ),
                nnz_blocks=wl.block_mapping.nnz_blocks,
            )
        )
    return Fig6Result(dataset=dataset, points=points)
