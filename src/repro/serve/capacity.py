"""Capacity planning: the smallest fleet that meets the SLO at a load.

The knob is the replica count; the criterion is the SLO-violation rate
(fraction of requests slower than the scenario's ``slo_seconds``) staying
at or under ``max_violation_rate``.  Violation rate is monotonically
non-increasing in the instance count for a fixed open-loop workload —
extra replicas only ever drain the queue sooner — which is what makes
binary search correct here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.store import ResultStore
from repro.serve.scenario import (
    ServingRecord,
    ServingScenario,
    run_serving_scenario,
    scenario_with,
)
from repro.serve.service import ServiceModel


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of one capacity search."""

    scenario: ServingScenario
    max_violation_rate: float
    instances: int | None  # None: even max_instances misses the SLO
    evaluated: dict[int, ServingRecord]

    @property
    def feasible(self) -> bool:
        """Whether any searched fleet size met the SLO."""
        return self.instances is not None

    @property
    def record(self) -> ServingRecord | None:
        """The serving record at the planned fleet size."""
        if self.instances is None:
            return None
        return self.evaluated[self.instances]

    def render(self) -> str:
        """Human-readable probe table with the minimum marked."""
        lines = [
            f"capacity plan for {self.scenario.display_label} "
            f"(SLO {self.scenario.slo_seconds * 1e3:.1f} ms, "
            f"violations <= {self.max_violation_rate:.1%}):"
        ]
        for n in sorted(self.evaluated):
            r = self.evaluated[n]
            marker = " <-- minimum" if n == self.instances else ""
            lines.append(
                f"  {n:>3} instance(s): p99 "
                f"{r.p99_latency_seconds * 1e3:8.2f} ms, violations "
                f"{r.slo_violation_rate:7.2%}{marker}"
            )
        if self.instances is None:
            lines.append("  infeasible within the searched fleet sizes")
        return "\n".join(lines)


def meets_slo(record: ServingRecord, max_violation_rate: float) -> bool:
    """The capacity criterion: violation rate within budget."""
    return record.slo_violation_rate <= max_violation_rate


def plan_capacity(
    scenario: ServingScenario,
    max_instances: int = 32,
    max_violation_rate: float = 0.01,
    service: ServiceModel | None = None,
    store: ResultStore | None = None,
) -> CapacityPlan:
    """Binary-search the minimum instance count meeting the SLO.

    Evaluates the scenario at each probed fleet size (the scenario's own
    ``instances`` field is overridden).  Returns a plan whose
    ``instances`` is the smallest count with
    ``slo_violation_rate <= max_violation_rate``, or ``None`` when even
    ``max_instances`` misses it.

    The probes always run open-loop with a static fleet: a scenario's
    autoscaler would resize every probe to whatever the load needs
    (making all fleet sizes look identical), and admission control would
    hide violations by shedding the very requests that miss the SLO — so
    both are stripped before probing.  The plan is the *static* answer
    the closed-loop controllers are compared against.
    """
    if max_instances < 1:
        raise ValueError(f"max_instances must be >= 1, got {max_instances}")
    if not 0 <= max_violation_rate <= 1:
        raise ValueError("max_violation_rate must be in [0, 1]")

    evaluated: dict[int, ServingRecord] = {}

    def probe(n: int) -> ServingRecord:
        record = evaluated.get(n)
        if record is None:
            record = run_serving_scenario(
                scenario_with(
                    scenario, instances=n, autoscaler="none", admission="none"
                ),
                service=service,
                store=store,
            )
            evaluated[n] = record
        return record

    if not meets_slo(probe(max_instances), max_violation_rate):
        return CapacityPlan(
            scenario=scenario,
            max_violation_rate=max_violation_rate,
            instances=None,
            evaluated=evaluated,
        )
    lo, hi = 1, max_instances
    while lo < hi:
        mid = (lo + hi) // 2
        if meets_slo(probe(mid), max_violation_rate):
            hi = mid
        else:
            lo = mid + 1
    probe(lo)
    return CapacityPlan(
        scenario=scenario,
        max_violation_rate=max_violation_rate,
        instances=lo,
        evaluated=evaluated,
    )
