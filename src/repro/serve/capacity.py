"""Capacity planning: the cheapest fleet that meets the SLO at a load.

Two planners share the criterion — the SLO-violation rate (fraction of
requests slower than the scenario's ``slo_seconds``) staying at or under
``max_violation_rate``:

* :func:`plan_capacity` — the single-type special case.  The knob is one
  replica count; violation rate is monotonically non-increasing in it for
  a fixed open-loop workload (extra replicas only ever drain the queue
  sooner), which is what makes binary search correct here.
* :func:`plan_fleet` — the heterogeneous generalization.  The knob is a
  whole *composition* (how many of each instance type) and the objective
  is the declared $-cost rate, not the instance count.  Cost is known
  before probing, so the planner enumerates compositions in ascending
  cost order and the **first** feasible one is the exact optimum — the
  same answer brute-force enumeration gives, usually at a fraction of the
  probes.  No dominance pruning across compositions: with routing in the
  loop the violation rate is *not* monotone in any single type's count
  (adding a cheap instance can shift the routing split and hurt the
  tail), so every composition must speak for itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.campaign.store import ResultStore
from repro.serve.fleet import FleetSpec, get_instance_type
from repro.serve.routing import ROUTING_POLICIES
from repro.serve.scenario import (
    ServingRecord,
    ServingScenario,
    run_serving_scenario,
    scenario_with,
)
from repro.serve.service import ServiceModel


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of one capacity search."""

    scenario: ServingScenario
    max_violation_rate: float
    instances: int | None  # None: even max_instances misses the SLO
    evaluated: dict[int, ServingRecord]

    @property
    def feasible(self) -> bool:
        """Whether any searched fleet size met the SLO."""
        return self.instances is not None

    @property
    def record(self) -> ServingRecord | None:
        """The serving record at the planned fleet size."""
        if self.instances is None:
            return None
        return self.evaluated[self.instances]

    def render(self) -> str:
        """Human-readable probe table with the minimum marked."""
        lines = [
            f"capacity plan for {self.scenario.display_label} "
            f"(SLO {self.scenario.slo_seconds * 1e3:.1f} ms, "
            f"violations <= {self.max_violation_rate:.1%}):"
        ]
        for n in sorted(self.evaluated):
            r = self.evaluated[n]
            marker = " <-- minimum" if n == self.instances else ""
            lines.append(
                f"  {n:>3} instance(s): p99 "
                f"{r.p99_latency_seconds * 1e3:8.2f} ms, violations "
                f"{r.slo_violation_rate:7.2%}{marker}"
            )
        if self.instances is None:
            lines.append("  infeasible within the searched fleet sizes")
        return "\n".join(lines)


def meets_slo(record: ServingRecord, max_violation_rate: float) -> bool:
    """The capacity criterion: violation rate within budget."""
    return record.slo_violation_rate <= max_violation_rate


def plan_capacity(
    scenario: ServingScenario,
    max_instances: int = 32,
    max_violation_rate: float = 0.01,
    service: ServiceModel | None = None,
    store: ResultStore | None = None,
    instance_type: str = "default",
) -> CapacityPlan:
    """Binary-search the minimum instance count meeting the SLO.

    Evaluates the scenario at each probed fleet size (the scenario's own
    ``instances``/``fleet`` fields are overridden; ``instance_type``
    picks which single type the fleet is built from).  Returns a plan
    whose ``instances`` is the smallest count with
    ``slo_violation_rate <= max_violation_rate``, or ``None`` when even
    ``max_instances`` misses it.

    The probes always run open-loop with a static fleet: a scenario's
    autoscaler would resize every probe to whatever the load needs
    (making all fleet sizes look identical), and admission control would
    hide violations by shedding the very requests that miss the SLO — so
    both are stripped before probing, along with fault injection and
    retries/hedging (availability-aware sizing reasons about *surviving*
    capacity explicitly; see :func:`plan_fleet`'s ``availability``).
    The plan is the *static* answer the closed-loop controllers are
    compared against.
    """
    if max_instances < 1:
        raise ValueError(f"max_instances must be >= 1, got {max_instances}")
    if not 0 <= max_violation_rate <= 1:
        raise ValueError("max_violation_rate must be in [0, 1]")
    get_instance_type(instance_type)  # fail fast on unknown names

    evaluated: dict[int, ServingRecord] = {}

    def probe(n: int) -> ServingRecord:
        record = evaluated.get(n)
        if record is None:
            record = run_serving_scenario(
                scenario_with(
                    scenario,
                    instances=n,
                    fleet=(
                        "" if instance_type == "default"
                        else f"{instance_type}:{n}"
                    ),
                    autoscaler="none",
                    admission="none",
                    faults="",
                    retry="none",
                    hedge_seconds=0.0,
                ),
                service=service,
                store=store,
            )
            evaluated[n] = record
        return record

    if not meets_slo(probe(max_instances), max_violation_rate):
        return CapacityPlan(
            scenario=scenario,
            max_violation_rate=max_violation_rate,
            instances=None,
            evaluated=evaluated,
        )
    lo, hi = 1, max_instances
    while lo < hi:
        mid = (lo + hi) // 2
        if meets_slo(probe(mid), max_violation_rate):
            hi = mid
        else:
            lo = mid + 1
    probe(lo)
    return CapacityPlan(
        scenario=scenario,
        max_violation_rate=max_violation_rate,
        instances=lo,
        evaluated=evaluated,
    )


@dataclass(frozen=True)
class FleetPlan:
    """Outcome of one fleet-composition search."""

    scenario: ServingScenario
    max_violation_rate: float
    routing: str
    fleet: str | None  # None: no searched composition meets the SLO
    cost_rate: float | None  # $/s of the winning composition
    evaluated: dict[str, ServingRecord]  # keyed by canonical fleet string
    skipped: int  # compositions never probed thanks to the early stop

    @property
    def feasible(self) -> bool:
        """Whether any searched composition met the SLO."""
        return self.fleet is not None

    @property
    def record(self) -> ServingRecord | None:
        """The serving record at the planned composition."""
        if self.fleet is None:
            return None
        return self.evaluated[self.fleet]

    def render(self) -> str:
        """Human-readable probe table, cheapest first, minimum marked."""
        lines = [
            f"fleet plan for {self.scenario.display_label} "
            f"[{self.routing}] (SLO {self.scenario.slo_seconds * 1e3:.1f} ms, "
            f"violations <= {self.max_violation_rate:.1%}):"
        ]
        by_cost = sorted(
            self.evaluated.items(),
            key=lambda item: (FleetSpec.parse(item[0]).cost_rate(), item[0]),
        )
        for fleet, r in by_cost:
            marker = " <-- minimum" if fleet == self.fleet else ""
            lines.append(
                f"  {fleet:<24} ${FleetSpec.parse(fleet).cost_rate():6.2f}/s: "
                f"p99 {r.p99_latency_seconds * 1e3:8.2f} ms, violations "
                f"{r.slo_violation_rate:7.2%}{marker}"
            )
        if self.fleet is None:
            lines.append("  infeasible within the searched compositions")
        elif self.skipped:
            lines.append(
                f"  ({self.skipped} costlier composition(s) skipped: the "
                f"cheapest feasible fleet was already found)"
            )
        return "\n".join(lines)


def enumerate_fleets(
    candidate_types: tuple[str, ...],
    max_per_type: int,
    max_total: int | None = None,
) -> list[FleetSpec]:
    """Every composition over the candidates, cheapest declared cost first.

    Counts run 0..``max_per_type`` per type, but zero-count slices are
    dropped rather than declared: a declared-but-empty type would still
    attract routed requests (e.g. size-affinity steering large graphs to
    an empty fast queue) and starve them forever.  Order is ascending
    ``(cost_rate, counts)`` — deterministic, and the reason the planner's
    first feasible hit is the global optimum.
    """
    specs = []
    for counts in product(range(max_per_type + 1), repeat=len(candidate_types)):
        total = sum(counts)
        if total < 1 or (max_total is not None and total > max_total):
            continue
        specs.append(
            FleetSpec(
                slices=tuple(
                    (name, count)
                    for name, count in zip(candidate_types, counts)
                    if count > 0
                )
            )
        )
    specs.sort(
        key=lambda spec: (
            spec.cost_rate(),
            tuple(spec.counts().get(name, 0) for name in candidate_types),
        )
    )
    return specs


def survivable_fleets(spec: FleetSpec, failures: int) -> list[FleetSpec]:
    """Every composition reachable from ``spec`` by removing exactly
    ``failures`` instances (the N+k worst cases an availability-aware
    plan must survive), deduplicated, deterministic order.

    Requires ``spec.total() > failures`` — a fleet that a ``failures``-
    instance outage can wipe out entirely has no survivable reductions.
    """
    if failures < 1:
        raise ValueError(f"failures must be >= 1, got {failures}")
    if spec.total() <= failures:
        raise ValueError(
            f"a {spec.total()}-instance fleet cannot survive "
            f"{failures} failure(s)"
        )
    names = [name for name, _ in spec.slices]
    counts = [count for _, count in spec.slices]
    seen: dict[str, FleetSpec] = {}
    for removal in product(*(range(min(c, failures) + 1) for c in counts)):
        if sum(removal) != failures:
            continue
        reduced = FleetSpec(
            slices=tuple(
                (name, count - r)
                for name, count, r in zip(names, counts, removal)
                if count - r > 0
            )
        )
        seen.setdefault(reduced.render(), reduced)
    return [seen[key] for key in sorted(seen)]


def plan_fleet(
    scenario: ServingScenario,
    candidate_types: tuple[str, ...] = ("small", "default", "large"),
    max_per_type: int = 4,
    max_total: int | None = None,
    max_violation_rate: float = 0.01,
    routing: str = "size_affinity",
    service: ServiceModel | None = None,
    store: ResultStore | None = None,
    availability: int = 0,
) -> FleetPlan:
    """Find the cheapest fleet composition meeting the SLO.

    Enumerates every composition of ``candidate_types`` (each type
    0..``max_per_type`` instances, at least one instance overall,
    optionally capped at ``max_total``) in ascending declared-cost order
    and probes each against the scenario's workload under ``routing``
    until one meets the violation budget.  Because cost is a pure
    function of the composition, the first feasible probe *is* the
    brute-force minimum; the remaining costlier compositions are never
    simulated (``skipped`` counts them).

    ``availability=k`` asks for N+k sizing: a composition is feasible
    only if the full fleet meets the SLO *and* every way of losing ``k``
    instances (the worst case of ``k`` simultaneous crashes, before any
    recovery) still meets it.  Feasibility stays a property of each
    composition alone, so ascending-cost first-feasible still equals the
    brute-force minimum; reduction probes are shared across compositions
    through the ``evaluated`` table.  The cost difference against the
    ``availability=0`` plan is the $-price of the availability guarantee.

    Probes run open-loop with a static, fault-free fleet for the same
    reason :func:`plan_capacity`'s do — the plan is the static answer,
    and N+k reductions model the outage explicitly.
    """
    if not candidate_types:
        raise ValueError("need at least one candidate type")
    for name in candidate_types:
        get_instance_type(name)
    if len(set(candidate_types)) != len(candidate_types):
        raise ValueError("candidate types must be distinct")
    if max_per_type < 1:
        raise ValueError(f"max_per_type must be >= 1, got {max_per_type}")
    if max_total is not None and max_total < 1:
        raise ValueError(f"max_total must be >= 1, got {max_total}")
    if not 0 <= max_violation_rate <= 1:
        raise ValueError("max_violation_rate must be in [0, 1]")
    if routing not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {routing!r}; "
            f"choose from {sorted(ROUTING_POLICIES)}"
        )
    if availability < 0:
        raise ValueError(f"availability must be >= 0, got {availability}")

    specs = enumerate_fleets(candidate_types, max_per_type, max_total)
    evaluated: dict[str, ServingRecord] = {}

    def probe(fleet: str) -> ServingRecord:
        record = evaluated.get(fleet)
        if record is None:
            record = run_serving_scenario(
                scenario_with(
                    scenario,
                    fleet=fleet,
                    routing=routing,
                    autoscaler="none",
                    admission="none",
                    faults="",
                    retry="none",
                    hedge_seconds=0.0,
                ),
                service=service,
                store=store,
            )
            evaluated[fleet] = record
        return record

    winner: str | None = None
    cost_rate: float | None = None
    skipped = 0
    for i, spec in enumerate(specs):
        if availability > 0 and spec.total() <= availability:
            continue  # an availability-sized outage wipes this fleet out
        feasible = meets_slo(probe(spec.render()), max_violation_rate)
        if feasible and availability > 0:
            for reduced in survivable_fleets(spec, availability):
                if not meets_slo(
                    probe(reduced.render()), max_violation_rate
                ):
                    feasible = False
                    break
        if feasible:
            winner = spec.render()
            cost_rate = spec.cost_rate()
            skipped = len(specs) - i - 1
            break
    return FleetPlan(
        scenario=scenario,
        max_violation_rate=max_violation_rate,
        routing=routing,
        fleet=winner,
        cost_rate=cost_rate,
        evaluated=evaluated,
        skipped=skipped,
    )
