"""Admission control: decide at the door instead of queueing without bound.

Open-loop overload has no natural brake — the arrival process keeps
offering work whether or not the fleet can absorb it, so queue depth and
tail latency grow without bound for as long as the burst lasts.  An
admission controller sits in front of the batching scheduler and turns
that unbounded queue into a bounded one by refusing work it cannot serve
within budget.  Two independent gates, checked in order on every arrival:

1. **Per-tenant token-bucket quotas** — each tenant owns a bucket refilled
   at ``tenant_quota_qps`` tokens per second up to a ``quota_burst`` cap;
   an arrival without a token is over quota.  This is the multi-tenant
   isolation layer on top of the weighted-fair scheduler: a runaway tenant
   exhausts its own bucket instead of everyone's queue.
2. **Queue budget** — when the scheduler queue already holds
   ``queue_budget`` requests, the system is past its latency budget and
   further admissions only deepen the tail.

What happens to a refused request depends on the controller's mode:

* ``shed`` — the request is dropped on the spot (an error/503 to the
  client).  Admitted-request latency stays bounded by the queue budget.
* ``tarpit`` — the request is delayed by ``tarpit_seconds`` and retried,
  modelling backpressure (the client keeps waiting rather than erroring).
  Tarpitted time counts toward the request's latency once admitted; a
  request still refused when the simulation horizon passes is dropped.

The controller is deterministic and engine-driven: it keeps no clock of
its own, refills buckets lazily from the arrival timestamps the engine
passes in, and :meth:`AdmissionController.reset` re-arms it between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Overload-response modes (CLI / scenario ``admission`` knob).
ADMISSION_MODES = ("shed", "tarpit")

#: Refusal reasons reported in :class:`AdmissionStats.shed_by_reason`.
REASON_QUOTA = "quota"
REASON_QUEUE = "queue"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Attributes:
        admitted: the request may enter the scheduler queue now.
        reason: why not (``"quota"`` or ``"queue"``); empty when admitted.
        retry_after_seconds: tarpit delay before the engine should retry
            the same request; ``0`` means the refusal is final (shed).
    """

    admitted: bool
    reason: str = ""
    retry_after_seconds: float = 0.0


#: The one decision every admitted request gets.
ADMIT = AdmissionDecision(admitted=True)


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/second, ``burst`` cap.

    Buckets start full, refill lazily at read time from the elapsed
    simulated seconds, and never go negative — the standard shaping
    primitive, driven entirely by the timestamps the caller passes in.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must allow at least one token, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.reset()

    def reset(self) -> None:
        self._tokens = self.burst
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (refills, does not consume)."""
        self._refill(now)
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Consume one token if available at ``now``."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionStats:
    """Admission-side tallies of one engine run.

    ``offered`` counts distinct requests presented to the controller;
    ``tarpitted`` counts delay events, so one request bounced twice
    contributes two.  ``shed`` counts final drops only (including
    tarpitted requests that ran out the simulation horizon).
    """

    mode: str
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    tarpitted: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    per_tenant_shed: dict[str, int] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests finally dropped."""
        return self.shed / self.offered if self.offered else 0.0

    def render(self) -> str:
        """One-line summary (what the CLI report appends)."""
        parts = [
            f"admission[{self.mode}]: admitted {self.admitted}/{self.offered}",
            f"shed {self.shed} ({self.shed_rate:.2%})",
        ]
        if self.tarpitted:
            parts.append(f"tarpit delays {self.tarpitted}")
        if self.shed_by_reason:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.shed_by_reason.items())
            )
            parts.append(f"by reason: {reasons}")
        return "   ".join(parts)


class AdmissionController:
    """Token-bucket quotas + queue-budget load shedding, shed or tarpit.

    Args:
        mode: overload response — ``"shed"`` (drop) or ``"tarpit"``
            (delay and retry).
        queue_budget: scheduler queue depth at which further arrivals are
            refused; ``0`` disables the queue gate.
        tenant_quota_qps: per-tenant sustained admission rate;
            ``0`` disables quotas.
        quota_burst: token-bucket capacity (instantaneous burst allowance)
            when quotas are active.
        tarpit_seconds: retry delay applied per refusal in tarpit mode.
    """

    def __init__(
        self,
        mode: str = "shed",
        queue_budget: int = 64,
        tenant_quota_qps: float = 0.0,
        quota_burst: float = 16.0,
        tarpit_seconds: float = 0.02,
    ) -> None:
        if mode not in ADMISSION_MODES:
            raise ValueError(
                f"admission mode must be one of {ADMISSION_MODES}, got {mode!r}"
            )
        if queue_budget < 0:
            raise ValueError(f"queue_budget must be >= 0, got {queue_budget}")
        if tenant_quota_qps < 0:
            raise ValueError("tenant_quota_qps must be >= 0")
        if quota_burst < 1:
            raise ValueError("quota_burst must be >= 1")
        if tarpit_seconds <= 0:
            raise ValueError("tarpit_seconds must be positive")
        self.mode = mode
        self.queue_budget = queue_budget
        self.tenant_quota_qps = tenant_quota_qps
        self.quota_burst = quota_burst
        self.tarpit_seconds = tarpit_seconds
        self.reset()

    def reset(self) -> None:
        """Fresh buckets for a fresh run (the engine calls this)."""
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                rate=self.tenant_quota_qps, burst=self.quota_burst
            )
        return bucket

    def _refuse(self, reason: str) -> AdmissionDecision:
        return AdmissionDecision(
            admitted=False,
            reason=reason,
            retry_after_seconds=(
                self.tarpit_seconds if self.mode == "tarpit" else 0.0
            ),
        )

    def admit(
        self,
        tenant: str,
        now: float,
        queue_depth: int,
        capacity_fraction: float = 1.0,
    ) -> AdmissionDecision:
        """Gate one arrival: quota first, then the queue budget.

        Order matters: an over-quota tenant is refused before it can
        consume shared queue budget, so quota enforcement is independent
        of how congested the system happens to be.

        ``capacity_fraction`` is the degraded-mode hook: when faults
        have taken part of the fleet down, the engine passes the healthy
        fraction of declared capacity and the queue budget tightens
        proportionally (never below one slot) — queueing against
        capacity that is not there only deepens the tail.
        """
        if self.tenant_quota_qps > 0 and not self._bucket(tenant).try_take(now):
            return self._refuse(REASON_QUOTA)
        if self.queue_budget > 0:
            budget = self.queue_budget
            if capacity_fraction < 1.0:
                budget = max(1, int(budget * max(capacity_fraction, 0.0)))
            if queue_depth >= budget:
                return self._refuse(REASON_QUEUE)
        return ADMIT
