"""Serving campaigns: sweep scheduler/fleet knobs through the spec engine.

The generic :class:`~repro.campaign.spec.CampaignSpec` enumerates the
cross-product (its axes are validated against the base scenario's own
dataclass fields, so ``qps``/``max_batch``/``instances`` are legal axes
when the base is a :class:`~repro.serve.scenario.ServingScenario`);
:func:`run_serving_campaign` pushes every point through the same
cache-first fan-out core as architecture sweeps
(:func:`repro.campaign.executor.run_cached_scenarios`) and returns an
ordered, exportable result.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.executor import EventFn, run_cached_scenarios
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.serve.scenario import (
    ServingRecord,
    ServingScenario,
    run_serving_scenario,
    serving_key,
)

ProgressFn = Callable[[str], None]


@dataclass
class ServingCampaignResult:
    """Everything one serving campaign produced, in scenario order."""

    name: str
    records: list[ServingRecord]
    hits: int = 0
    misses: int = 0
    elapsed_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def to_json(self, path: str | Path) -> Path:
        """Write the campaign (metadata + every record) as one JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "campaign": self.name,
            "kind": "serving",
            "num_scenarios": len(self.records),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "elapsed_seconds": self.elapsed_seconds,
            "records": [r.to_dict() for r in self.records],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def to_csv(self, path: str | Path) -> Path:
        """One flat row per scenario (knobs + serving metrics)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = []
        for record in self.records:
            row: dict[str, Any] = {"label": record.label, "key": record.key}
            for name, value in record.scenario.items():
                if name != "label":
                    row[name] = value
            row.update(record.metrics())
            row["cached"] = record.cached
            rows.append(row)
        columns: list[str] = []
        for row in rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        return path

    def table(self):
        """Summary table of the load/latency/SLO outcome per scenario."""
        from repro.experiments.common import ExperimentTable

        t = ExperimentTable(
            title=f"serving campaign '{self.name}'",
            columns=[
                "scenario", "served", "p50 ms", "p99 ms", "util", "viol%",
                "batch", "inst-s", "shed%",
            ],
        )
        for r in self.records:
            t.add_row(
                r.label,
                r.throughput_qps,
                r.p50_latency_seconds * 1e3,
                r.p99_latency_seconds * 1e3,
                r.utilization,
                r.slo_violation_rate * 100.0,
                r.mean_batch_size,
                r.instance_seconds,
                r.shed_rate * 100.0,
            )
        return t


def _serving_leaf(scenario: ServingScenario, key: str) -> ServingRecord:
    """Serving leaf with the ``(scenario, key)`` funnel signature.

    Store reads/writes happen in the funnel's parent process, never here.
    """
    return run_serving_scenario(scenario, key=key)


def run_serving_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    on_event: EventFn | None = None,
) -> ServingCampaignResult:
    """Evaluate a serving campaign: cached points first, misses fanned out.

    Results come back in scenario order regardless of completion order,
    so serial and parallel runs are bit-identical.
    """
    scenarios = spec.scenarios()
    if scenarios and not isinstance(scenarios[0], ServingScenario):
        raise TypeError(
            "run_serving_campaign needs a CampaignSpec over ServingScenario; "
            "use repro.campaign.executor.run_campaign for architecture sweeps"
        )
    started = time.perf_counter()
    keys = [serving_key(s) for s in scenarios]
    records, hits, misses = run_cached_scenarios(
        scenarios,
        keys,
        _serving_leaf,
        ServingRecord,
        jobs=jobs,
        store=store,
        progress=progress,
        on_event=on_event,
    )
    return ServingCampaignResult(
        name=spec.name,
        records=records,
        hits=hits,
        misses=misses,
        elapsed_seconds=time.perf_counter() - started,
    )
