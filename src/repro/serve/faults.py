"""Seeded fault injection: crash/recover, slowdowns, zone outages.

Every fleet model built before this module assumed instances never fail.
Real serving fleets lose replicas mid-batch, slow down when a noisy
neighbour steals the memory bus, and occasionally lose a whole rack at
once — and the interesting availability questions (what do retries buy,
what does N+1 capacity cost) only exist once those events do.  Two
pieces turn failures into first-class discrete events:

* :class:`FaultSpec` — the declarative fault model, parseable from the
  CLI string form (``"mtbf=0.4,mttr=0.1,zones=2"``).  Three independent
  processes, each disabled when its rate is zero:

  - **Crashes** — per-instance exponential time-between-failures
    (``mtbf``); a crashed instance is torn down (killing any in-flight
    batch) and a repaired replacement is provisioned ``mttr`` seconds
    later, paying the usual warm-up before it serves.
  - **Slowdowns** — transient per-slice degradation (``slow_mtbf``):
    for ``slow_duration`` seconds every batch dispatched by the slice
    runs ``slow_factor`` times slower, modelling interference rather
    than loss.
  - **Zone outages** — correlated failure (``zone_mtbf`` over
    ``zones`` zones): instances map to zones by ``local id % zones``,
    and an outage crashes every provisioned instance of one zone across
    all slices simultaneously, recovering together after ``zone_mttr``.

  The named preset ``"default"`` is the standard fault zoo the fig. 12
  availability experiment (and the chaos CI smoke) runs against.

* :class:`FaultInjector` — the seeded runtime: it owns one
  ``random.Random`` and answers "when is the next event and who is the
  victim".  The serving engine drives it through its own event heap, so
  a faulted simulation remains a deterministic function of
  ``(scenario, seed)`` — the property every differential test and the
  fig. 12 acceptance criterion lean on.

The injector never mutates the fleet itself; it only *decides*.  The
engine applies the decision through
:meth:`~repro.serve.fleet.TypedReplicaPool.crash`, which is where the
billing invariants (partial busy-seconds on teardown, non-negative
cached aggregates) are enforced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

#: Sentinel accepted by :meth:`FaultSpec.parse` for the standard fault
#: zoo (what ``repro serve --faults default`` and fig. 12 use).
DEFAULT_FAULTS = "default"

#: The standard fault zoo: roughly one crash per instance every 0.4
#: simulated seconds with a 0.1 s repair, occasional 2x slowdowns, and
#: a rare two-zone correlated outage.  Aggressive on purpose — the
#: reliability experiments need failures to *matter* inside a short,
#: laptop-friendly horizon.
DEFAULT_FAULT_SPEC_TEXT = (
    "mtbf=0.4,mttr=0.1,slow_mtbf=1.0,slow_factor=2.0,slow_duration=0.1,"
    "zones=2,zone_mtbf=4.0,zone_mttr=0.15"
)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model for one serving run.

    Attributes:
        mtbf: per-instance mean time between crashes in simulated
            seconds (``0`` disables the crash process).
        mttr: mean time to repair — the delay before a crashed
            instance's replacement is provisioned (it then pays the
            normal warm-up before serving).
        slow_mtbf: per-slice mean time between transient slowdowns
            (``0`` disables slowdowns).
        slow_factor: service-time multiplier while a slowdown is active.
        slow_duration: how long each slowdown lasts.
        zones: failure-correlation domains; instances map to zones by
            ``local id % zones``.
        zone_mtbf: fleet-level mean time between zone outages (``0``
            disables them; requires ``zones >= 2`` to be meaningful but
            is accepted with one zone — it then crashes everything).
        zone_mttr: outage duration before the zone's instances are
            repaired together.
    """

    mtbf: float = 0.0
    mttr: float = 0.05
    slow_mtbf: float = 0.0
    slow_factor: float = 2.0
    slow_duration: float = 0.05
    zones: int = 1
    zone_mtbf: float = 0.0
    zone_mttr: float = 0.1

    def __post_init__(self) -> None:
        if self.mtbf < 0 or self.slow_mtbf < 0 or self.zone_mtbf < 0:
            raise ValueError("fault rates (mtbf fields) must be non-negative")
        if self.mttr <= 0 or self.zone_mttr <= 0:
            raise ValueError("repair times (mttr fields) must be positive")
        if self.slow_factor <= 1.0:
            raise ValueError(
                f"slow_factor must exceed 1, got {self.slow_factor}"
            )
        if self.slow_duration <= 0:
            raise ValueError("slow_duration must be positive")
        if self.zones < 1:
            raise ValueError(f"zones must be >= 1, got {self.zones}")

    @property
    def enabled(self) -> bool:
        """Whether any fault process is actually armed."""
        return self.mtbf > 0 or self.slow_mtbf > 0 or self.zone_mtbf > 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``"mtbf=0.4,mttr=0.1,..."``.

        The bare word ``"default"`` resolves to the standard fault zoo;
        unknown keys are rejected so typos fail fast.
        """
        if not text or not text.strip():
            raise ValueError("empty fault spec")
        if text.strip() == DEFAULT_FAULTS:
            text = DEFAULT_FAULT_SPEC_TEXT
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, float | int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value_text = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"bad fault field {part!r}; expected 'key=value'"
                )
            if key not in known:
                raise ValueError(
                    f"unknown fault field {key!r}; "
                    f"choose from {sorted(known)}"
                )
            try:
                kwargs[key] = (
                    int(value_text) if key == "zones" else float(value_text)
                )
            except ValueError:
                raise ValueError(
                    f"bad value {value_text!r} for fault field {key!r}"
                ) from None
        return cls(**kwargs)

    def render(self) -> str:
        """Canonical string form (only non-default fields, stable order)."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value:g}")
        return ",".join(parts)


def coerce_faults(faults: "FaultSpec | str | None") -> "FaultSpec | None":
    """Normalize the engine's ``faults`` argument.

    ``None`` / ``""`` (and a spec with every process disabled) mean no
    fault injection at all — the engine then skips the fault machinery
    entirely, which is what keeps the default path bit-identical.
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        if not faults.strip():
            return None
        faults = FaultSpec.parse(faults)
    return faults if faults.enabled else None


class FaultInjector:
    """The seeded decision-maker behind one faulted run.

    One injector serves one engine run.  It owns a single
    ``random.Random(seed)`` consumed in a deterministic order (every
    draw happens inside an engine event handler, and the engine's event
    order is itself deterministic), so traces, reports, and the fig. 12
    frontier repeat exactly under a fixed seed.

    Args:
        spec: the declarative fault model.
        seed: scenario seed; the injector derives its stream from it.
        slices: number of fleet slices (one crash/slowdown process per
            slice).
    """

    def __init__(self, spec: FaultSpec, seed: int, slices: int) -> None:
        if slices < 1:
            raise ValueError("need at least one fleet slice")
        self.spec = spec
        # A fixed odd multiplier decorrelates the fault stream from the
        # arrival/routing streams that consume the raw scenario seed.
        self._rng = random.Random(seed * 1_000_003 + 0x5EED)
        self.slices = slices

    # ------------------------------------------------------------------
    # Scheduling draws (exponential inter-event gaps)
    # ------------------------------------------------------------------
    def next_crash_gap(self, provisioned: int) -> float:
        """Seconds until the next crash in a slice of ``provisioned``
        instances (per-instance MTBF => slice rate scales with size).

        An empty slice still returns a finite re-check gap so the
        process resumes once recoveries repopulate the slice.
        """
        rate = max(provisioned, 1) / self.spec.mtbf
        return self._rng.expovariate(rate)

    def next_slowdown_gap(self) -> float:
        """Seconds until a slice's next transient slowdown."""
        return self._rng.expovariate(1.0 / self.spec.slow_mtbf)

    def next_zone_gap(self) -> float:
        """Seconds until the next correlated zone outage."""
        return self._rng.expovariate(1.0 / self.spec.zone_mtbf)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------
    def pick_victim(self, instance_ids: tuple[int, ...]) -> int | None:
        """Uniformly choose the crashing instance (``None`` if the slice
        is currently empty — the crash event then fizzles)."""
        if not instance_ids:
            return None
        return instance_ids[self._rng.randrange(len(instance_ids))]

    def pick_zone(self) -> int:
        """The zone an outage takes down."""
        return self._rng.randrange(self.spec.zones)

    def zone_of(self, local_id: int) -> int:
        """Deterministic instance-to-zone mapping (``local id % zones``)."""
        return local_id % self.spec.zones
