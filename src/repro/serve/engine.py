"""Discrete-event serving simulation: arrivals -> batches -> replicas.

Same priority-queue idiom as the NoC event engine
(:mod:`repro.noc.events`): a heap of timestamped events, cost scaling
with the number of requests rather than with elapsed time.  Three event
kinds:

* ``DEPART`` — a replica finishes a batch: record per-request latencies,
  free the instance, re-check the queue (and, closed-loop, owe each
  finished client its next request).
* ``ARRIVE`` — a request joins the scheduler queue (and arms its
  max-wait deadline).
* ``TIMEOUT`` — a queued request's deadline passed: dispatch whatever is
  waiting if a replica is free.

Events at the same instant process departures first (a freed replica can
serve a batch formed in the same instant), then arrivals, then timeouts;
within a kind, insertion order breaks ties — the whole simulation is a
deterministic function of the seeded inputs.

The output :class:`ServingReport` carries the SLO analytics: per-tenant
latency percentiles (via the shared :func:`repro.noc.stats
.summarize_latencies`), throughput, queue depths, replica utilization,
and SLO-violation rates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.noc.stats import LatencySummary, summarize_latencies
from repro.serve.arrivals import ClosedLoopPool, Request
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import ServiceModel

_DEPART = 0
_ARRIVE = 1
_TIMEOUT = 2


@dataclass(frozen=True)
class TenantReport:
    """SLO analytics for one tenant's completed requests."""

    tenant: str
    completed: int
    throughput_qps: float
    latency: LatencySummary
    slo_violation_rate: float


@dataclass(frozen=True)
class ServingReport:
    """Everything one serving simulation measured."""

    horizon_seconds: float
    makespan_seconds: float
    instances: int
    slo_seconds: float
    offered: int
    completed: int
    batches: int
    throughput_qps: float
    utilization: float
    mean_batch_size: float
    mean_queue_depth: float
    peak_queue_depth: int
    latency: LatencySummary
    slo_violation_rate: float
    tenants: dict[str, TenantReport]

    def render(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""

        def ms(seconds: float) -> str:
            return f"{seconds * 1e3:.2f} ms"

        lines = [
            f"served {self.completed}/{self.offered} requests in "
            f"{self.makespan_seconds:.3f} s on {self.instances} instance(s) "
            f"({self.batches} batches, mean size {self.mean_batch_size:.2f})",
            f"throughput {self.throughput_qps:.1f} req/s   "
            f"utilization {self.utilization:.1%}   "
            f"queue depth mean {self.mean_queue_depth:.2f} / "
            f"peak {self.peak_queue_depth}",
            f"latency  p50 {ms(self.latency.p50)}  p95 {ms(self.latency.p95)}  "
            f"p99 {ms(self.latency.p99)}  max {ms(self.latency.max)}",
            f"SLO {ms(self.slo_seconds)}: violation rate "
            f"{self.slo_violation_rate:.2%}",
        ]
        if self.tenants:
            lines.append("per-tenant:")
            for name in sorted(self.tenants):
                t = self.tenants[name]
                lines.append(
                    f"  {name:<12} n={t.latency.count:<7} "
                    f"p50 {ms(t.latency.p50)}  p95 {ms(t.latency.p95)}  "
                    f"p99 {ms(t.latency.p99)}  "
                    f"violations {t.slo_violation_rate:.2%}"
                )
        return "\n".join(lines)


def _empty_report(instances: int, slo_seconds: float, horizon: float) -> ServingReport:
    return ServingReport(
        horizon_seconds=horizon,
        makespan_seconds=0.0,
        instances=instances,
        slo_seconds=slo_seconds,
        offered=0,
        completed=0,
        batches=0,
        throughput_qps=0.0,
        utilization=0.0,
        mean_batch_size=0.0,
        mean_queue_depth=0.0,
        peak_queue_depth=0,
        latency=summarize_latencies([]),
        slo_violation_rate=0.0,
        tenants={},
    )


class ServingEngine:
    """Drive a scheduler + service model + replica pool over a workload."""

    def __init__(
        self,
        scheduler: BatchingScheduler,
        service: ServiceModel,
        instances: int = 2,
        slo_seconds: float = 0.05,
    ) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        if slo_seconds <= 0:
            raise ValueError(f"SLO must be positive, got {slo_seconds}")
        self.scheduler = scheduler
        self.service = service
        self.instances = instances
        self.slo_seconds = slo_seconds

    def run(
        self,
        requests: Sequence[Request] | None = None,
        closed_loop: ClosedLoopPool | None = None,
        horizon_seconds: float | None = None,
    ) -> ServingReport:
        """Simulate one workload to completion.

        Exactly one of ``requests`` (open-loop: the pre-generated stream)
        or ``closed_loop`` (a client pool the simulation drives) must be
        given.  ``horizon_seconds`` stops *admission* — requests arriving
        at or after it are dropped (closed-loop pools stop spawning) —
        but everything admitted is served to completion.  Closed-loop
        runs require a horizon or they would never terminate.
        """
        if (requests is None) == (closed_loop is None):
            raise ValueError("provide exactly one of requests / closed_loop")
        if closed_loop is not None and horizon_seconds is None:
            raise ValueError("closed-loop runs need horizon_seconds")
        if horizon_seconds is not None and horizon_seconds <= 0:
            raise ValueError("horizon must be positive")

        scheduler = self.scheduler
        events: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, kind, seq, payload))
            seq += 1

        initial = (
            list(requests) if requests is not None else closed_loop.initial_requests()
        )
        offered = 0
        for request in sorted(
            initial, key=lambda r: (r.arrival_time, r.request_id)
        ):
            if horizon_seconds is not None and request.arrival_time >= horizon_seconds:
                continue
            push(request.arrival_time, _ARRIVE, request)
            offered += 1
        horizon = horizon_seconds or max(
            (r.arrival_time for r in initial), default=0.0
        )
        if not events:
            return _empty_report(self.instances, self.slo_seconds, horizon)

        free: list[int] = list(range(self.instances))
        heapq.heapify(free)
        busy_seconds = 0.0
        batches = 0
        served = 0
        latencies: dict[str, list[float]] = {}
        depth_integral = 0.0
        peak_depth = 0
        last_time = 0.0
        makespan = 0.0

        def try_dispatch(now: float) -> None:
            nonlocal busy_seconds, batches
            while free and scheduler.ready(now):
                batch = scheduler.pop_batch(now)
                instance = heapq.heappop(free)
                seconds = self.service.batch_service_seconds(batch.graph_sizes)
                busy_seconds += seconds
                batches += 1
                push(now + seconds, _DEPART, (instance, batch))

        while events:
            now, kind, _, payload = heapq.heappop(events)
            depth_integral += scheduler.queue_depth * (now - last_time)
            last_time = now
            if kind == _DEPART:
                # Only departures advance the makespan: stale TIMEOUT
                # events outliving the last departure are no-ops and must
                # not inflate the throughput/utilization window.
                makespan = now
                instance, batch = payload  # type: ignore[misc]
                heapq.heappush(free, instance)
                for request in batch.requests:
                    latencies.setdefault(request.tenant, []).append(
                        now - request.arrival_time
                    )
                    served += 1
                    if closed_loop is not None:
                        follow_up = closed_loop.next_request(now)
                        if follow_up.arrival_time < horizon:
                            push(follow_up.arrival_time, _ARRIVE, follow_up)
                            offered += 1
                try_dispatch(now)
            elif kind == _ARRIVE:
                request = payload  # type: ignore[assignment]
                scheduler.enqueue(request)
                peak_depth = max(peak_depth, scheduler.queue_depth)
                if scheduler.max_wait_seconds > 0:
                    push(now + scheduler.max_wait_seconds, _TIMEOUT, None)
                try_dispatch(now)
            else:  # _TIMEOUT: the queue head may have exceeded its wait.
                try_dispatch(now)

        return self._report(
            horizon=horizon,
            makespan=makespan,
            offered=offered,
            served=served,
            batches=batches,
            busy_seconds=busy_seconds,
            depth_integral=depth_integral,
            peak_depth=peak_depth,
            latencies=latencies,
        )

    def _report(
        self,
        horizon: float,
        makespan: float,
        offered: int,
        served: int,
        batches: int,
        busy_seconds: float,
        depth_integral: float,
        peak_depth: int,
        latencies: dict[str, list[float]],
    ) -> ServingReport:
        window = makespan if makespan > 0 else 1.0
        all_latencies = [v for values in latencies.values() for v in values]
        violations = sum(1 for v in all_latencies if v > self.slo_seconds)
        tenants: dict[str, TenantReport] = {}
        for name in sorted(latencies):
            values = latencies[name]
            tenants[name] = TenantReport(
                tenant=name,
                completed=len(values),
                throughput_qps=len(values) / window,
                latency=summarize_latencies(values),
                slo_violation_rate=(
                    sum(1 for v in values if v > self.slo_seconds) / len(values)
                ),
            )
        return ServingReport(
            horizon_seconds=horizon,
            makespan_seconds=makespan,
            instances=self.instances,
            slo_seconds=self.slo_seconds,
            offered=offered,
            completed=served,
            batches=batches,
            throughput_qps=served / window,
            utilization=busy_seconds / (self.instances * window),
            mean_batch_size=served / batches if batches else 0.0,
            mean_queue_depth=depth_integral / window,
            peak_queue_depth=peak_depth,
            latency=summarize_latencies(all_latencies),
            slo_violation_rate=violations / served if served else 0.0,
            tenants=tenants,
        )
