"""Discrete-event serving simulation: arrivals -> admission -> routing -> batches -> fleet.

Same priority-queue idiom as the NoC event engine
(:mod:`repro.noc.events`): a heap of timestamped events, cost scaling
with the number of requests rather than with elapsed time.  Nine event
kinds:

* ``DEPART`` — a replica finishes a batch: record per-request latencies,
  free (or retire) the instance, re-check the queue (and, closed-loop,
  owe each finished client its next request).
* ``WARMED`` — a scaled-out instance finished its warm-up delay and joins
  the serving pool.
* ``ARRIVE`` — a request reaches the admission controller; if admitted it
  is routed to a scheduler queue (and arms its max-wait deadline),
  otherwise it is shed on the spot or tarpitted and retried later.
* ``TIMEOUT`` — a queued request's deadline passed: dispatch whatever is
  waiting if a replica is free.
* ``AUTOSCALE`` — the autoscaler's evaluation tick: the policy sees a
  :class:`~repro.serve.autoscale.FleetSnapshot` and may grow or shrink
  the fleet.
* ``FAULT`` — the next injected failure fires: an instance crash (the
  victim is torn down, its in-flight batch fails, a repair is
  scheduled), a transient slice slowdown, or a correlated zone outage
  (:mod:`repro.serve.faults`).
* ``RECOVER`` — a crashed instance's repair completes: a replacement is
  provisioned in its slice and pays the normal warm-up.
* ``RETRY`` — a failed request's backoff elapsed: it re-routes like a
  fresh arrival (skipping admission — it was already admitted once) and
  so lands on a healthy target (:mod:`repro.serve.retry`).
* ``HEDGE`` — a request still unfinished ``hedge_seconds`` after its
  enqueue is duplicated onto the least-loaded healthy queue; whichever
  copy departs first wins and the loser cancels at its own departure.

Events at the same instant process departures first (a freed replica can
serve a batch formed in the same instant), then warm-ups, arrivals, and
timeouts, with the autoscaler observing the settled state and fault /
reliability events resolving last; within a kind, insertion order breaks
ties — the whole simulation is a deterministic function of the seeded
inputs, faults included.

The fleet is a :class:`~repro.serve.fleet.TypedReplicaPool`: one or more
instance types (:mod:`repro.serve.fleet`), each with its own batch
ceiling, service-time scale, warm-up, and $-cost rate.  A
:class:`~repro.serve.routing.RoutingPolicy` sits between admission and
the per-target :class:`~repro.serve.scheduler.BatchingScheduler` queues:
it assigns each admitted request to a target queue and tells each
instance type which targets it drains.  The homogeneous default — one
``default`` type behind the single shared queue — reproduces the
pre-fleet engine *bit-identically*; the regression baseline pins that.

Scale-out provisions instances that bill immediately but serve only
after their warm-up, and scale-in retires idle instances at once while
busy ones drain their current batch first.  Billed capacity integrates
into the report's ``instance_seconds`` — and, weighted by each type's
``cost_per_second``, into ``cost_dollars``, the number the
fleet-composition planner minimizes.

The output :class:`ServingReport` carries the SLO analytics: per-tenant
latency percentiles (via the shared
:func:`repro.noc.stats.summarize_latencies`), throughput, queue depths,
replica utilization, SLO-violation rates, windowed burn-rate analytics
(:class:`~repro.obs.slo.SloBurnReport`), per-type fleet usage
(:class:`~repro.serve.fleet.TypeUsage`) for heterogeneous runs, and —
when the corresponding controller is attached — autoscaling and
admission tallies.

Telemetry is injected, never hard-wired: the engine accepts an optional
:class:`~repro.obs.trace.TraceRecorder` (per-request lifecycle spans), a
:class:`~repro.obs.metrics.MetricRegistry` (counters/gauges/histograms
filled at report time), and a :class:`~repro.obs.metrics.Sampler`
(fixed-interval fleet-state series).  A disabled recorder is resolved to
``None`` before the event loop starts, so the default path pays one
attribute check per run, not per event.  Latency distributions go
through :mod:`repro.obs.sketch` — the ``"exact"`` backend keeps reports
bit-identical to the pre-telemetry engine, ``"p2"`` keeps memory
constant at web scale.  Heterogeneous runs additionally export per-type
gauges and sampler columns; the homogeneous default exports exactly what
it always did.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.noc.stats import LatencySummary, summarize_latencies
from repro.obs.metrics import MetricRegistry, Sampler
from repro.obs.sketch import SKETCH_BACKENDS, make_sketch
from repro.obs.slo import BurnRateTracker, SloBurnReport
from repro.obs.trace import (
    FLEET_CRASH,
    FLEET_RECOVER,
    FLEET_RESCUE,
    FLEET_SCALE,
    FLEET_SLOWDOWN,
    FLEET_WARMED,
    FLEET_ZONE_OUTAGE,
    SPAN_ADMIT,
    SPAN_ARRIVE,
    SPAN_DEPART,
    SPAN_DISPATCH,
    SPAN_ENQUEUE,
    SPAN_FAIL,
    SPAN_HEDGE_CANCELLED,
    SPAN_HEDGE_FIRED,
    SPAN_RETRY,
    SPAN_SHED,
    SPAN_TARPIT,
    TraceRecorder,
)
from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.arrivals import ClosedLoopPool, Request
from repro.serve.autoscale import (
    AutoscalerPolicy,
    AutoscaleStats,
    FleetSnapshot,
    ScalingEvent,
)
from repro.serve.faults import FaultInjector, FaultSpec, coerce_faults
from repro.serve.fleet import (
    FleetSpec,
    ReplicaPool,
    TypedReplicaPool,
    TypeUsage,
    coerce_fleet,
)
from repro.serve.retry import RetryPolicy, make_retry_policy
from repro.serve.routing import ROUTING_POLICIES, make_routing
from repro.serve.scheduler import BatchingScheduler, SchedulerGroup
from repro.serve.service import ServiceModel

__all__ = [
    "ReplicaPool",  # moved to repro.serve.fleet; re-exported for compat
    "ServingEngine",
    "ServingReport",
    "TenantReport",
]

_DEPART = 0
_WARMED = 1
_ARRIVE = 2
_TIMEOUT = 3
_AUTOSCALE = 4
# Reliability kinds resolve after the autoscaler has observed the settled
# state at the same instant; new kinds append (same-instant ordering of
# the original five is pinned by the serving regression baseline).
_FAULT = 5
_RECOVER = 6
_RETRY = 7
_HEDGE = 8


@dataclass(frozen=True)
class TenantReport:
    """SLO analytics for one tenant's completed requests."""

    tenant: str
    completed: int
    throughput_qps: float
    latency: LatencySummary
    slo_violation_rate: float


@dataclass(frozen=True)
class ServingReport:
    """Everything one serving simulation measured.

    ``instances`` is the initial fleet; with an autoscaler attached the
    fleet varies over time and ``instance_seconds`` (billed capacity
    integrated over the serving window) plus the ``autoscale`` trajectory
    tell the full story.  ``admission`` is ``None`` unless an admission
    controller gated the run.  ``cost_dollars`` prices the billed
    capacity by each type's ``cost_per_second`` (for the homogeneous
    default fleet it equals ``instance_seconds`` at $1/s); ``per_type``
    breaks usage down by instance type and is empty for the homogeneous
    default fleet.
    """

    horizon_seconds: float
    makespan_seconds: float
    instances: int
    slo_seconds: float
    offered: int
    completed: int
    batches: int
    throughput_qps: float
    utilization: float
    mean_batch_size: float
    mean_queue_depth: float
    peak_queue_depth: int
    latency: LatencySummary
    slo_violation_rate: float
    tenants: dict[str, TenantReport]
    instance_seconds: float = 0.0
    peak_instances: int = 0
    autoscale: AutoscaleStats | None = None
    admission: AdmissionStats | None = None
    burn: SloBurnReport | None = None
    fleet: str = ""
    routing: str = "shared_queue"
    cost_dollars: float = 0.0
    per_type: tuple[TypeUsage, ...] = ()
    faults: str = ""
    retry: str = "none"
    failed: int = 0
    retries: int = 0
    crashes: int = 0
    recoveries: int = 0
    slowdowns: int = 0
    zone_outages: int = 0
    hedges_fired: int = 0
    hedges_cancelled: int = 0
    availability: float = 1.0

    def render(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""

        def ms(seconds: float) -> str:
            # Adaptive precision: sub-0.1 ms values would render as
            # "0.00 ms" at fixed precision, which reads as zero latency.
            value = seconds * 1e3
            if value != 0 and abs(value) < 0.1:
                return f"{value:.3g} ms"
            return f"{value:.2f} ms"

        lines = [
            f"served {self.completed}/{self.offered} requests in "
            f"{self.makespan_seconds:.3f} s on {self.instances} instance(s) "
            f"({self.batches} batches, mean size {self.mean_batch_size:.2f})",
            f"throughput {self.throughput_qps:.1f} req/s   "
            f"utilization {self.utilization:.1%}   "
            f"queue depth mean {self.mean_queue_depth:.2f} / "
            f"peak {self.peak_queue_depth}",
            f"latency  p50 {ms(self.latency.p50)}  p95 {ms(self.latency.p95)}  "
            f"p99 {ms(self.latency.p99)}  max {ms(self.latency.max)}",
            f"SLO {ms(self.slo_seconds)}: violation rate "
            f"{self.slo_violation_rate:.2%}",
        ]
        if self.autoscale is not None:
            a = self.autoscale
            lines.append(
                f"fleet[{a.policy}]: start {self.instances} -> peak "
                f"{a.peak_instances} / min {a.min_instances} / final "
                f"{a.final_instances}   {a.scale_out_events} scale-out(s), "
                f"{a.scale_in_events} scale-in(s)   "
                f"instance-seconds {self.instance_seconds:.3f}"
            )
            if a.events:
                shown = a.events[:10]
                steps = " ".join(
                    f"{e.previous}->{e.target}@{e.time:.2f}s" for e in shown
                )
                suffix = (
                    f" ... (+{len(a.events) - len(shown)} more)"
                    if len(a.events) > len(shown)
                    else ""
                )
                lines.append(f"  trajectory: {steps}{suffix}")
        if self.per_type:
            # Typed fleets only: the homogeneous default render is pinned
            # bit-identical to the pre-fleet engine.
            lines.append(
                f"fleet [{self.fleet}] routing {self.routing}: "
                f"cost ${self.cost_dollars:.4f} for "
                f"{self.instance_seconds:.3f} instance-s"
            )
            for u in self.per_type:
                lines.append(
                    f"  {u.name:<8} x{u.initial}->{u.final} "
                    f"(peak {u.peak})  batches {u.batches}  "
                    f"served {u.completed}  inst-s {u.instance_seconds:.3f}"
                    f"  ${u.cost_dollars:.4f}"
                )
        if self.faults:
            # Faulted runs only: the fault-free render is pinned
            # bit-identical to the pre-reliability engine.
            lines.append(
                f"faults [{self.faults}]: killed {self.crashes} instance(s), "
                f"{self.recoveries} recovered   {self.slowdowns} slowdown(s)"
                f"   {self.zone_outages} zone outage(s)"
            )
        if self.faults or self.retry != "none" or self.hedges_fired:
            lines.append(
                f"reliability [retry={self.retry}]: availability "
                f"{self.availability:.2%}   failed {self.failed}   "
                f"retries {self.retries}   hedges {self.hedges_fired} fired"
                f" / {self.hedges_cancelled} cancelled"
            )
        if self.burn is not None:
            lines.extend(self.burn.render())
        if self.admission is not None:
            lines.append(self.admission.render())
        if self.tenants:
            lines.append("per-tenant:")
            for name in sorted(self.tenants):
                t = self.tenants[name]
                lines.append(
                    f"  {name:<12} n={t.latency.count:<7} "
                    f"p50 {ms(t.latency.p50)}  p95 {ms(t.latency.p95)}  "
                    f"p99 {ms(t.latency.p99)}  "
                    f"violations {t.slo_violation_rate:.2%}"
                )
        return "\n".join(lines)


def _empty_report(
    instances: int,
    slo_seconds: float,
    horizon: float,
    fleet: str = "",
    routing: str = "shared_queue",
) -> ServingReport:
    return ServingReport(
        horizon_seconds=horizon,
        makespan_seconds=0.0,
        instances=instances,
        slo_seconds=slo_seconds,
        offered=0,
        completed=0,
        batches=0,
        throughput_qps=0.0,
        utilization=0.0,
        mean_batch_size=0.0,
        mean_queue_depth=0.0,
        peak_queue_depth=0,
        latency=summarize_latencies([]),
        slo_violation_rate=0.0,
        tenants={},
        instance_seconds=0.0,
        peak_instances=instances,
        fleet=fleet,
        routing=routing,
    )


class ServingEngine:
    """Drive schedulers + service model + a typed fleet over a workload.

    Args:
        scheduler: the batching scheduler owning the admission queue.
            With multi-target routing it becomes the first target's queue
            and prototype — each further target gets an identically
            configured :meth:`~repro.serve.scheduler.BatchingScheduler
            .spawn`.
        service: per-batch service-time model (each instance type scales
            it by its ``service_scale``).
        instances: initial replica count (the *whole* fleet when no
            autoscaler is attached).  Ignored when ``fleet`` is given —
            the spec's total wins.
        slo_seconds: per-request latency target for violation accounting.
        autoscaler: optional :class:`~repro.serve.autoscale
            .AutoscalerPolicy` evaluated on a fixed cadence; the fleet
            then grows and shrinks mid-simulation (the policy answers
            with a total; :func:`~repro.serve.autoscale.allocate_fleet`
            splits it across types, cheapest capacity first).
        admission: optional :class:`~repro.serve.admission
            .AdmissionController` gating every arrival before it may
            enter a scheduler queue.
        warmup_seconds: provisioning delay for scaled-out instances (they
            bill immediately, serve only once warm; the initial fleet
            starts warm).  Instance types may override it per type.
        recorder: optional :class:`~repro.obs.trace.TraceRecorder`
            receiving per-request lifecycle spans.  A recorder whose
            ``enabled`` is false (the :class:`~repro.obs.trace
            .NullRecorder` default) is dropped before the event loop, so
            tracing costs nothing unless it is on.
        registry: optional :class:`~repro.obs.metrics.MetricRegistry`
            filled with run counters/gauges and the latency sketches at
            report time.
        sampler: optional :class:`~repro.obs.metrics.Sampler` recording
            the fleet-state time series on its fixed simulated-time
            cadence.
        metrics_backend: latency-sketch backend (``"exact"`` stores every
            latency and keeps reports bit-identical to the pre-telemetry
            engine; ``"p2"`` is the constant-memory streaming estimator).
        violation_budget: the SLO error budget (fraction of requests
            allowed to violate) the burn-rate analytics measure against.
        burn_window_seconds: burn-rate window width; ``0`` picks an
            eighth of the run horizon automatically.
        fleet: optional typed-fleet composition — a
            :class:`~repro.serve.fleet.FleetSpec` or its string form
            (``"small:2,large:1"``).  ``None`` keeps the homogeneous
            ``default`` fleet of ``instances``, which is bit-identical to
            the pre-fleet engine.
        routing: routing-policy name from
            :data:`~repro.serve.routing.ROUTING_POLICIES` (default
            ``shared_queue``; single-target policies leave the engine on
            the shared-queue fast path).
        routing_seed: seed for randomized routing policies (po2).
        faults: optional fault model — a :class:`~repro.serve.faults
            .FaultSpec` or its string form (``"mtbf=0.4,mttr=0.1"``,
            or the named preset ``"default"``).  ``None`` / ``""`` (or a
            spec with every process disabled) skips the fault machinery
            entirely, keeping the default path bit-identical to the
            fault-free engine.
        retry: optional :class:`~repro.serve.retry.RetryPolicy` (or a
            mode name from :data:`~repro.serve.retry.RETRY_POLICIES`)
            deciding whether failed requests re-enter the queue.
        hedge_seconds: duplicate a request onto a second queue when it
            is still unfinished this long after enqueue (``0`` disables
            hedging); first copy to depart wins.
        fault_seed: seed of the fault injector's event stream (the
            scenario layer passes the scenario seed).
    """

    def __init__(
        self,
        scheduler: BatchingScheduler,
        service: ServiceModel,
        instances: int = 2,
        slo_seconds: float = 0.05,
        autoscaler: AutoscalerPolicy | None = None,
        admission: AdmissionController | None = None,
        warmup_seconds: float = 0.0,
        recorder: TraceRecorder | None = None,
        registry: MetricRegistry | None = None,
        sampler: Sampler | None = None,
        metrics_backend: str = "exact",
        violation_budget: float = 0.01,
        burn_window_seconds: float = 0.0,
        fleet: FleetSpec | str | None = None,
        routing: str = "shared_queue",
        routing_seed: int = 0,
        faults: FaultSpec | str | None = None,
        retry: RetryPolicy | str | None = None,
        hedge_seconds: float = 0.0,
        fault_seed: int = 0,
    ) -> None:
        if fleet is None and instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        if slo_seconds <= 0:
            raise ValueError(f"SLO must be positive, got {slo_seconds}")
        if warmup_seconds < 0:
            raise ValueError("warm-up must be non-negative")
        if metrics_backend not in SKETCH_BACKENDS:
            raise ValueError(
                f"unknown metrics backend {metrics_backend!r}; "
                f"choose from {SKETCH_BACKENDS}"
            )
        if not 0 < violation_budget < 1:
            raise ValueError(
                f"violation budget must be a rate in (0, 1), got "
                f"{violation_budget}"
            )
        if burn_window_seconds < 0:
            raise ValueError("burn window must be non-negative")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; "
                f"choose from {sorted(ROUTING_POLICIES)}"
            )
        self.scheduler = scheduler
        self.service = service
        self.fleet_spec = coerce_fleet(fleet, instances)
        self.instances = self.fleet_spec.total()
        self.slo_seconds = slo_seconds
        self.autoscaler = autoscaler
        self.admission = admission
        self.warmup_seconds = warmup_seconds
        self.recorder = recorder
        self.registry = registry
        self.sampler = sampler
        self.metrics_backend = metrics_backend
        self.violation_budget = violation_budget
        self.burn_window_seconds = burn_window_seconds
        self.routing = routing
        self.routing_seed = routing_seed
        if hedge_seconds < 0:
            raise ValueError("hedge_seconds must be non-negative")
        self.faults = coerce_faults(faults)
        if isinstance(retry, str):
            retry = make_retry_policy(retry)
        # A policy that can never retry (mode "none", or one attempt
        # total) resolves to None so the loop skips the machinery.
        self.retry_policy = retry if retry is not None and retry.enabled else None
        self.hedge_seconds = hedge_seconds
        self.fault_seed = fault_seed

    def run(
        self,
        requests: Sequence[Request] | None = None,
        closed_loop: ClosedLoopPool | None = None,
        horizon_seconds: float | None = None,
    ) -> ServingReport:
        """Simulate one workload to completion.

        Exactly one of ``requests`` (open-loop: the pre-generated stream)
        or ``closed_loop`` (a client pool the simulation drives) must be
        given.  ``horizon_seconds`` stops *admission* — requests arriving
        at or after it are dropped (closed-loop pools stop spawning), and
        tarpitted requests still refused at the horizon are shed — but
        everything admitted is served to completion.  Closed-loop runs
        require a horizon or they would never terminate.
        """
        if (requests is None) == (closed_loop is None):
            raise ValueError("provide exactly one of requests / closed_loop")
        if closed_loop is not None and horizon_seconds is None:
            raise ValueError("closed-loop runs need horizon_seconds")
        if horizon_seconds is not None and horizon_seconds <= 0:
            raise ValueError("horizon must be positive")

        autoscaler = self.autoscaler
        admission = self.admission
        if autoscaler is not None:
            autoscaler.reset()
        if admission is not None:
            admission.reset()
        events: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, kind, seq, payload))
            seq += 1

        fleet = TypedReplicaPool(
            self.fleet_spec, default_warmup_seconds=self.warmup_seconds
        )
        typed = fleet.is_typed
        slices = fleet.slices
        fleet_label = self.fleet_spec.render() if typed else ""

        initial = (
            list(requests) if requests is not None else closed_loop.initial_requests()
        )
        offered = 0
        for request in sorted(
            initial, key=lambda r: (r.arrival_time, r.request_id)
        ):
            if horizon_seconds is not None and request.arrival_time >= horizon_seconds:
                continue
            push(request.arrival_time, _ARRIVE, request)
            offered += 1
        horizon = horizon_seconds or max(
            (r.arrival_time for r in initial), default=0.0
        )
        if not events:
            return _empty_report(
                self.instances,
                self.slo_seconds,
                horizon,
                fleet=fleet_label,
                routing=self.routing,
            )

        # The routing layer: one scheduler queue per target, the provided
        # scheduler serving as the first queue and the prototype for the
        # rest.  Single-target policies (the shared queue, or any policy
        # over one type) keep the original one-queue fast path.
        policy = make_routing(self.routing, fleet.types, seed=self.routing_seed)
        targets = policy.targets()
        sched0 = self.scheduler
        schedulers = {
            target: (sched0 if i == 0 else sched0.spawn())
            for i, target in enumerate(targets)
        }
        group = SchedulerGroup(schedulers)
        multi = len(targets) > 1
        depth_of = group.depth_of
        max_wait = sched0.max_wait_seconds
        # Per-slice dispatch plan: each instance type drains its declared
        # targets in priority order, capped by its own batch ceiling.
        serve_plan = [
            (
                slice_,
                slice_.pool,
                slice_.itype.max_batch or None,
                tuple(schedulers[t] for t in policy.serves(slice_.itype.name)),
                slice_.itype.service_scale,
            )
            for slice_ in slices
        ]

        # Telemetry collaborators.  A disabled recorder resolves to None
        # here, once, so the event loop below never pays for tracing it
        # is not doing.
        recorder = self.recorder
        rec = recorder if recorder is not None and recorder.enabled else None
        sampler = self.sampler
        seen_requests: set[int] = set()  # first-arrival dedup, tracing only
        burn = BurnRateTracker(
            slo_seconds=self.slo_seconds,
            budget=self.violation_budget,
            window_seconds=self.burn_window_seconds
            or max(horizon / 8.0, 1e-9),
        )

        # Reliability machinery (fault injection / retries / hedging).
        # Every touchpoint below is gated on these flags: a fault-free,
        # retry-free, unhedged run never reads or writes any of it, which
        # is what keeps the default path bit-identical to the
        # pre-reliability engine (pinned by the regression baseline).
        fault_spec = self.faults
        injector = (
            FaultInjector(fault_spec, self.fault_seed, len(slices))
            if fault_spec is not None
            else None
        )
        faulty = injector is not None
        retry_policy = self.retry_policy
        hedge_seconds = self.hedge_seconds
        hedging = hedge_seconds > 0
        reliable = faulty or retry_policy is not None or hedging
        in_flight: dict[tuple[int, int], object] = {}
        crashed_handles: set[tuple[int, int]] = set()
        slow_until = [0.0] * len(slices)
        attempt_count: dict[int, int] = {}  # failed attempts per request
        finished_ids: set[int] = set()  # hedging: departed-or-failed ids
        copies: dict[int, int] = {}  # hedging: extra outstanding copies
        route_of: dict[int, str] = {}  # hedging: the primary copy's target
        failed = 0
        retry_count = 0
        crashes = 0
        recoveries = 0
        slowdowns = 0
        zone_outages = 0
        hedges_fired = 0
        hedges_cancelled = 0
        # Which slices serve each routing target: the health view behind
        # failure-aware routing (a target is healthy while any serving
        # slice has an instance up or warming).
        serving_slices = (
            {
                target: tuple(
                    s for s in slices if target in policy.serves(s.itype.name)
                )
                for target in targets
            }
            if faulty and multi
            else {}
        )

        # Aggregate fleet counts: a single-slice fleet reads its one
        # ReplicaPool directly (the pre-fleet hot path); multi-slice
        # fleets pay the summing properties.
        counts = slices[0].pool if len(slices) == 1 else fleet
        busy_integral = 0.0  # busy instances x time
        pool_integral = 0.0  # provisioned (billed) instances x time
        busy_at_makespan = 0.0
        pool_at_makespan = 0.0
        usage_at_makespan: tuple[tuple[float, float], ...] = tuple(
            (0.0, 0.0) for _ in slices
        )
        depth_total = 0
        batches = 0
        served = 0
        arrived = 0
        overall_sketch = make_sketch(self.metrics_backend)
        tenant_sketches: dict[str, object] = {}
        depth_integral = 0.0
        peak_depth = 0
        peak_pool = counts.provisioned
        min_pool = counts.provisioned
        last_time = 0.0
        makespan = 0.0
        scale_events: list[ScalingEvent] = []
        tick_busy_mark = 0.0
        tick_pool_mark = 0.0
        stats = (
            AdmissionStats(mode=admission.mode) if admission is not None else None
        )
        if autoscaler is not None:
            push(autoscaler.interval_seconds, _AUTOSCALE, None)
        if faulty:
            # Seed one event per armed fault process.  Seeds and re-arms
            # alike only land inside the admission horizon, so the fault
            # stream always terminates and the post-horizon drain runs
            # fault-free (a seed drawn past the horizon never fires —
            # counters and billing integrals stay inside the run).
            if fault_spec.mtbf > 0:
                for i, s in enumerate(slices):
                    gap = injector.next_crash_gap(s.pool.provisioned)
                    if gap < horizon:
                        push(gap, _FAULT, ("crash", i))
            if fault_spec.slow_mtbf > 0:
                for i in range(len(slices)):
                    gap = injector.next_slowdown_gap()
                    if gap < horizon:
                        push(gap, _FAULT, ("slow", i))
            if fault_spec.zone_mtbf > 0:
                gap = injector.next_zone_gap()
                if gap < horizon:
                    push(gap, _FAULT, ("zone", -1))

        def spawn_follow_up(now: float) -> None:
            """Closed loop: a finished (or refused) client owes its next request."""
            nonlocal offered
            follow_up = closed_loop.next_request(now)
            if follow_up.arrival_time < horizon:
                push(follow_up.arrival_time, _ARRIVE, follow_up)
                offered += 1

        def try_dispatch(now: float) -> None:
            nonlocal batches, depth_total
            for slice_, pool, limit, scheds, scale in serve_plan:
                while pool.has_free():
                    batch = None
                    for sched in scheds:
                        if sched.ready(now, limit):
                            batch = sched.pop_batch(now, limit)
                            break
                    if batch is None:
                        break
                    depth_total -= len(batch.requests)
                    handle = fleet.acquire(slice_.index, now)
                    seconds = self.service.batch_service_seconds(
                        batch.graph_sizes
                    )
                    if scale != 1.0:
                        seconds *= scale
                    if faulty:
                        if now < slow_until[slice_.index]:
                            seconds *= fault_spec.slow_factor
                        in_flight[handle] = batch
                    batches += 1
                    if rec is not None:
                        label = fleet.label(handle)
                        for request in batch.requests:
                            rec.request_event(
                                now,
                                SPAN_DISPATCH,
                                request,
                                instance=label,
                                batch_size=len(batch.requests),
                                service_seconds=seconds,
                            )
                    push(now + seconds, _DEPART, (handle, batch))

        def target_healthy(target: str) -> bool:
            """Whether any slice serving ``target`` has capacity alive."""
            return any(
                s.pool.ready_count + s.pool.warming_count > 0
                for s in serving_slices[target]
            )

        def healthy_route(request: Request, exclude: str | None = None) -> str:
            """Failure-aware routing: fall back to the least-loaded
            healthy target when the policy's pick has no capacity left.

            ``exclude`` is the hedging hook — the target already carrying
            the request's primary copy.  A hedged duplicate goes to the
            least-loaded *other* healthy target when one exists (the
            point of hedging is a second, independent path), and only
            falls back to the primary's target when it is the sole
            survivor."""
            if exclude is not None:
                alive = [
                    t for t in targets if t != exclude and target_healthy(t)
                ]
                if alive:
                    return min(alive, key=lambda t: (depth_of(t), t))
            target = policy.route(request, depth_of)
            if not target_healthy(target):
                alive = [t for t in targets if target_healthy(t)]
                if alive:
                    target = min(alive, key=lambda t: (depth_of(t), t))
            return target

        def eject_dead_targets() -> int:
            """Drain queues stranded behind targets with no capacity and
            re-enqueue their requests onto the least-loaded healthy
            targets; returns how many requests moved (total outages move
            nothing — those queues wait for recoveries)."""
            alive = [t for t in targets if target_healthy(t)]
            if not alive:
                return 0
            moved = 0
            for target in targets:
                if target_healthy(target):
                    continue
                sched = schedulers[target]
                if sched.queue_depth == 0:
                    continue
                for request in sched.drain():
                    dest = min(alive, key=lambda t: (depth_of(t), t))
                    schedulers[dest].enqueue(request)
                    moved += 1
            return moved

        def requeue(
            request: Request, now: float, exclude: str | None = None
        ) -> None:
            """Re-enqueue a retried or hedged request.

            Admission was already paid at the original arrival; the
            request re-routes like a fresh one (healthily, under faults)
            and re-arms a batching deadline for its new queue position.
            ``exclude`` steers a hedged duplicate away from the target
            already carrying the primary copy.
            """
            nonlocal depth_total, peak_depth
            if multi:
                target = (
                    healthy_route(request, exclude)
                    if faulty or exclude is not None
                    else policy.route(request, depth_of)
                )
                schedulers[target].enqueue(request)
                if hedging:
                    route_of[request.request_id] = target
            else:
                sched0.enqueue(request)
            depth_total += 1
            if rec is not None:
                rec.request_event(
                    now, SPAN_ENQUEUE, request, queue_depth=depth_total
                )
            if depth_total > peak_depth:
                peak_depth = depth_total
            if max_wait > 0:
                push(now + max_wait, _TIMEOUT, None)
            try_dispatch(now)

        def fail_attempt(request: Request, now: float) -> None:
            """One service attempt died with its instance: retry or fail."""
            nonlocal failed, retry_count
            rid = request.request_id
            if hedging:
                if rid in finished_ids:
                    copies.pop(rid, None)  # late copy of a settled request
                    return
                extra = copies.get(rid, 0)
                if extra > 0:
                    # A surviving copy (queued or in flight) still carries
                    # the request; the duplicate absorbs this failure.
                    copies[rid] = extra - 1
                    return
            attempt = attempt_count.get(rid, 0) + 1
            delay = (
                retry_policy.next_delay(request, attempt, now)
                if retry_policy is not None
                else None
            )
            if delay is None:
                failed += 1
                attempt_count.pop(rid, None)
                if hedging:
                    finished_ids.add(rid)
                    copies.pop(rid, None)
                    route_of.pop(rid, None)
                if rec is not None:
                    rec.request_event(now, SPAN_FAIL, request, attempts=attempt)
                if closed_loop is not None:
                    # The client saw an error; it owes its next request.
                    spawn_follow_up(now)
                return
            attempt_count[rid] = attempt
            retry_count += 1
            if rec is not None:
                rec.request_event(
                    now, SPAN_RETRY, request,
                    attempt=attempt, retry_at=now + delay,
                )
            push(now + delay, _RETRY, request)

        def crash_instance(
            handle: tuple[int, int], now: float, repair_seconds: float
        ) -> None:
            """Tear one instance down and fail whatever it was serving."""
            nonlocal crashes
            crashes += 1
            state = fleet.crash(handle, now)
            if rec is not None:
                rec.fleet_event(
                    now, FLEET_CRASH, instance=fleet.label(handle), state=state
                )
            if state in ("busy", "retiring"):
                batch = in_flight.pop(handle)
                # The already-scheduled DEPART for this batch is now
                # stale; the set tells the depart handler to discard it
                # (instance ids are never reused, so at most one
                # outstanding departure can ever match a handle).
                crashed_handles.add(handle)
                for request in batch.requests:  # type: ignore[attr-defined]
                    fail_attempt(request, now)
            if state != "retiring":
                # A retiring instance was leaving anyway; everyone else
                # gets a replacement once the repair completes.
                push(now + repair_seconds, _RECOVER, handle[0])
            if multi and eject_dead_targets():
                try_dispatch(now)

        def fleet_state() -> dict[str, object]:
            """What one Sampler row holds (state before the current event).

            Typed fleets add per-type and per-target columns; the
            homogeneous default keeps exactly the pre-fleet columns.
            """
            state: dict[str, object] = {
                "ready": counts.ready_count,
                "warming": counts.warming_count,
                "busy": counts.busy_count,
                "retiring": counts.retiring_count,
                "provisioned": counts.provisioned,
                "queue_depth": depth_total,
                "arrived": arrived,
                "admitted": stats.admitted if stats is not None else arrived,
                "shed": stats.shed if stats is not None else 0,
                "tarpitted": stats.tarpitted if stats is not None else 0,
                "completed": served,
                "utilization": (
                    round(busy_integral / pool_integral, 9)
                    if pool_integral > 0
                    else 0.0
                ),
            }
            if typed:
                for s in slices:
                    state[f"provisioned[{s.itype.name}]"] = s.pool.provisioned
                    state[f"busy[{s.itype.name}]"] = s.pool.busy_count
                for target in targets:
                    state[f"queue_depth[{target}]"] = depth_of(target)
            return state

        while events:
            now, kind, _, payload = heapq.heappop(events)
            dt = now - last_time
            depth_integral += depth_total * dt
            busy_integral += counts.busy_count * dt
            pool_integral += counts.provisioned * dt
            last_time = now
            if sampler is not None and now >= sampler.next_time:
                sampler.record(now, fleet_state())
            if kind == _DEPART:
                handle, batch = payload  # type: ignore[misc]
                if faulty:
                    if handle in crashed_handles:
                        # The instance died mid-batch: its requests took
                        # the failure path at crash time, the fleet slot
                        # was released by the crash itself — this
                        # departure is stale and must not double-free.
                        crashed_handles.discard(handle)
                        continue
                    del in_flight[handle]
                # Only departures advance the makespan: stale TIMEOUT (or
                # autoscale-tick) events outliving the last departure are
                # no-ops and must not inflate the throughput/utilization
                # window — the billing integrals are snapshotted here too.
                makespan = now
                busy_at_makespan = busy_integral
                pool_at_makespan = pool_integral
                fleet.release(handle, now)
                if typed:
                    slices[handle[0]].completed += len(batch.requests)
                    usage_at_makespan = tuple(
                        (s.instance_seconds(now), s.busy_seconds(now))
                        for s in slices
                    )
                    label = fleet.label(handle)
                else:
                    label = handle[1]
                for request in batch.requests:
                    if hedging:
                        rid = request.request_id
                        if rid in finished_ids:
                            # The losing hedge copy: the winner already
                            # recorded this request's latency (or its
                            # failure); drop the duplicate silently.
                            hedges_cancelled += 1
                            copies.pop(rid, None)
                            if rec is not None:
                                rec.request_event(
                                    now, SPAN_HEDGE_CANCELLED, request,
                                    instance=label,
                                )
                            continue
                        finished_ids.add(rid)
                    if faulty and attempt_count:
                        # A previously failed request finally succeeded.
                        attempt_count.pop(request.request_id, None)
                    latency = now - request.arrival_time
                    sketch = tenant_sketches.get(request.tenant)
                    if sketch is None:
                        sketch = tenant_sketches[request.tenant] = make_sketch(
                            self.metrics_backend
                        )
                    sketch.add(latency)  # type: ignore[attr-defined]
                    overall_sketch.add(latency)
                    violated = burn.observe(now, request.tenant, latency)
                    served += 1
                    if rec is not None:
                        rec.request_event(
                            now,
                            SPAN_DEPART,
                            request,
                            instance=label,
                            latency=latency,
                            violated=violated,
                        )
                    if closed_loop is not None:
                        spawn_follow_up(now)
                try_dispatch(now)
            elif kind == _WARMED:
                if fleet.warmed(payload, now):  # type: ignore[arg-type]
                    if rec is not None:
                        rec.fleet_event(
                            now, FLEET_WARMED, instance=fleet.label(payload)
                        )
                    try_dispatch(now)
            elif kind == _ARRIVE:
                request = payload  # type: ignore[assignment]
                arrived += 1
                if rec is not None and request.request_id not in seen_requests:
                    seen_requests.add(request.request_id)
                    rec.request_event(now, SPAN_ARRIVE, request)
                if admission is not None:
                    if faulty:
                        # Graceful degradation: with part of the fleet
                        # down, tighten the queue budget to the healthy
                        # fraction of declared capacity — queueing against
                        # capacity that is not there only deepens the tail.
                        fraction = counts.provisioned / self.instances
                        decision = admission.admit(
                            request.tenant,
                            now,
                            depth_total,
                            capacity_fraction=(
                                fraction if fraction < 1.0 else 1.0
                            ),
                        )
                    else:
                        decision = admission.admit(
                            request.tenant, now, depth_total
                        )
                    if not decision.admitted:
                        retry_at = now + decision.retry_after_seconds
                        if decision.retry_after_seconds > 0 and retry_at < horizon:
                            stats.tarpitted += 1
                            if rec is not None:
                                rec.request_event(
                                    now,
                                    SPAN_TARPIT,
                                    request,
                                    reason=decision.reason,
                                    retry_at=retry_at,
                                )
                            push(retry_at, _ARRIVE, request)
                        else:
                            stats.shed += 1
                            stats.shed_by_reason[decision.reason] = (
                                stats.shed_by_reason.get(decision.reason, 0) + 1
                            )
                            stats.per_tenant_shed[request.tenant] = (
                                stats.per_tenant_shed.get(request.tenant, 0) + 1
                            )
                            if rec is not None:
                                rec.request_event(
                                    now,
                                    SPAN_SHED,
                                    request,
                                    reason=decision.reason,
                                )
                            if closed_loop is not None:
                                # The refused client errors out and retries
                                # after a backoff.  The backoff (reusing the
                                # controller's tarpit delay) guarantees the
                                # clock advances even for zero-think-time
                                # pools — an instant retry against a still-
                                # full queue would livelock the simulation.
                                spawn_follow_up(now + admission.tarpit_seconds)
                        continue
                    stats.admitted += 1
                    if rec is not None:
                        rec.request_event(
                            now, SPAN_ADMIT, request, reason=decision.reason
                        )
                elif rec is not None:
                    rec.request_event(now, SPAN_ADMIT, request, reason="open")
                if multi:
                    target = (
                        healthy_route(request)
                        if faulty
                        else policy.route(request, depth_of)
                    )
                    schedulers[target].enqueue(request)
                    if hedging:
                        route_of[request.request_id] = target
                else:
                    sched0.enqueue(request)
                depth_total += 1
                if rec is not None:
                    rec.request_event(
                        now,
                        SPAN_ENQUEUE,
                        request,
                        queue_depth=depth_total,
                    )
                if depth_total > peak_depth:
                    peak_depth = depth_total
                if hedging:
                    # Armed once per request, at its first (admitted)
                    # enqueue; fires only if still unfinished then.
                    push(now + hedge_seconds, _HEDGE, request)
                if max_wait > 0:
                    push(now + max_wait, _TIMEOUT, None)
                try_dispatch(now)
            elif kind == _TIMEOUT:
                # The queue head may have exceeded its wait.
                try_dispatch(now)
            elif kind == _AUTOSCALE:
                # Observe the interval, maybe resize the fleet.
                interval_busy = busy_integral - tick_busy_mark
                interval_pool = pool_integral - tick_pool_mark
                tick_busy_mark = busy_integral
                tick_pool_mark = pool_integral
                snapshot = FleetSnapshot(
                    now=now,
                    provisioned=counts.target_size,
                    ready=counts.ready_count,
                    busy=counts.busy_count,
                    warming=counts.warming_count,
                    queue_depth=depth_total,
                    utilization=(
                        min(interval_busy / interval_pool, 1.0)
                        if interval_pool > 0
                        else 0.0
                    ),
                )
                target = autoscaler.decide(snapshot)
                if target != snapshot.provisioned:
                    for handle, ready_at in fleet.scale_to(target, now):
                        if ready_at > now:
                            push(ready_at, _WARMED, handle)
                    if rec is not None:
                        if typed:
                            rec.fleet_event(
                                now,
                                FLEET_SCALE,
                                previous=snapshot.provisioned,
                                target=target,
                                per_type=[
                                    list(row) for row in fleet.last_scale_detail
                                ],
                            )
                        else:
                            rec.fleet_event(
                                now,
                                FLEET_SCALE,
                                previous=snapshot.provisioned,
                                target=target,
                            )
                        for label in fleet.last_rescued:
                            rec.fleet_event(now, FLEET_RESCUE, instance=label)
                    scale_events.append(
                        ScalingEvent(
                            time=now,
                            previous=snapshot.provisioned,
                            target=target,
                            per_type=fleet.last_scale_detail if typed else (),
                        )
                    )
                    try_dispatch(now)
                peak_pool = max(peak_pool, counts.provisioned)
                min_pool = min(min_pool, counts.target_size)
                if events or depth_total > 0 or counts.busy_count > 0:
                    push(now + autoscaler.interval_seconds, _AUTOSCALE, None)
            elif kind == _FAULT:
                what, idx = payload  # type: ignore[misc]
                if what == "crash":
                    victim = injector.pick_victim(fleet.instance_ids(idx))
                    if victim is not None:
                        crash_instance((idx, victim), now, fault_spec.mttr)
                    gap = injector.next_crash_gap(
                        slices[idx].pool.provisioned
                    )
                    if now + gap < horizon:
                        push(now + gap, _FAULT, ("crash", idx))
                elif what == "slow":
                    slowdowns += 1
                    slow_until[idx] = now + fault_spec.slow_duration
                    if rec is not None:
                        rec.fleet_event(
                            now,
                            FLEET_SLOWDOWN,
                            type=slices[idx].itype.name,
                            factor=fault_spec.slow_factor,
                            until=slow_until[idx],
                        )
                    gap = injector.next_slowdown_gap()
                    if now + gap < horizon:
                        push(now + gap, _FAULT, ("slow", idx))
                else:  # zone outage: correlated teardown across slices
                    zone = injector.pick_zone()
                    zone_outages += 1
                    victims = [
                        (s.index, instance)
                        for s in slices
                        for instance in s.pool.instance_ids()
                        if injector.zone_of(instance) == zone
                    ]
                    if rec is not None:
                        rec.fleet_event(
                            now,
                            FLEET_ZONE_OUTAGE,
                            zone=zone,
                            killed=len(victims),
                        )
                    for crash_handle in victims:
                        crash_instance(crash_handle, now, fault_spec.zone_mttr)
                    gap = injector.next_zone_gap()
                    if now + gap < horizon:
                        push(now + gap, _FAULT, ("zone", -1))
            elif kind == _RECOVER:
                recoveries += 1
                handle, ready_at = fleet.restore(payload, now)  # type: ignore[arg-type]
                if rec is not None:
                    rec.fleet_event(
                        now,
                        FLEET_RECOVER,
                        instance=fleet.label(handle),
                        ready_at=ready_at,
                    )
                if ready_at > now:
                    push(ready_at, _WARMED, handle)
                else:
                    try_dispatch(now)
            elif kind == _RETRY:
                requeue(payload, now)  # type: ignore[arg-type]
            else:  # _HEDGE: duplicate a still-unfinished request
                request = payload  # type: ignore[assignment]
                primary = route_of.pop(request.request_id, None)
                if request.request_id not in finished_ids:
                    hedges_fired += 1
                    copies[request.request_id] = (
                        copies.get(request.request_id, 0) + 1
                    )
                    if rec is not None:
                        rec.request_event(now, SPAN_HEDGE_FIRED, request)
                    requeue(request, now, exclude=primary)

        if stats is not None:
            stats.offered = offered
        if rec is not None:
            rec.finish()
        if sampler is not None:
            # Extend the series through the run horizon so its length is a
            # deterministic function of horizon / interval alone.
            sampler.record(max(horizon, last_time), fleet_state())
        autoscale_stats = (
            AutoscaleStats(
                policy=autoscaler.kind,
                peak_instances=peak_pool,
                min_instances=min_pool,
                final_instances=counts.target_size,
                scale_out_events=sum(1 for e in scale_events if e.delta > 0),
                scale_in_events=sum(1 for e in scale_events if e.delta < 0),
                events=tuple(scale_events),
            )
            if autoscaler is not None
            else None
        )
        # Per-type usage + $-cost.  The homogeneous default fleet bills
        # $1/s, so its cost is exactly the instance-seconds integral and
        # the per-type breakdown stays empty (pre-fleet reports pinned).
        if typed:
            per_type = tuple(
                TypeUsage(
                    name=s.itype.name,
                    initial=self.fleet_spec.slices[i][1],
                    peak=s.peak,
                    final=s.pool.target_size,
                    instance_seconds=usage_at_makespan[i][0],
                    busy_seconds=usage_at_makespan[i][1],
                    cost_dollars=(
                        usage_at_makespan[i][0] * s.itype.cost_per_second
                    ),
                    batches=s.batches,
                    completed=s.completed,
                )
                for i, s in enumerate(slices)
            )
            cost_dollars = sum(u.cost_dollars for u in per_type)
        else:
            per_type = ()
            cost_dollars = pool_at_makespan
        registry = self.registry
        if registry is not None:
            if reliable:
                # Reliability counters appear only when the machinery was
                # armed: default-run registry contents stay pinned.
                registry.counter("requests_failed").inc(failed)
                registry.counter("requests_retried").inc(retry_count)
                registry.counter("instances_crashed").inc(crashes)
                registry.counter("instances_recovered").inc(recoveries)
                registry.counter("hedges_fired").inc(hedges_fired)
                registry.counter("hedges_cancelled").inc(hedges_cancelled)
            registry.counter("requests_offered").inc(offered)
            registry.counter("arrival_events").inc(arrived)
            registry.counter("requests_completed").inc(served)
            registry.counter("batches_dispatched").inc(batches)
            registry.counter("slo_violations").inc(burn.violations)
            if stats is not None:
                registry.counter("admission_admitted").inc(stats.admitted)
                registry.counter("admission_shed").inc(stats.shed)
                registry.counter("admission_tarpitted").inc(stats.tarpitted)
            registry.gauge("peak_queue_depth").set(peak_depth)
            registry.gauge("peak_instances").set(peak_pool)
            registry.gauge("final_instances").set(counts.target_size)
            registry.gauge("instance_seconds").set(pool_at_makespan)
            registry.gauge("makespan_seconds").set(makespan)
            if typed:
                registry.gauge("cost_dollars").set(cost_dollars)
                for u in per_type:
                    registry.gauge(f"instance_seconds[{u.name}]").set(
                        u.instance_seconds
                    )
                    registry.gauge(f"peak_instances[{u.name}]").set(u.peak)
                    registry.counter(f"requests_completed[{u.name}]").inc(
                        u.completed
                    )
                    registry.counter(f"batches_dispatched[{u.name}]").inc(
                        u.batches
                    )
            registry.attach_histogram("latency_seconds", overall_sketch)
            for tenant in sorted(tenant_sketches):
                registry.attach_histogram(
                    f"latency_seconds[{tenant}]", tenant_sketches[tenant]
                )
        return self._report(
            horizon=horizon,
            makespan=makespan,
            offered=offered,
            served=served,
            batches=batches,
            busy_seconds=busy_at_makespan,
            instance_seconds=pool_at_makespan,
            depth_integral=depth_integral,
            peak_depth=peak_depth,
            peak_pool=peak_pool,
            overall_sketch=overall_sketch,
            tenant_sketches=tenant_sketches,
            burn=burn,
            autoscale=autoscale_stats,
            admission_stats=stats,
            fleet_label=fleet_label,
            cost_dollars=cost_dollars,
            per_type=per_type,
            faults_label=fault_spec.render() if faulty else "",
            retry_label=(
                retry_policy.mode if retry_policy is not None else "none"
            ),
            failed=failed,
            retries=retry_count,
            crashes=crashes,
            recoveries=recoveries,
            slowdowns=slowdowns,
            zone_outages=zone_outages,
            hedges_fired=hedges_fired,
            hedges_cancelled=hedges_cancelled,
        )

    def _report(
        self,
        horizon: float,
        makespan: float,
        offered: int,
        served: int,
        batches: int,
        busy_seconds: float,
        instance_seconds: float,
        depth_integral: float,
        peak_depth: int,
        peak_pool: int,
        overall_sketch: object,
        tenant_sketches: dict[str, object],
        burn: BurnRateTracker,
        autoscale: AutoscaleStats | None,
        admission_stats: AdmissionStats | None,
        fleet_label: str = "",
        cost_dollars: float = 0.0,
        per_type: tuple[TypeUsage, ...] = (),
        faults_label: str = "",
        retry_label: str = "none",
        failed: int = 0,
        retries: int = 0,
        crashes: int = 0,
        recoveries: int = 0,
        slowdowns: int = 0,
        zone_outages: int = 0,
        hedges_fired: int = 0,
        hedges_cancelled: int = 0,
    ) -> ServingReport:
        window = makespan if makespan > 0 else 1.0
        tenants: dict[str, TenantReport] = {}
        for name in sorted(tenant_sketches):
            sketch = tenant_sketches[name]
            completed = sketch.count  # type: ignore[attr-defined]
            tenants[name] = TenantReport(
                tenant=name,
                completed=completed,
                throughput_qps=completed / window,
                latency=sketch.summary(),  # type: ignore[attr-defined]
                slo_violation_rate=burn.violations_for(name) / completed,
            )
        return ServingReport(
            horizon_seconds=horizon,
            makespan_seconds=makespan,
            instances=self.instances,
            slo_seconds=self.slo_seconds,
            offered=offered,
            completed=served,
            batches=batches,
            throughput_qps=served / window,
            utilization=(
                busy_seconds / instance_seconds if instance_seconds > 0 else 0.0
            ),
            mean_batch_size=served / batches if batches else 0.0,
            mean_queue_depth=depth_integral / window,
            peak_queue_depth=peak_depth,
            latency=overall_sketch.summary(),  # type: ignore[attr-defined]
            slo_violation_rate=burn.violations / served if served else 0.0,
            tenants=tenants,
            instance_seconds=instance_seconds,
            peak_instances=peak_pool,
            autoscale=autoscale,
            admission=admission_stats,
            burn=burn.report(),
            fleet=fleet_label,
            routing=self.routing,
            cost_dollars=cost_dollars,
            per_type=per_type,
            faults=faults_label,
            retry=retry_label,
            failed=failed,
            retries=retries,
            crashes=crashes,
            recoveries=recoveries,
            slowdowns=slowdowns,
            zone_outages=zone_outages,
            hedges_fired=hedges_fired,
            hedges_cancelled=hedges_cancelled,
            availability=(
                served / (served + failed) if served + failed > 0 else 1.0
            ),
        )
