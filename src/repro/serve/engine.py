"""Discrete-event serving simulation: arrivals -> admission -> batches -> replicas.

Same priority-queue idiom as the NoC event engine
(:mod:`repro.noc.events`): a heap of timestamped events, cost scaling
with the number of requests rather than with elapsed time.  Five event
kinds:

* ``DEPART`` — a replica finishes a batch: record per-request latencies,
  free (or retire) the instance, re-check the queue (and, closed-loop,
  owe each finished client its next request).
* ``WARMED`` — a scaled-out instance finished its warm-up delay and joins
  the serving pool.
* ``ARRIVE`` — a request reaches the admission controller; if admitted it
  joins the scheduler queue (and arms its max-wait deadline), otherwise
  it is shed on the spot or tarpitted and retried later.
* ``TIMEOUT`` — a queued request's deadline passed: dispatch whatever is
  waiting if a replica is free.
* ``AUTOSCALE`` — the autoscaler's evaluation tick: the policy sees a
  :class:`~repro.serve.autoscale.FleetSnapshot` and may grow or shrink
  the replica pool.

Events at the same instant process departures first (a freed replica can
serve a batch formed in the same instant), then warm-ups, arrivals, and
timeouts, with the autoscaler observing the settled state last; within a
kind, insertion order breaks ties — the whole simulation is a
deterministic function of the seeded inputs.

The replica pool itself is dynamic (:class:`ReplicaPool`): scale-out
provisions instances that bill immediately but serve only after their
warm-up, and scale-in retires idle instances at once while busy ones
drain their current batch first.  Billed capacity integrates into the
report's ``instance_seconds`` — the number the autoscaler exists to
shrink.

The output :class:`ServingReport` carries the SLO analytics: per-tenant
latency percentiles (via the shared
:func:`repro.noc.stats.summarize_latencies`), throughput, queue depths,
replica utilization, SLO-violation rates, windowed burn-rate analytics
(:class:`~repro.obs.slo.SloBurnReport`), and — when the corresponding
controller is attached — autoscaling and admission tallies.

Telemetry is injected, never hard-wired: the engine accepts an optional
:class:`~repro.obs.trace.TraceRecorder` (per-request lifecycle spans), a
:class:`~repro.obs.metrics.MetricRegistry` (counters/gauges/histograms
filled at report time), and a :class:`~repro.obs.metrics.Sampler`
(fixed-interval fleet-state series).  A disabled recorder is resolved to
``None`` before the event loop starts, so the default path pays one
attribute check per run, not per event.  Latency distributions go
through :mod:`repro.obs.sketch` — the ``"exact"`` backend keeps reports
bit-identical to the pre-telemetry engine, ``"p2"`` keeps memory
constant at web scale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.noc.stats import LatencySummary, summarize_latencies
from repro.obs.metrics import MetricRegistry, Sampler
from repro.obs.sketch import SKETCH_BACKENDS, make_sketch
from repro.obs.slo import BurnRateTracker, SloBurnReport
from repro.obs.trace import (
    FLEET_RESCUE,
    FLEET_SCALE,
    FLEET_WARMED,
    SPAN_ADMIT,
    SPAN_ARRIVE,
    SPAN_DEPART,
    SPAN_DISPATCH,
    SPAN_ENQUEUE,
    SPAN_SHED,
    SPAN_TARPIT,
    TraceRecorder,
)
from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.arrivals import ClosedLoopPool, Request
from repro.serve.autoscale import (
    AutoscalerPolicy,
    AutoscaleStats,
    FleetSnapshot,
    ScalingEvent,
)
from repro.serve.scheduler import BatchingScheduler
from repro.serve.service import ServiceModel

_DEPART = 0
_WARMED = 1
_ARRIVE = 2
_TIMEOUT = 3
_AUTOSCALE = 4


class ReplicaPool:
    """A dynamic set of replica instances with warm-up and draining.

    Instances move through four states: *warming* (provisioned, billed,
    not yet serving), *free* (idle, dispatchable), *busy* (occupied by a
    batch), and *retiring* (busy, will leave the pool when the batch
    finishes instead of returning to free).  ``provisioned`` counts
    everything billed; ``target_size`` excludes retiring instances — it
    is the size the pool is converging to and what the autoscaler reasons
    about.

    Scale-in removes the cheapest capacity first: instances still warming
    (nothing lost), then idle ones, and only then does it mark busy
    instances to retire on departure.  Scale-out conversely rescues
    retiring instances before provisioning cold ones — a draining replica
    is already warm.  All choices are by instance id, so the pool is
    deterministic.
    """

    def __init__(self, instances: int, warmup_seconds: float = 0.0) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        if warmup_seconds < 0:
            raise ValueError("warm-up must be non-negative")
        self.warmup_seconds = warmup_seconds
        self._free: list[int] = list(range(instances))
        heapq.heapify(self._free)
        self._busy: set[int] = set()
        self._retiring: set[int] = set()
        self._warming: dict[int, float] = {}
        self._next_id = instances
        #: Instances the most recent :meth:`scale_to` rescued from
        #: draining (already warm, so they rejoin without a warm-up) —
        #: what the trace recorder reports as ``rescue`` events.
        self.last_rescued: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def provisioned(self) -> int:
        """Billed instances: warming + free + busy (retiring included)."""
        return len(self._free) + len(self._busy) + len(self._warming)

    @property
    def target_size(self) -> int:
        """Where the pool is heading once retiring instances drain."""
        return self.provisioned - len(self._retiring)

    @property
    def ready_count(self) -> int:
        """Instances able to serve now (free + busy)."""
        return len(self._free) + len(self._busy)

    @property
    def busy_count(self) -> int:
        return len(self._busy)

    @property
    def warming_count(self) -> int:
        return len(self._warming)

    @property
    def retiring_count(self) -> int:
        return len(self._retiring)

    def has_free(self) -> bool:
        return bool(self._free)

    # ------------------------------------------------------------------
    # Dispatch lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> int:
        """Take the lowest-id free instance for a batch."""
        instance = heapq.heappop(self._free)
        self._busy.add(instance)
        return instance

    def release(self, instance: int) -> bool:
        """Return a finished instance; ``False`` when it retires instead."""
        self._busy.discard(instance)
        if instance in self._retiring:
            self._retiring.discard(instance)
            return False
        heapq.heappush(self._free, instance)
        return True

    def warmed(self, instance: int) -> bool:
        """Promote a warmed instance to free (``False`` if it was
        cancelled by a scale-in while still warming)."""
        if instance not in self._warming:
            return False
        del self._warming[instance]
        heapq.heappush(self._free, instance)
        return True

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale_to(self, target: int, now: float) -> list[tuple[int, float]]:
        """Move the pool's ``target_size`` to ``target``.

        Returns ``(instance, ready_time)`` for each newly provisioned
        instance so the engine can schedule its warm-up completion
        (``ready_time == now`` when there is no warm-up delay).
        """
        if target < 1:
            raise ValueError(f"cannot scale below one instance, got {target}")
        started: list[tuple[int, float]] = []
        rescued: list[int] = []
        # Grow: rescue draining instances first — they are already warm.
        while self.target_size < target and self._retiring:
            instance = min(self._retiring)
            self._retiring.discard(instance)
            rescued.append(instance)
        self.last_rescued = tuple(rescued)
        while self.target_size < target:
            instance = self._next_id
            self._next_id += 1
            if self.warmup_seconds > 0:
                ready_at = now + self.warmup_seconds
                self._warming[instance] = ready_at
                started.append((instance, ready_at))
            else:
                heapq.heappush(self._free, instance)
                started.append((instance, now))
        # Shrink: cancel warm-ups, then idle instances, then drain busy ones.
        while self.target_size > target and self._warming:
            del self._warming[max(self._warming)]
        while self.target_size > target and self._free:
            self._free.remove(max(self._free))
            heapq.heapify(self._free)
        while self.target_size > target:
            candidates = self._busy - self._retiring
            if not candidates:
                break
            self._retiring.add(max(candidates))
        return started


@dataclass(frozen=True)
class TenantReport:
    """SLO analytics for one tenant's completed requests."""

    tenant: str
    completed: int
    throughput_qps: float
    latency: LatencySummary
    slo_violation_rate: float


@dataclass(frozen=True)
class ServingReport:
    """Everything one serving simulation measured.

    ``instances`` is the initial fleet; with an autoscaler attached the
    fleet varies over time and ``instance_seconds`` (billed capacity
    integrated over the serving window) plus the ``autoscale`` trajectory
    tell the full story.  ``admission`` is ``None`` unless an admission
    controller gated the run.
    """

    horizon_seconds: float
    makespan_seconds: float
    instances: int
    slo_seconds: float
    offered: int
    completed: int
    batches: int
    throughput_qps: float
    utilization: float
    mean_batch_size: float
    mean_queue_depth: float
    peak_queue_depth: int
    latency: LatencySummary
    slo_violation_rate: float
    tenants: dict[str, TenantReport]
    instance_seconds: float = 0.0
    peak_instances: int = 0
    autoscale: AutoscaleStats | None = None
    admission: AdmissionStats | None = None
    burn: SloBurnReport | None = None

    def render(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""

        def ms(seconds: float) -> str:
            # Adaptive precision: sub-0.1 ms values would render as
            # "0.00 ms" at fixed precision, which reads as zero latency.
            value = seconds * 1e3
            if value != 0 and abs(value) < 0.1:
                return f"{value:.3g} ms"
            return f"{value:.2f} ms"

        lines = [
            f"served {self.completed}/{self.offered} requests in "
            f"{self.makespan_seconds:.3f} s on {self.instances} instance(s) "
            f"({self.batches} batches, mean size {self.mean_batch_size:.2f})",
            f"throughput {self.throughput_qps:.1f} req/s   "
            f"utilization {self.utilization:.1%}   "
            f"queue depth mean {self.mean_queue_depth:.2f} / "
            f"peak {self.peak_queue_depth}",
            f"latency  p50 {ms(self.latency.p50)}  p95 {ms(self.latency.p95)}  "
            f"p99 {ms(self.latency.p99)}  max {ms(self.latency.max)}",
            f"SLO {ms(self.slo_seconds)}: violation rate "
            f"{self.slo_violation_rate:.2%}",
        ]
        if self.autoscale is not None:
            a = self.autoscale
            lines.append(
                f"fleet[{a.policy}]: start {self.instances} -> peak "
                f"{a.peak_instances} / min {a.min_instances} / final "
                f"{a.final_instances}   {a.scale_out_events} scale-out(s), "
                f"{a.scale_in_events} scale-in(s)   "
                f"instance-seconds {self.instance_seconds:.3f}"
            )
            if a.events:
                shown = a.events[:10]
                steps = " ".join(
                    f"{e.previous}->{e.target}@{e.time:.2f}s" for e in shown
                )
                suffix = (
                    f" ... (+{len(a.events) - len(shown)} more)"
                    if len(a.events) > len(shown)
                    else ""
                )
                lines.append(f"  trajectory: {steps}{suffix}")
        if self.burn is not None:
            lines.extend(self.burn.render())
        if self.admission is not None:
            lines.append(self.admission.render())
        if self.tenants:
            lines.append("per-tenant:")
            for name in sorted(self.tenants):
                t = self.tenants[name]
                lines.append(
                    f"  {name:<12} n={t.latency.count:<7} "
                    f"p50 {ms(t.latency.p50)}  p95 {ms(t.latency.p95)}  "
                    f"p99 {ms(t.latency.p99)}  "
                    f"violations {t.slo_violation_rate:.2%}"
                )
        return "\n".join(lines)


def _empty_report(instances: int, slo_seconds: float, horizon: float) -> ServingReport:
    return ServingReport(
        horizon_seconds=horizon,
        makespan_seconds=0.0,
        instances=instances,
        slo_seconds=slo_seconds,
        offered=0,
        completed=0,
        batches=0,
        throughput_qps=0.0,
        utilization=0.0,
        mean_batch_size=0.0,
        mean_queue_depth=0.0,
        peak_queue_depth=0,
        latency=summarize_latencies([]),
        slo_violation_rate=0.0,
        tenants={},
        instance_seconds=0.0,
        peak_instances=instances,
    )


class ServingEngine:
    """Drive a scheduler + service model + replica pool over a workload.

    Args:
        scheduler: the batching scheduler owning the admission queue.
        service: per-batch service-time model.
        instances: initial replica count (the *whole* fleet when no
            autoscaler is attached).
        slo_seconds: per-request latency target for violation accounting.
        autoscaler: optional :class:`~repro.serve.autoscale
            .AutoscalerPolicy` evaluated on a fixed cadence; the replica
            pool then grows and shrinks mid-simulation.
        admission: optional :class:`~repro.serve.admission
            .AdmissionController` gating every arrival before it may
            enter the scheduler queue.
        warmup_seconds: provisioning delay for scaled-out instances (they
            bill immediately, serve only once warm; the initial fleet
            starts warm).
        recorder: optional :class:`~repro.obs.trace.TraceRecorder`
            receiving per-request lifecycle spans.  A recorder whose
            ``enabled`` is false (the :class:`~repro.obs.trace
            .NullRecorder` default) is dropped before the event loop, so
            tracing costs nothing unless it is on.
        registry: optional :class:`~repro.obs.metrics.MetricRegistry`
            filled with run counters/gauges and the latency sketches at
            report time.
        sampler: optional :class:`~repro.obs.metrics.Sampler` recording
            the fleet-state time series on its fixed simulated-time
            cadence.
        metrics_backend: latency-sketch backend (``"exact"`` stores every
            latency and keeps reports bit-identical to the pre-telemetry
            engine; ``"p2"`` is the constant-memory streaming estimator).
        violation_budget: the SLO error budget (fraction of requests
            allowed to violate) the burn-rate analytics measure against.
        burn_window_seconds: burn-rate window width; ``0`` picks an
            eighth of the run horizon automatically.
    """

    def __init__(
        self,
        scheduler: BatchingScheduler,
        service: ServiceModel,
        instances: int = 2,
        slo_seconds: float = 0.05,
        autoscaler: AutoscalerPolicy | None = None,
        admission: AdmissionController | None = None,
        warmup_seconds: float = 0.0,
        recorder: TraceRecorder | None = None,
        registry: MetricRegistry | None = None,
        sampler: Sampler | None = None,
        metrics_backend: str = "exact",
        violation_budget: float = 0.01,
        burn_window_seconds: float = 0.0,
    ) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        if slo_seconds <= 0:
            raise ValueError(f"SLO must be positive, got {slo_seconds}")
        if warmup_seconds < 0:
            raise ValueError("warm-up must be non-negative")
        if metrics_backend not in SKETCH_BACKENDS:
            raise ValueError(
                f"unknown metrics backend {metrics_backend!r}; "
                f"choose from {SKETCH_BACKENDS}"
            )
        if not 0 < violation_budget < 1:
            raise ValueError(
                f"violation budget must be a rate in (0, 1), got "
                f"{violation_budget}"
            )
        if burn_window_seconds < 0:
            raise ValueError("burn window must be non-negative")
        self.scheduler = scheduler
        self.service = service
        self.instances = instances
        self.slo_seconds = slo_seconds
        self.autoscaler = autoscaler
        self.admission = admission
        self.warmup_seconds = warmup_seconds
        self.recorder = recorder
        self.registry = registry
        self.sampler = sampler
        self.metrics_backend = metrics_backend
        self.violation_budget = violation_budget
        self.burn_window_seconds = burn_window_seconds

    def run(
        self,
        requests: Sequence[Request] | None = None,
        closed_loop: ClosedLoopPool | None = None,
        horizon_seconds: float | None = None,
    ) -> ServingReport:
        """Simulate one workload to completion.

        Exactly one of ``requests`` (open-loop: the pre-generated stream)
        or ``closed_loop`` (a client pool the simulation drives) must be
        given.  ``horizon_seconds`` stops *admission* — requests arriving
        at or after it are dropped (closed-loop pools stop spawning), and
        tarpitted requests still refused at the horizon are shed — but
        everything admitted is served to completion.  Closed-loop runs
        require a horizon or they would never terminate.
        """
        if (requests is None) == (closed_loop is None):
            raise ValueError("provide exactly one of requests / closed_loop")
        if closed_loop is not None and horizon_seconds is None:
            raise ValueError("closed-loop runs need horizon_seconds")
        if horizon_seconds is not None and horizon_seconds <= 0:
            raise ValueError("horizon must be positive")

        scheduler = self.scheduler
        autoscaler = self.autoscaler
        admission = self.admission
        if autoscaler is not None:
            autoscaler.reset()
        if admission is not None:
            admission.reset()
        events: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, kind, seq, payload))
            seq += 1

        initial = (
            list(requests) if requests is not None else closed_loop.initial_requests()
        )
        offered = 0
        for request in sorted(
            initial, key=lambda r: (r.arrival_time, r.request_id)
        ):
            if horizon_seconds is not None and request.arrival_time >= horizon_seconds:
                continue
            push(request.arrival_time, _ARRIVE, request)
            offered += 1
        horizon = horizon_seconds or max(
            (r.arrival_time for r in initial), default=0.0
        )
        if not events:
            return _empty_report(self.instances, self.slo_seconds, horizon)

        # Telemetry collaborators.  A disabled recorder resolves to None
        # here, once, so the event loop below never pays for tracing it
        # is not doing.
        recorder = self.recorder
        rec = recorder if recorder is not None and recorder.enabled else None
        sampler = self.sampler
        seen_requests: set[int] = set()  # first-arrival dedup, tracing only
        burn = BurnRateTracker(
            slo_seconds=self.slo_seconds,
            budget=self.violation_budget,
            window_seconds=self.burn_window_seconds
            or max(horizon / 8.0, 1e-9),
        )

        pool = ReplicaPool(self.instances, warmup_seconds=self.warmup_seconds)
        busy_integral = 0.0  # busy instances x time
        pool_integral = 0.0  # provisioned (billed) instances x time
        busy_at_makespan = 0.0
        pool_at_makespan = 0.0
        batches = 0
        served = 0
        arrived = 0
        overall_sketch = make_sketch(self.metrics_backend)
        tenant_sketches: dict[str, object] = {}
        depth_integral = 0.0
        peak_depth = 0
        peak_pool = pool.provisioned
        min_pool = pool.provisioned
        last_time = 0.0
        makespan = 0.0
        scale_events: list[ScalingEvent] = []
        tick_busy_mark = 0.0
        tick_pool_mark = 0.0
        stats = (
            AdmissionStats(mode=admission.mode) if admission is not None else None
        )
        if autoscaler is not None:
            push(autoscaler.interval_seconds, _AUTOSCALE, None)

        def spawn_follow_up(now: float) -> None:
            """Closed loop: a finished (or refused) client owes its next request."""
            nonlocal offered
            follow_up = closed_loop.next_request(now)
            if follow_up.arrival_time < horizon:
                push(follow_up.arrival_time, _ARRIVE, follow_up)
                offered += 1

        def try_dispatch(now: float) -> None:
            nonlocal batches
            while pool.has_free() and scheduler.ready(now):
                batch = scheduler.pop_batch(now)
                instance = pool.acquire()
                seconds = self.service.batch_service_seconds(batch.graph_sizes)
                batches += 1
                if rec is not None:
                    for request in batch.requests:
                        rec.request_event(
                            now,
                            SPAN_DISPATCH,
                            request,
                            instance=instance,
                            batch_size=len(batch.requests),
                            service_seconds=seconds,
                        )
                push(now + seconds, _DEPART, (instance, batch))

        def fleet_state() -> dict[str, object]:
            """What one Sampler row holds (state before the current event)."""
            return {
                "ready": pool.ready_count,
                "warming": pool.warming_count,
                "busy": pool.busy_count,
                "retiring": pool.retiring_count,
                "provisioned": pool.provisioned,
                "queue_depth": scheduler.queue_depth,
                "arrived": arrived,
                "admitted": stats.admitted if stats is not None else arrived,
                "shed": stats.shed if stats is not None else 0,
                "tarpitted": stats.tarpitted if stats is not None else 0,
                "completed": served,
                "utilization": (
                    round(busy_integral / pool_integral, 9)
                    if pool_integral > 0
                    else 0.0
                ),
            }

        while events:
            now, kind, _, payload = heapq.heappop(events)
            dt = now - last_time
            depth_integral += scheduler.queue_depth * dt
            busy_integral += pool.busy_count * dt
            pool_integral += pool.provisioned * dt
            last_time = now
            if sampler is not None and now >= sampler.next_time:
                sampler.record(now, fleet_state())
            if kind == _DEPART:
                # Only departures advance the makespan: stale TIMEOUT (or
                # autoscale-tick) events outliving the last departure are
                # no-ops and must not inflate the throughput/utilization
                # window — the billing integrals are snapshotted here too.
                makespan = now
                busy_at_makespan = busy_integral
                pool_at_makespan = pool_integral
                instance, batch = payload  # type: ignore[misc]
                pool.release(instance)
                for request in batch.requests:
                    latency = now - request.arrival_time
                    sketch = tenant_sketches.get(request.tenant)
                    if sketch is None:
                        sketch = tenant_sketches[request.tenant] = make_sketch(
                            self.metrics_backend
                        )
                    sketch.add(latency)  # type: ignore[attr-defined]
                    overall_sketch.add(latency)
                    violated = burn.observe(now, request.tenant, latency)
                    served += 1
                    if rec is not None:
                        rec.request_event(
                            now,
                            SPAN_DEPART,
                            request,
                            instance=instance,
                            latency=latency,
                            violated=violated,
                        )
                    if closed_loop is not None:
                        spawn_follow_up(now)
                try_dispatch(now)
            elif kind == _WARMED:
                if pool.warmed(payload):  # type: ignore[arg-type]
                    if rec is not None:
                        rec.fleet_event(now, FLEET_WARMED, instance=payload)
                    try_dispatch(now)
            elif kind == _ARRIVE:
                request = payload  # type: ignore[assignment]
                arrived += 1
                if rec is not None and request.request_id not in seen_requests:
                    seen_requests.add(request.request_id)
                    rec.request_event(now, SPAN_ARRIVE, request)
                if admission is not None:
                    decision = admission.admit(
                        request.tenant, now, scheduler.queue_depth
                    )
                    if not decision.admitted:
                        retry_at = now + decision.retry_after_seconds
                        if decision.retry_after_seconds > 0 and retry_at < horizon:
                            stats.tarpitted += 1
                            if rec is not None:
                                rec.request_event(
                                    now,
                                    SPAN_TARPIT,
                                    request,
                                    reason=decision.reason,
                                    retry_at=retry_at,
                                )
                            push(retry_at, _ARRIVE, request)
                        else:
                            stats.shed += 1
                            stats.shed_by_reason[decision.reason] = (
                                stats.shed_by_reason.get(decision.reason, 0) + 1
                            )
                            stats.per_tenant_shed[request.tenant] = (
                                stats.per_tenant_shed.get(request.tenant, 0) + 1
                            )
                            if rec is not None:
                                rec.request_event(
                                    now,
                                    SPAN_SHED,
                                    request,
                                    reason=decision.reason,
                                )
                            if closed_loop is not None:
                                # The refused client errors out and retries
                                # after a backoff.  The backoff (reusing the
                                # controller's tarpit delay) guarantees the
                                # clock advances even for zero-think-time
                                # pools — an instant retry against a still-
                                # full queue would livelock the simulation.
                                spawn_follow_up(now + admission.tarpit_seconds)
                        continue
                    stats.admitted += 1
                    if rec is not None:
                        rec.request_event(
                            now, SPAN_ADMIT, request, reason=decision.reason
                        )
                elif rec is not None:
                    rec.request_event(now, SPAN_ADMIT, request, reason="open")
                scheduler.enqueue(request)
                if rec is not None:
                    rec.request_event(
                        now,
                        SPAN_ENQUEUE,
                        request,
                        queue_depth=scheduler.queue_depth,
                    )
                peak_depth = max(peak_depth, scheduler.queue_depth)
                if scheduler.max_wait_seconds > 0:
                    push(now + scheduler.max_wait_seconds, _TIMEOUT, None)
                try_dispatch(now)
            elif kind == _TIMEOUT:
                # The queue head may have exceeded its wait.
                try_dispatch(now)
            else:  # _AUTOSCALE: observe the interval, maybe resize the pool.
                interval_busy = busy_integral - tick_busy_mark
                interval_pool = pool_integral - tick_pool_mark
                tick_busy_mark = busy_integral
                tick_pool_mark = pool_integral
                snapshot = FleetSnapshot(
                    now=now,
                    provisioned=pool.target_size,
                    ready=pool.ready_count,
                    busy=pool.busy_count,
                    warming=pool.warming_count,
                    queue_depth=scheduler.queue_depth,
                    utilization=(
                        min(interval_busy / interval_pool, 1.0)
                        if interval_pool > 0
                        else 0.0
                    ),
                )
                target = autoscaler.decide(snapshot)
                if target != snapshot.provisioned:
                    for instance, ready_at in pool.scale_to(target, now):
                        if ready_at > now:
                            push(ready_at, _WARMED, instance)
                    if rec is not None:
                        rec.fleet_event(
                            now,
                            FLEET_SCALE,
                            previous=snapshot.provisioned,
                            target=target,
                        )
                        for instance in pool.last_rescued:
                            rec.fleet_event(now, FLEET_RESCUE, instance=instance)
                    scale_events.append(
                        ScalingEvent(
                            time=now, previous=snapshot.provisioned, target=target
                        )
                    )
                    try_dispatch(now)
                peak_pool = max(peak_pool, pool.provisioned)
                min_pool = min(min_pool, pool.target_size)
                if events or scheduler.queue_depth > 0 or pool.busy_count > 0:
                    push(now + autoscaler.interval_seconds, _AUTOSCALE, None)

        if stats is not None:
            stats.offered = offered
        if rec is not None:
            rec.finish()
        if sampler is not None:
            # Extend the series through the run horizon so its length is a
            # deterministic function of horizon / interval alone.
            sampler.record(max(horizon, last_time), fleet_state())
        autoscale_stats = (
            AutoscaleStats(
                policy=autoscaler.kind,
                peak_instances=peak_pool,
                min_instances=min_pool,
                final_instances=pool.target_size,
                scale_out_events=sum(1 for e in scale_events if e.delta > 0),
                scale_in_events=sum(1 for e in scale_events if e.delta < 0),
                events=tuple(scale_events),
            )
            if autoscaler is not None
            else None
        )
        registry = self.registry
        if registry is not None:
            registry.counter("requests_offered").inc(offered)
            registry.counter("arrival_events").inc(arrived)
            registry.counter("requests_completed").inc(served)
            registry.counter("batches_dispatched").inc(batches)
            registry.counter("slo_violations").inc(burn.violations)
            if stats is not None:
                registry.counter("admission_admitted").inc(stats.admitted)
                registry.counter("admission_shed").inc(stats.shed)
                registry.counter("admission_tarpitted").inc(stats.tarpitted)
            registry.gauge("peak_queue_depth").set(peak_depth)
            registry.gauge("peak_instances").set(peak_pool)
            registry.gauge("final_instances").set(pool.target_size)
            registry.gauge("instance_seconds").set(pool_at_makespan)
            registry.gauge("makespan_seconds").set(makespan)
            registry.attach_histogram("latency_seconds", overall_sketch)
            for tenant in sorted(tenant_sketches):
                registry.attach_histogram(
                    f"latency_seconds[{tenant}]", tenant_sketches[tenant]
                )
        return self._report(
            horizon=horizon,
            makespan=makespan,
            offered=offered,
            served=served,
            batches=batches,
            busy_seconds=busy_at_makespan,
            instance_seconds=pool_at_makespan,
            depth_integral=depth_integral,
            peak_depth=peak_depth,
            peak_pool=peak_pool,
            overall_sketch=overall_sketch,
            tenant_sketches=tenant_sketches,
            burn=burn,
            autoscale=autoscale_stats,
            admission_stats=stats,
        )

    def _report(
        self,
        horizon: float,
        makespan: float,
        offered: int,
        served: int,
        batches: int,
        busy_seconds: float,
        instance_seconds: float,
        depth_integral: float,
        peak_depth: int,
        peak_pool: int,
        overall_sketch: object,
        tenant_sketches: dict[str, object],
        burn: BurnRateTracker,
        autoscale: AutoscaleStats | None,
        admission_stats: AdmissionStats | None,
    ) -> ServingReport:
        window = makespan if makespan > 0 else 1.0
        tenants: dict[str, TenantReport] = {}
        for name in sorted(tenant_sketches):
            sketch = tenant_sketches[name]
            completed = sketch.count  # type: ignore[attr-defined]
            tenants[name] = TenantReport(
                tenant=name,
                completed=completed,
                throughput_qps=completed / window,
                latency=sketch.summary(),  # type: ignore[attr-defined]
                slo_violation_rate=burn.violations_for(name) / completed,
            )
        return ServingReport(
            horizon_seconds=horizon,
            makespan_seconds=makespan,
            instances=self.instances,
            slo_seconds=self.slo_seconds,
            offered=offered,
            completed=served,
            batches=batches,
            throughput_qps=served / window,
            utilization=(
                busy_seconds / instance_seconds if instance_seconds > 0 else 0.0
            ),
            mean_batch_size=served / batches if batches else 0.0,
            mean_queue_depth=depth_integral / window,
            peak_queue_depth=peak_depth,
            latency=overall_sketch.summary(),  # type: ignore[attr-defined]
            slo_violation_rate=burn.violations / served if served else 0.0,
            tenants=tenants,
            instance_seconds=instance_seconds,
            peak_instances=peak_pool,
            autoscale=autoscale,
            admission=admission_stats,
            burn=burn.report(),
        )
