"""Routing policies: which queue a request joins, which queues a type drains.

The pre-fleet engine had exactly one queue; with typed fleets
(:mod:`repro.serve.fleet`) a *routing policy* sits between admission and
the per-target batching schedulers.  A policy declares a set of **targets**
(queue names), maps each admitted request to one target
(:meth:`RoutingPolicy.route`), and tells each instance type which targets
it drains and in what priority order (:meth:`RoutingPolicy.serves`).

The default :class:`SharedQueueRouting` keeps the single shared queue:
every type drains the one :data:`SHARED` target, so a homogeneous fleet
behind it is *bit-identical* to the pre-routing engine — the differential
oracle the regression suite pins.  The typed policies each split the
queue by instance type:

* :class:`SizeAffinityRouting` — large graphs go to the fastest type
  (lowest ``service_scale``); everything else spreads across the
  remaining types by queue depth.  This is the policy that makes a
  heterogeneous fleet pay off: the expensive fast instances serve only
  the requests whose tail actually needs them.
* :class:`PowerOfTwoRouting` — the classic load balancer: sample two
  type queues with a seeded RNG, join the shallower.
* :class:`TenantPinRouting` — each tenant is pinned to one type
  (first-seen round-robin across types), giving per-tenant isolation at
  the fleet level.

All policies are deterministic functions of the seeded request stream:
po2's RNG is seeded, pinning follows first-seen order, and every
tie-break falls back to declaration order.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.serve.arrivals import Request
from repro.serve.fleet import InstanceType

#: The single-queue target name (the pre-routing engine's only queue).
SHARED = "shared"


class RoutingPolicy:
    """Base class: target declaration + request-to-target mapping.

    One policy instance is owned by one engine run (policies may hold
    routing state — RNG position, tenant pins); the engine constructs a
    fresh policy per run, so repeated runs stay deterministic.

    Args:
        types: the fleet's instance types, in declaration order.
        seed: scenario seed (only randomized policies consume it).
    """

    #: Registry name (shows up in scenario labels and reports).
    name = "base"

    def __init__(self, types: Sequence[InstanceType], seed: int = 0) -> None:
        if not types:
            raise ValueError("routing needs at least one instance type")
        self.types = tuple(types)
        self.seed = seed

    def targets(self) -> tuple[str, ...]:
        """Queue names this policy routes to, in declaration order."""
        raise NotImplementedError

    def serves(self, type_name: str) -> tuple[str, ...]:
        """Targets an instance of ``type_name`` drains, highest priority
        first."""
        raise NotImplementedError

    def route(
        self, request: Request, depth_of: Callable[[str], int]
    ) -> str:
        """The target ``request`` joins (``depth_of`` reads queue depths)."""
        raise NotImplementedError


class SharedQueueRouting(RoutingPolicy):
    """One queue for everyone — the pre-routing engine, kept bit-identical.

    Every instance type drains the single :data:`SHARED` target, so with
    a homogeneous ``default`` fleet the whole routing layer degenerates
    to exactly the original dispatch loop.
    """

    name = "shared_queue"

    def targets(self) -> tuple[str, ...]:
        return (SHARED,)

    def serves(self, type_name: str) -> tuple[str, ...]:
        return (SHARED,)

    def route(
        self, request: Request, depth_of: Callable[[str], int]
    ) -> str:
        return SHARED


class _PerTypeRouting(RoutingPolicy):
    """Shared shape for the type-partitioned policies: one queue per
    instance type, each type draining only its own queue."""

    def targets(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.types)

    def serves(self, type_name: str) -> tuple[str, ...]:
        return (type_name,)


class SizeAffinityRouting(_PerTypeRouting):
    """Steer large graphs to the fastest type; balance the rest by depth.

    The *fast* type is the one with the lowest ``service_scale`` (ties
    break toward the higher batch ceiling, then declaration order) — the
    hardware worth paying for when a request's service time dominates its
    latency.  Requests with ``graph_size >= large_threshold`` nodes route
    there; everything else joins the shallowest of the remaining type
    queues (ties to declaration order), so the cheap capacity stays
    evenly loaded.

    With a single declared type every request trivially routes to it.
    """

    name = "size_affinity"

    def __init__(
        self,
        types: Sequence[InstanceType],
        seed: int = 0,
        large_threshold: int = 2048,
    ) -> None:
        super().__init__(types, seed)
        if large_threshold < 1:
            raise ValueError("large_threshold must be >= 1")
        self.large_threshold = large_threshold
        ranked = sorted(
            range(len(self.types)),
            key=lambda i: (
                self.types[i].service_scale,
                -self.types[i].max_batch,
                i,
            ),
        )
        self.fast_target = self.types[ranked[0]].name
        self.small_targets = tuple(
            self.types[i].name for i in sorted(ranked[1:])
        ) or (self.fast_target,)

    def route(
        self, request: Request, depth_of: Callable[[str], int]
    ) -> str:
        if request.graph_size >= self.large_threshold:
            return self.fast_target
        return min(self.small_targets, key=depth_of)


class PowerOfTwoRouting(_PerTypeRouting):
    """Power-of-two-choices on queue depth across the type queues.

    Each request samples two distinct type queues with a seeded RNG and
    joins the shallower (ties to the earlier declared type) — the
    textbook randomized balancer whose max load is exponentially better
    than random placement.  With one declared type there is nothing to
    choose.
    """

    name = "po2"

    def __init__(self, types: Sequence[InstanceType], seed: int = 0) -> None:
        super().__init__(types, seed)
        self._rng = random.Random(seed)
        self._names = tuple(t.name for t in self.types)
        self._index = {name: i for i, name in enumerate(self._names)}

    def route(
        self, request: Request, depth_of: Callable[[str], int]
    ) -> str:
        if len(self._names) == 1:
            return self._names[0]
        a, b = self._rng.sample(self._names, 2)
        da, db = depth_of(a), depth_of(b)
        if da != db:
            return a if da < db else b
        return a if self._index[a] < self._index[b] else b


class TenantPinRouting(_PerTypeRouting):
    """Pin each tenant to one instance type (first-seen round-robin).

    The first tenant observed is pinned to the first declared type, the
    second to the second, and so on, wrapping around — deterministic
    because the seeded arrival stream fixes first-seen order.  Every
    request of a tenant then stays on its pinned type's queue, isolating
    tenants from each other's bursts at the fleet level.
    """

    name = "tenant_pin"

    def __init__(self, types: Sequence[InstanceType], seed: int = 0) -> None:
        super().__init__(types, seed)
        self._names = tuple(t.name for t in self.types)
        self._pins: dict[str, str] = {}

    def pin_for(self, tenant: str) -> str:
        """The type a tenant is (or would next be) pinned to."""
        pin = self._pins.get(tenant)
        if pin is None:
            pin = self._names[len(self._pins) % len(self._names)]
            self._pins[tenant] = pin
        return pin

    def route(
        self, request: Request, depth_of: Callable[[str], int]
    ) -> str:
        return self.pin_for(request.tenant)


#: Routing-policy registry (CLI / scenario ``routing`` knob).
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    "shared_queue": SharedQueueRouting,
    "size_affinity": SizeAffinityRouting,
    "po2": PowerOfTwoRouting,
    "tenant_pin": TenantPinRouting,
}


def make_routing(
    name: str, types: Sequence[InstanceType], seed: int = 0, **kwargs
) -> RoutingPolicy:
    """Instantiate a registered routing policy by name.

    Extra keyword arguments forward to the policy's constructor (e.g.
    ``large_threshold`` for ``size_affinity``).
    """
    try:
        cls = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"choose from {sorted(ROUTING_POLICIES)}"
        ) from None
    return cls(types, seed=seed, **kwargs)
