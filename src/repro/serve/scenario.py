"""Declarative serving scenarios: one evaluation point of the serving engine.

A :class:`ServingScenario` mirrors the architecture layer's
:class:`~repro.campaign.spec.Scenario` contract (frozen dataclass with a
``label`` field and ``auto_label()``), so the generic
:class:`~repro.campaign.spec.CampaignSpec` machinery sweeps serving knobs
— QPS x batch size x instances and friends — with no new cross-product
code.  :func:`run_serving_scenario` is the leaf evaluator; its flat
:class:`ServingRecord` output persists in the same content-addressed
:class:`~repro.campaign.store.ResultStore` as architecture results, keyed
by :func:`serving_key`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.campaign.store import ResultStore
from repro.serve.arrivals import ARRIVALS, TenantMix, make_arrivals
from repro.serve.engine import ServingEngine, ServingReport
from repro.serve.scheduler import POLICIES, BatchingScheduler
from repro.serve.service import AcceleratorServiceModel, ServiceModel
from repro.utils.hashing import stable_digest

#: Bump when the serving model changes in a way that invalidates cached
#: serving records (participates in every serving scenario's content hash).
SERVE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ServingScenario:
    """One serving evaluation point: workload + scheduler + fleet knobs.

    Attributes:
        dataset / scale: the accelerator workload that calibrates the
            service-time model (defaults match the campaign presets).
        arrival: open-loop arrival model (``poisson``/``mmpp``/``diurnal``).
        qps: nominal offered load, requests per second.
        duration_seconds: admission window; everything admitted is served.
        num_tenants: equal-weight tenants sharing the stream.
        max_batch: scheduler batch-size cap.
        max_wait_seconds: scheduler deadline for the oldest queued request.
        policy: batch composition (``fifo``/``wfq``).
        instances: replicated accelerator instances.
        slo_seconds: per-request latency target for violation accounting.
        seed: RNG seed for arrivals and service-model calibration.
        label: display name; auto-derived when empty.
    """

    dataset: str = "ppi"
    scale: float = 0.05
    arrival: str = "poisson"
    qps: float = 100.0
    duration_seconds: float = 2.0
    num_tenants: int = 2
    max_batch: int = 8
    max_wait_seconds: float = 0.005
    policy: str = "fifo"
    instances: int = 2
    slo_seconds: float = 0.05
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival model {self.arrival!r}; "
                f"choose from {sorted(ARRIVALS)}"
            )
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.num_tenants < 1:
            raise ValueError("need at least one tenant")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.slo_seconds <= 0:
            raise ValueError("SLO must be positive")

    @property
    def display_label(self) -> str:
        return self.label or self.auto_label()

    def auto_label(self) -> str:
        """Readable name derived from the discriminating knobs."""
        parts = [self.arrival, f"q{self.qps:g}", f"b{self.max_batch}",
                 f"i{self.instances}"]
        if self.policy != "fifo":
            parts.append(self.policy)
        if self.num_tenants != 2:
            parts.append(f"t{self.num_tenants}")
        parts.append(f"s{self.seed}")
        return "-".join(parts)

    def describe(self) -> dict[str, Any]:
        """Plain-dict form (what serving records and exports carry)."""
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "label"}
        out["label"] = self.display_label
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingScenario":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in names})

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def tenant_mix(self) -> TenantMix:
        return TenantMix.uniform(self.num_tenants)

    def build_arrivals(self):
        """The scenario's arrival process.

        The diurnal "day" is compressed to the admission window so every
        simulation sees one full peak-and-trough cycle (and the window's
        time-average rate equals the nominal QPS) regardless of duration.
        """
        extra = (
            {"period_seconds": self.duration_seconds}
            if self.arrival == "diurnal"
            else {}
        )
        return make_arrivals(
            self.arrival,
            self.qps,
            mix=self.tenant_mix(),
            seed=self.seed,
            **extra,
        )

    def build_scheduler(self) -> BatchingScheduler:
        return BatchingScheduler(
            max_batch=self.max_batch,
            max_wait_seconds=self.max_wait_seconds,
            policy=self.policy,
        )

    def build_engine(self, service: ServiceModel) -> ServingEngine:
        return ServingEngine(
            scheduler=self.build_scheduler(),
            service=service,
            instances=self.instances,
            slo_seconds=self.slo_seconds,
        )


def serving_key(scenario: ServingScenario) -> str:
    """Content hash of everything that determines a serving outcome."""
    payload = scenario.describe()
    del payload["label"]  # presentation, not content
    payload["schema"] = SERVE_SCHEMA_VERSION
    payload["kind"] = "serving"
    return stable_digest(payload)


@dataclass(frozen=True)
class ServingRecord:
    """Flat, JSON-serializable outcome of one serving scenario."""

    label: str
    key: str
    scenario: dict[str, Any]
    offered: int
    completed: int
    throughput_qps: float
    utilization: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    max_latency_seconds: float
    slo_violation_rate: float
    mean_queue_depth: float
    peak_queue_depth: int
    mean_batch_size: float
    eval_seconds: float
    cached: bool = False

    def metrics(self) -> dict[str, float]:
        """The measured outcome alone — invariant under caching/timing."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "throughput_qps": self.throughput_qps,
            "utilization": self.utilization,
            "mean_latency_seconds": self.mean_latency_seconds,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "max_latency_seconds": self.max_latency_seconds,
            "slo_violation_rate": self.slo_violation_rate,
            "mean_queue_depth": self.mean_queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "mean_batch_size": self.mean_batch_size,
        }

    def to_dict(self) -> dict[str, Any]:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], cached: bool = False
    ) -> "ServingRecord":
        payload = {
            k: v for k, v in dict(data).items() if k in cls.__dataclass_fields__
        }
        payload["cached"] = cached
        return cls(**payload)

    @classmethod
    def from_report(
        cls,
        scenario: ServingScenario,
        report: ServingReport,
        key: str,
        eval_seconds: float,
    ) -> "ServingRecord":
        return cls(
            label=scenario.display_label,
            key=key,
            scenario=scenario.describe(),
            offered=report.offered,
            completed=report.completed,
            throughput_qps=report.throughput_qps,
            utilization=report.utilization,
            mean_latency_seconds=report.latency.mean,
            p50_latency_seconds=report.latency.p50,
            p95_latency_seconds=report.latency.p95,
            p99_latency_seconds=report.latency.p99,
            max_latency_seconds=report.latency.max,
            slo_violation_rate=report.slo_violation_rate,
            mean_queue_depth=report.mean_queue_depth,
            peak_queue_depth=report.peak_queue_depth,
            mean_batch_size=report.mean_batch_size,
            eval_seconds=eval_seconds,
        )


#: In-process calibration cache: the accelerator service model evaluates
#: once per (dataset, scale, seed) and every scenario sharing that
#: workload reuses the calibrated pipeline numbers.
_SERVICE_CACHE: dict[tuple[str, float, int], AcceleratorServiceModel] = {}


def _service_for(scenario: ServingScenario) -> AcceleratorServiceModel:
    cache_key = (scenario.dataset, scenario.scale, scenario.seed)
    model = _SERVICE_CACHE.get(cache_key)
    if model is None:
        model = AcceleratorServiceModel(
            dataset=scenario.dataset, scale=scenario.scale, seed=scenario.seed
        )
        _SERVICE_CACHE[cache_key] = model
    return model


def simulate_serving_scenario(
    scenario: ServingScenario, service: ServiceModel | None = None
) -> ServingReport:
    """Run one scenario through the engine and return the full report."""
    service = service if service is not None else _service_for(scenario)
    arrivals = scenario.build_arrivals()
    engine = scenario.build_engine(service)
    return engine.run(
        requests=arrivals.generate(scenario.duration_seconds),
        horizon_seconds=scenario.duration_seconds,
    )


def run_serving_scenario(
    scenario: ServingScenario,
    service: ServiceModel | None = None,
    store: ResultStore | None = None,
    key: str | None = None,
) -> ServingRecord:
    """Evaluate one serving scenario, consulting/feeding the result store.

    A custom ``service`` model bypasses the store entirely — the cache key
    only describes the scenario, not an arbitrary injected model.
    """
    key = key if key is not None else serving_key(scenario)
    if store is not None and service is None:
        stored = store.get(key)
        if stored is not None:
            return ServingRecord.from_dict(stored, cached=True)
    start = time.perf_counter()
    report = simulate_serving_scenario(scenario, service=service)
    record = ServingRecord.from_report(
        scenario, report, key, eval_seconds=time.perf_counter() - start
    )
    if store is not None and service is None:
        store.put(key, record.to_dict())
    return record


def scenario_with(scenario: ServingScenario, **overrides: Any) -> ServingScenario:
    """``dataclasses.replace`` with the label re-derived from the knobs."""
    changed = replace(scenario, **overrides, label="")
    return replace(changed, label=changed.auto_label())
