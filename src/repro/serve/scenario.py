"""Declarative serving scenarios: one evaluation point of the serving engine.

A :class:`ServingScenario` mirrors the architecture layer's
:class:`~repro.campaign.spec.Scenario` contract (frozen dataclass with a
``label`` field and ``auto_label()``), so the generic
:class:`~repro.campaign.spec.CampaignSpec` machinery sweeps serving knobs
— QPS x batch size x instances and friends — with no new cross-product
code.  :func:`run_serving_scenario` is the leaf evaluator; its flat
:class:`ServingRecord` output persists in the same content-addressed
:class:`~repro.campaign.store.ResultStore` as architecture results, keyed
by :func:`serving_key`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.campaign.store import ResultStore
from repro.obs.metrics import MetricRegistry, Sampler
from repro.obs.sketch import SKETCH_BACKENDS
from repro.obs.trace import TraceRecorder
from repro.serve.admission import ADMISSION_MODES, AdmissionController
from repro.serve.arrivals import (
    ARRIVALS,
    ArrivalProcess,
    TenantMix,
    make_arrivals,
)
from repro.serve.autoscale import AUTOSCALERS, AutoscalerPolicy, make_autoscaler
from repro.serve.engine import ServingEngine, ServingReport
from repro.serve.faults import FaultSpec
from repro.serve.fleet import FleetSpec
from repro.serve.retry import RETRY_POLICIES, make_retry_policy
from repro.serve.routing import ROUTING_POLICIES
from repro.serve.scheduler import POLICIES, BatchingScheduler
from repro.serve.service import AcceleratorServiceModel, ServiceModel
from repro.utils.hashing import stable_digest

#: Bump when the serving model changes in a way that invalidates cached
#: serving records (participates in every serving scenario's content hash).
#: v2: closed-loop autoscaling + admission control (dynamic replica pool,
#: instance-seconds accounting, shed/tarpit tallies).
#: v3: telemetry — sketch-backed latency accounting, SLO burn-rate
#: analytics (new scenario knobs + burn fields on the record).
#: v4: heterogeneous fleets — typed instances, routing policies, $-cost
#: accounting (``fleet``/``routing`` knobs; records gain cost fields).
#: v5: reliability — fault injection, retries, hedged dispatch
#: (``faults``/``retry``/``hedge_seconds`` knobs; records gain
#: failure/availability fields).
SERVE_SCHEMA_VERSION = 5


@dataclass(frozen=True)
class ServingScenario:
    """One serving evaluation point: workload + scheduler + fleet knobs.

    Attributes:
        dataset / scale: the accelerator workload that calibrates the
            service-time model (defaults match the campaign presets).
        arrival: open-loop arrival model (``poisson``/``mmpp``/``diurnal``).
        qps: nominal offered load, requests per second.
        duration_seconds: admission window; everything admitted is served.
        num_tenants: equal-weight tenants sharing the stream.
        max_batch: scheduler batch-size cap.
        max_wait_seconds: scheduler deadline for the oldest queued request.
        policy: batch composition (``fifo``/``wfq``).
        instances: replicated accelerator instances (the *initial* fleet
            when an autoscaler is attached).  When ``fleet`` is set this
            is normalized to the spec's total.
        fleet: typed-fleet composition in the CLI string form
            (``"small:2,large:1"``); empty keeps the homogeneous
            ``default`` fleet of ``instances`` — the pre-fleet model.
        routing: routing-policy name (one of
            :data:`~repro.serve.routing.ROUTING_POLICIES`); the default
            ``shared_queue`` keeps the single pre-routing queue.
        slo_seconds: per-request latency target for violation accounting.
        seed: RNG seed for arrivals and service-model calibration.
        autoscaler: fleet controller — ``none`` (static fleet),
            ``target-util``, or ``queue-pid``.
        autoscale_target: the policy setpoint (busy fraction for
            ``target-util``, queued requests per ready replica for
            ``queue-pid``).
        autoscale_interval_seconds: evaluation cadence of the autoscaler.
        scale_out_cooldown_seconds / scale_in_cooldown_seconds: minimum
            spacing between applied scaling actions per direction.
        warmup_seconds: provisioning delay before a scaled-out instance
            can serve (it bills from the moment it is provisioned).
        min_instances / max_instances: autoscaler clamp band.
        admission: overload response — ``none`` (open loop),
            ``shed`` (drop refused requests), or ``tarpit`` (delay and
            retry them).
        queue_budget: scheduler queue depth at which admissions are
            refused (``0`` disables the queue gate).
        tenant_quota_qps: per-tenant token-bucket admission rate
            (``0`` disables quotas).
        quota_burst: token-bucket burst capacity when quotas are active.
        tarpit_seconds: retry delay per refusal in ``tarpit`` mode.
        metrics_backend: latency-sketch backend — ``exact`` (store every
            latency; bit-identical to the pre-telemetry engine) or ``p2``
            (constant-memory streaming quantiles).
        violation_budget: SLO error budget (fraction of requests allowed
            to violate) the burn-rate analytics measure against.
        burn_window_seconds: burn-rate window width; ``0`` picks an
            eighth of the run horizon automatically.
        faults: fault-injection spec in the CLI string form
            (``"mtbf=0.4,mttr=0.1"``, or the named preset ``default``);
            empty disables fault injection entirely (the bit-identical
            compatibility path).
        retry: retry policy for failed requests — ``none`` (failures are
            final), ``backoff``, or ``deadline``
            (:data:`~repro.serve.retry.RETRY_POLICIES`).
        retry_max_attempts: total service attempts allowed per request.
        retry_base_seconds: first retry delay (doubles per attempt,
            scaled by deterministic jitter).
        retry_deadline_seconds: per-request give-up budget from arrival
            (``deadline`` mode only).
        hedge_seconds: duplicate a still-unfinished request onto a second
            queue after this long (``0`` disables hedging).
        label: display name; auto-derived when empty.
    """

    dataset: str = "ppi"
    scale: float = 0.05
    arrival: str = "poisson"
    qps: float = 100.0
    duration_seconds: float = 2.0
    num_tenants: int = 2
    max_batch: int = 8
    max_wait_seconds: float = 0.005
    policy: str = "fifo"
    instances: int = 2
    fleet: str = ""
    routing: str = "shared_queue"
    slo_seconds: float = 0.05
    seed: int = 0
    autoscaler: str = "none"
    autoscale_target: float = 0.7
    autoscale_interval_seconds: float = 0.02
    scale_out_cooldown_seconds: float = 0.0
    scale_in_cooldown_seconds: float = 0.05
    warmup_seconds: float = 0.02
    min_instances: int = 1
    max_instances: int = 16
    admission: str = "none"
    queue_budget: int = 64
    tenant_quota_qps: float = 0.0
    quota_burst: float = 16.0
    tarpit_seconds: float = 0.02
    metrics_backend: str = "exact"
    violation_budget: float = 0.01
    burn_window_seconds: float = 0.0
    faults: str = ""
    retry: str = "none"
    retry_max_attempts: int = 3
    retry_base_seconds: float = 0.005
    retry_deadline_seconds: float = 0.25
    hedge_seconds: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival model {self.arrival!r}; "
                f"choose from {sorted(ARRIVALS)}"
            )
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.num_tenants < 1:
            raise ValueError("need at least one tenant")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.fleet:
            # Normalize: canonical string form, and the fleet's total wins
            # over any separately-supplied instance count (so labels,
            # clamp-band checks, and content hashes all agree).
            spec = FleetSpec.parse(self.fleet)
            object.__setattr__(self, "fleet", spec.render())
            object.__setattr__(self, "instances", spec.total())
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"choose from {sorted(ROUTING_POLICIES)}"
            )
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.slo_seconds <= 0:
            raise ValueError("SLO must be positive")
        if self.autoscaler != "none" and self.autoscaler not in AUTOSCALERS:
            raise ValueError(
                f"unknown autoscaler {self.autoscaler!r}; choose 'none' or "
                f"one of {sorted(AUTOSCALERS)}"
            )
        if self.autoscale_target <= 0:
            raise ValueError("autoscale_target must be positive")
        if self.autoscale_interval_seconds <= 0:
            raise ValueError("autoscale interval must be positive")
        if self.scale_out_cooldown_seconds < 0 or self.scale_in_cooldown_seconds < 0:
            raise ValueError("scaling cooldowns must be non-negative")
        if self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be non-negative")
        if self.min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        if self.max_instances < self.min_instances:
            raise ValueError("max_instances must be >= min_instances")
        if self.autoscaler != "none" and not (
            self.min_instances <= self.instances <= self.max_instances
        ):
            raise ValueError(
                f"initial fleet ({self.instances}) must sit inside the "
                f"autoscaler band [{self.min_instances}, {self.max_instances}]"
            )
        if self.admission != "none" and self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.admission!r}; choose 'none' or "
                f"one of {ADMISSION_MODES}"
            )
        if self.queue_budget < 0:
            raise ValueError("queue_budget must be >= 0")
        if self.tenant_quota_qps < 0:
            raise ValueError("tenant_quota_qps must be >= 0")
        if self.quota_burst < 1:
            raise ValueError("quota_burst must be >= 1")
        if self.tarpit_seconds <= 0:
            raise ValueError("tarpit_seconds must be positive")
        if self.metrics_backend not in SKETCH_BACKENDS:
            raise ValueError(
                f"unknown metrics backend {self.metrics_backend!r}; "
                f"choose from {SKETCH_BACKENDS}"
            )
        if not 0 < self.violation_budget < 1:
            raise ValueError(
                f"violation_budget must be a rate in (0, 1), got "
                f"{self.violation_budget}"
            )
        if self.burn_window_seconds < 0:
            raise ValueError("burn_window_seconds must be non-negative")
        if self.faults:
            # Normalize to the canonical string form (named presets
            # expand, defaulted fields drop) so labels and content
            # hashes agree for equivalent specs.
            spec = FaultSpec.parse(self.faults)
            object.__setattr__(
                self, "faults", spec.render() if spec.enabled else ""
            )
        if self.retry not in RETRY_POLICIES:
            raise ValueError(
                f"unknown retry mode {self.retry!r}; "
                f"choose from {RETRY_POLICIES}"
            )
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_base_seconds <= 0:
            raise ValueError("retry_base_seconds must be positive")
        if self.retry_deadline_seconds <= 0:
            raise ValueError("retry_deadline_seconds must be positive")
        if self.hedge_seconds < 0:
            raise ValueError("hedge_seconds must be non-negative")

    @property
    def display_label(self) -> str:
        """The explicit label when given, else the auto-derived one."""
        return self.label or self.auto_label()

    def auto_label(self) -> str:
        """Readable name derived from the discriminating knobs."""
        parts = [self.arrival, f"q{self.qps:g}", f"b{self.max_batch}",
                 f"i{self.instances}"]
        if self.fleet:
            # "small:2,large:1" -> "small2+large1"
            parts.append(self.fleet.replace(":", "").replace(",", "+"))
        if self.routing != "shared_queue":
            parts.append(self.routing)
        if self.policy != "fifo":
            parts.append(self.policy)
        if self.num_tenants != 2:
            parts.append(f"t{self.num_tenants}")
        if self.autoscaler != "none":
            # The setpoint is part of the name: target sweeps would
            # otherwise produce indistinguishable rows.
            parts.append(f"as-{self.autoscaler}@{self.autoscale_target:g}")
        if self.admission != "none":
            parts.append(self.admission)
        if self.faults:
            parts.append("faulted")
        if self.retry != "none":
            parts.append(f"retry-{self.retry}")
        if self.hedge_seconds > 0:
            parts.append(f"hedge{self.hedge_seconds * 1e3:g}ms")
        parts.append(f"s{self.seed}")
        return "-".join(parts)

    def describe(self) -> dict[str, Any]:
        """Plain-dict form (what serving records and exports carry)."""
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "label"}
        out["label"] = self.display_label
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingScenario":
        """Rebuild a scenario from :meth:`describe` output (extras ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in names})

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def tenant_mix(self) -> TenantMix:
        """Equal-weight tenants sharing the stream."""
        return TenantMix.uniform(self.num_tenants)

    def build_arrivals(self):
        """The scenario's arrival process.

        The diurnal "day" is compressed to the admission window so every
        simulation sees one full peak-and-trough cycle (and the window's
        time-average rate equals the nominal QPS) regardless of duration.
        """
        extra = (
            {"period_seconds": self.duration_seconds}
            if self.arrival == "diurnal"
            else {}
        )
        return make_arrivals(
            self.arrival,
            self.qps,
            mix=self.tenant_mix(),
            seed=self.seed,
            **extra,
        )

    def build_scheduler(self) -> BatchingScheduler:
        """A fresh batching scheduler with the scenario's knobs."""
        return BatchingScheduler(
            max_batch=self.max_batch,
            max_wait_seconds=self.max_wait_seconds,
            policy=self.policy,
        )

    def build_autoscaler(self) -> AutoscalerPolicy | None:
        """The scenario's fleet controller (``None`` for a static fleet)."""
        if self.autoscaler == "none":
            return None
        return make_autoscaler(
            self.autoscaler,
            target=self.autoscale_target,
            min_instances=self.min_instances,
            max_instances=self.max_instances,
            interval_seconds=self.autoscale_interval_seconds,
            scale_out_cooldown_seconds=self.scale_out_cooldown_seconds,
            scale_in_cooldown_seconds=self.scale_in_cooldown_seconds,
        )

    def build_admission(self) -> AdmissionController | None:
        """The scenario's admission gate (``None`` for open-loop intake)."""
        if self.admission == "none":
            return None
        return AdmissionController(
            mode=self.admission,
            queue_budget=self.queue_budget,
            tenant_quota_qps=self.tenant_quota_qps,
            quota_burst=self.quota_burst,
            tarpit_seconds=self.tarpit_seconds,
        )

    def build_engine(
        self,
        service: ServiceModel,
        recorder: TraceRecorder | None = None,
        registry: MetricRegistry | None = None,
        sampler: Sampler | None = None,
    ) -> ServingEngine:
        """The fully assembled engine: scheduler + fleet + controllers.

        The telemetry collaborators are injected per run, never part of
        the scenario — they observe an outcome without changing it (and
        therefore stay out of the content hash).
        """
        return ServingEngine(
            scheduler=self.build_scheduler(),
            service=service,
            instances=self.instances,
            slo_seconds=self.slo_seconds,
            autoscaler=self.build_autoscaler(),
            admission=self.build_admission(),
            warmup_seconds=self.warmup_seconds,
            recorder=recorder,
            registry=registry,
            sampler=sampler,
            metrics_backend=self.metrics_backend,
            violation_budget=self.violation_budget,
            burn_window_seconds=self.burn_window_seconds,
            fleet=self.fleet or None,
            routing=self.routing,
            routing_seed=self.seed,
            faults=self.faults or None,
            retry=make_retry_policy(
                self.retry,
                max_attempts=self.retry_max_attempts,
                base_seconds=self.retry_base_seconds,
                deadline_seconds=self.retry_deadline_seconds,
                seed=self.seed,
            ),
            hedge_seconds=self.hedge_seconds,
            fault_seed=self.seed,
        )


def serving_key(scenario: ServingScenario) -> str:
    """Content hash of everything that determines a serving outcome."""
    payload = scenario.describe()
    del payload["label"]  # presentation, not content
    payload["schema"] = SERVE_SCHEMA_VERSION
    payload["kind"] = "serving"
    return stable_digest(payload)


@dataclass(frozen=True)
class ServingRecord:
    """Flat, JSON-serializable outcome of one serving scenario."""

    label: str
    key: str
    scenario: dict[str, Any]
    offered: int
    completed: int
    throughput_qps: float
    utilization: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    max_latency_seconds: float
    slo_violation_rate: float
    mean_queue_depth: float
    peak_queue_depth: int
    mean_batch_size: float
    eval_seconds: float
    instance_seconds: float = 0.0
    peak_instances: int = 0
    scale_events: int = 0
    admitted: int = 0
    shed: int = 0
    shed_rate: float = 0.0
    tarpitted: int = 0
    overall_burn_rate: float = 0.0
    peak_burn_rate: float = 0.0
    fleet: str = ""
    routing: str = "shared_queue"
    cost_dollars: float = 0.0
    failed: int = 0
    retries: int = 0
    crashes: int = 0
    hedges_fired: int = 0
    hedges_cancelled: int = 0
    availability: float = 1.0
    cached: bool = False

    def metrics(self) -> dict[str, float]:
        """The measured outcome alone — invariant under caching/timing."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "throughput_qps": self.throughput_qps,
            "utilization": self.utilization,
            "mean_latency_seconds": self.mean_latency_seconds,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "max_latency_seconds": self.max_latency_seconds,
            "slo_violation_rate": self.slo_violation_rate,
            "mean_queue_depth": self.mean_queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "instance_seconds": self.instance_seconds,
            "peak_instances": self.peak_instances,
            "scale_events": self.scale_events,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "tarpitted": self.tarpitted,
            "overall_burn_rate": self.overall_burn_rate,
            "peak_burn_rate": self.peak_burn_rate,
            "cost_dollars": self.cost_dollars,
            "failed": self.failed,
            "retries": self.retries,
            "crashes": self.crashes,
            "hedges_fired": self.hedges_fired,
            "hedges_cancelled": self.hedges_cancelled,
            "availability": self.availability,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (what the result store persists)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], cached: bool = False
    ) -> "ServingRecord":
        """Revive a stored record (unknown keys from older schemas dropped)."""
        payload = {
            k: v for k, v in dict(data).items() if k in cls.__dataclass_fields__
        }
        payload["cached"] = cached
        return cls(**payload)

    @classmethod
    def from_report(
        cls,
        scenario: ServingScenario,
        report: ServingReport,
        key: str,
        eval_seconds: float,
    ) -> "ServingRecord":
        """Flatten a full engine report into the storable record."""
        return cls(
            label=scenario.display_label,
            key=key,
            scenario=scenario.describe(),
            offered=report.offered,
            completed=report.completed,
            throughput_qps=report.throughput_qps,
            utilization=report.utilization,
            mean_latency_seconds=report.latency.mean,
            p50_latency_seconds=report.latency.p50,
            p95_latency_seconds=report.latency.p95,
            p99_latency_seconds=report.latency.p99,
            max_latency_seconds=report.latency.max,
            slo_violation_rate=report.slo_violation_rate,
            mean_queue_depth=report.mean_queue_depth,
            peak_queue_depth=report.peak_queue_depth,
            mean_batch_size=report.mean_batch_size,
            eval_seconds=eval_seconds,
            instance_seconds=report.instance_seconds,
            peak_instances=report.peak_instances,
            scale_events=(
                len(report.autoscale.events) if report.autoscale is not None else 0
            ),
            admitted=(
                report.admission.admitted
                if report.admission is not None
                else report.offered
            ),
            shed=report.admission.shed if report.admission is not None else 0,
            shed_rate=(
                report.admission.shed_rate if report.admission is not None else 0.0
            ),
            tarpitted=(
                report.admission.tarpitted if report.admission is not None else 0
            ),
            overall_burn_rate=(
                report.burn.overall_burn_rate if report.burn is not None else 0.0
            ),
            peak_burn_rate=(
                report.burn.peak_burn_rate if report.burn is not None else 0.0
            ),
            fleet=report.fleet,
            routing=report.routing,
            cost_dollars=report.cost_dollars,
            failed=report.failed,
            retries=report.retries,
            crashes=report.crashes,
            hedges_fired=report.hedges_fired,
            hedges_cancelled=report.hedges_cancelled,
            availability=report.availability,
        )


#: In-process calibration cache: the accelerator service model evaluates
#: once per (dataset, scale, seed) and every scenario sharing that
#: workload reuses the calibrated pipeline numbers.
_SERVICE_CACHE: dict[tuple[str, float, int], AcceleratorServiceModel] = {}


def _service_for(scenario: ServingScenario) -> AcceleratorServiceModel:
    cache_key = (scenario.dataset, scenario.scale, scenario.seed)
    model = _SERVICE_CACHE.get(cache_key)
    if model is None:
        model = AcceleratorServiceModel(
            dataset=scenario.dataset, scale=scenario.scale, seed=scenario.seed
        )
        _SERVICE_CACHE[cache_key] = model
    return model


def simulate_serving_scenario(
    scenario: ServingScenario,
    service: ServiceModel | None = None,
    arrivals: ArrivalProcess | None = None,
    recorder: TraceRecorder | None = None,
    registry: MetricRegistry | None = None,
    sampler: Sampler | None = None,
) -> ServingReport:
    """Run one scenario through the engine and return the full report.

    ``arrivals`` substitutes the scenario's own arrival model (e.g. a
    :class:`~repro.serve.arrivals.TraceArrivals` replay for ``repro serve
    --trace-file``); the scenario then only contributes the scheduler,
    fleet, and SLO knobs.  The telemetry collaborators (``recorder`` /
    ``registry`` / ``sampler``) pass straight through to the engine.
    """
    service = service if service is not None else _service_for(scenario)
    arrivals = arrivals if arrivals is not None else scenario.build_arrivals()
    engine = scenario.build_engine(
        service, recorder=recorder, registry=registry, sampler=sampler
    )
    return engine.run(
        requests=arrivals.generate(scenario.duration_seconds),
        horizon_seconds=scenario.duration_seconds,
    )


def run_serving_scenario(
    scenario: ServingScenario,
    service: ServiceModel | None = None,
    store: ResultStore | None = None,
    key: str | None = None,
) -> ServingRecord:
    """Evaluate one serving scenario, consulting/feeding the result store.

    A custom ``service`` model bypasses the store entirely — the cache key
    only describes the scenario, not an arbitrary injected model.
    """
    key = key if key is not None else serving_key(scenario)
    if store is not None and service is None:
        stored = store.get(key)
        if stored is not None:
            return ServingRecord.from_dict(stored, cached=True)
    start = time.perf_counter()
    report = simulate_serving_scenario(scenario, service=service)
    record = ServingRecord.from_report(
        scenario, report, key, eval_seconds=time.perf_counter() - start
    )
    if store is not None and service is None:
        store.put(key, record.to_dict())
    return record


def scenario_with(scenario: ServingScenario, **overrides: Any) -> ServingScenario:
    """``dataclasses.replace`` with the label re-derived from the knobs."""
    changed = replace(scenario, **overrides, label="")
    return replace(changed, label=changed.auto_label())
