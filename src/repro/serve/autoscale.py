"""Autoscaler policies: grow and shrink the replica pool mid-simulation.

The capacity planner (:mod:`repro.serve.capacity`) answers the *static*
question — how many replicas does a load need — and open-loop bursts make
its answer expensive: a fleet sized for the burst idles through every
quiet phase.  An autoscaler closes the loop instead.  At a fixed
evaluation cadence the serving engine hands the policy a
:class:`FleetSnapshot` (queue depth, busy/ready/warming counts, and the
time-weighted utilization since the previous tick) and the policy answers
with a desired fleet size.  The engine then provisions new instances
(which serve only after a configurable warm-up delay) or retires surplus
ones (idle replicas leave immediately; busy replicas drain their current
batch first).

Two policy families, one contract (:class:`AutoscalerPolicy`):

* :class:`TargetUtilizationAutoscaler` — the classic control loop cloud
  autoscalers ship: size the fleet so measured busy-fraction tracks a
  target (``desired = ceil(ready * utilization / target)``), with a queue
  override so a deep backlog forces growth even while utilization is
  still catching up.
* :class:`QueueDepthPIDAutoscaler` — a PID-style controller on queue
  depth per ready replica: proportional + integral + derivative terms on
  the setpoint error become a signed fleet-size adjustment.

Both enforce ``min_instances``/``max_instances`` clamps and separate
scale-out / scale-in cooldowns (measured from the last applied scaling
action in either direction, the standard anti-flapping rule).

Policies are stateful (cooldown clocks, PID accumulators) and owned by
one engine run at a time; :meth:`AutoscalerPolicy.reset` re-arms them, and
the engine calls it at the start of every run so repeated runs of one
engine stay deterministic.

Policies are *composition-blind*: they answer with a total fleet size
even when the fleet mixes instance types.  :func:`allocate_fleet` then
splits that total across the types — proportionally to the declared
composition, with the remainder (and therefore the marginal scale-out
instance) going to the cheapest capacity first and the marginal
scale-in coming off the most expensive capacity first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports us)
    from repro.serve.fleet import InstanceType


@dataclass(frozen=True)
class FleetSnapshot:
    """What the engine shows the policy at one evaluation tick.

    Attributes:
        now: simulation time of the tick (seconds).
        provisioned: the pool's converging size — billed instances minus
            those already draining toward retirement (a retiring replica
            still bills until its batch ends, but it is already leaving,
            so policies must not count it as capacity to keep or shed).
        ready: instances able to serve right now (idle + busy).
        busy: instances currently occupied by a batch.
        warming: provisioned instances still inside their warm-up delay.
        queue_depth: requests waiting in the scheduler queue.
        utilization: time-weighted busy fraction of the provisioned pool
            since the previous tick, in ``[0, 1]``.
    """

    now: float
    provisioned: int
    ready: int
    busy: int
    warming: int
    queue_depth: int
    utilization: float


@dataclass(frozen=True)
class ScalingEvent:
    """One applied fleet-size change.

    ``per_type`` carries the ``(type name, previous, target)`` split for
    heterogeneous fleets; it stays empty for the homogeneous default
    fleet, keeping pre-fleet trajectories unchanged.
    """

    time: float
    previous: int
    target: int
    per_type: tuple[tuple[str, int, int], ...] = field(default=())

    @property
    def delta(self) -> int:
        """Signed size change (positive = scale-out)."""
        return self.target - self.previous


@dataclass(frozen=True)
class AutoscaleStats:
    """Scaling trajectory of one engine run (``None`` fields elsewhere
    mean the run had no autoscaler).

    Attributes:
        policy: registry name of the policy that drove the run.
        peak_instances / min_instances: extremes of the provisioned pool.
        final_instances: pool size when the simulation ended.
        scale_out_events / scale_in_events: applied changes per direction.
        events: the full ``(time, previous, target)`` trajectory.
    """

    policy: str
    peak_instances: int
    min_instances: int
    final_instances: int
    scale_out_events: int
    scale_in_events: int
    events: tuple[ScalingEvent, ...]


class AutoscalerPolicy:
    """Base class: desired-size controller with clamps and cooldowns.

    Subclasses implement :meth:`desired`; this base turns their raw
    answer into an applied target by clamping to
    ``[min_instances, max_instances]`` and suppressing changes inside the
    direction's cooldown window.
    """

    #: Registry name (overridden by registered subclasses; shows up in
    #: reports as ``fleet[<kind>]``).
    kind = "custom"

    def __init__(
        self,
        min_instances: int = 1,
        max_instances: int = 16,
        interval_seconds: float = 0.02,
        scale_out_cooldown_seconds: float = 0.0,
        scale_in_cooldown_seconds: float = 0.1,
    ) -> None:
        if min_instances < 1:
            raise ValueError(f"min_instances must be >= 1, got {min_instances}")
        if max_instances < min_instances:
            raise ValueError(
                f"max_instances ({max_instances}) must be >= "
                f"min_instances ({min_instances})"
            )
        if interval_seconds <= 0:
            raise ValueError("evaluation interval must be positive")
        if scale_out_cooldown_seconds < 0 or scale_in_cooldown_seconds < 0:
            raise ValueError("cooldowns must be non-negative")
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.interval_seconds = interval_seconds
        self.scale_out_cooldown_seconds = scale_out_cooldown_seconds
        self.scale_in_cooldown_seconds = scale_in_cooldown_seconds
        self.reset()

    def reset(self) -> None:
        """Re-arm the policy for a fresh run (cooldown clocks cleared)."""
        self._last_change = -math.inf

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def desired(self, snapshot: FleetSnapshot) -> int:
        """Raw desired fleet size before clamps and cooldowns."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Engine entry point
    # ------------------------------------------------------------------
    def decide(self, snapshot: FleetSnapshot) -> int:
        """The fleet size the engine should apply at this tick.

        Returns ``snapshot.provisioned`` (no change) when the raw desire
        is inside the clamp band already satisfied, or when the relevant
        cooldown since the last applied change has not elapsed.
        """
        target = max(self.min_instances, min(self.max_instances, self.desired(snapshot)))
        current = snapshot.provisioned
        if target == current:
            return current
        cooldown = (
            self.scale_out_cooldown_seconds
            if target > current
            else self.scale_in_cooldown_seconds
        )
        if snapshot.now - self._last_change < cooldown:
            return current
        self._last_change = snapshot.now
        return target


class TargetUtilizationAutoscaler(AutoscalerPolicy):
    """Track a busy-fraction target, with a queue-pressure override.

    The core rule sizes the fleet so the measured utilization would land
    on ``target``::

        desired = ceil(ready * utilization / target)

    Utilization alone reacts late to a burst (a saturated pool reads
    ``1.0`` whether the backlog is 2 requests or 2000), so a second term
    grows the fleet enough to drain the backlog within one evaluation
    interval's worth of per-replica work: ``queue_depth / target`` extra
    headroom expressed through the same target normalization.  The larger
    of the two wins; scale-in only happens on the utilization signal once
    the queue is empty.
    """

    kind = "target-util"

    def __init__(
        self,
        target: float = 0.7,
        min_instances: int = 1,
        max_instances: int = 16,
        interval_seconds: float = 0.02,
        scale_out_cooldown_seconds: float = 0.0,
        scale_in_cooldown_seconds: float = 0.1,
        queue_headroom: int = 4,
    ) -> None:
        if not 0 < target <= 1:
            raise ValueError(f"utilization target must be in (0, 1], got {target}")
        if queue_headroom < 1:
            raise ValueError("queue_headroom must be >= 1")
        super().__init__(
            min_instances=min_instances,
            max_instances=max_instances,
            interval_seconds=interval_seconds,
            scale_out_cooldown_seconds=scale_out_cooldown_seconds,
            scale_in_cooldown_seconds=scale_in_cooldown_seconds,
        )
        self.target = target
        #: Queued requests one ready replica is trusted to absorb before
        #: the backlog term demands another instance.
        self.queue_headroom = queue_headroom

    def desired(self, snapshot: FleetSnapshot) -> int:
        ready = max(snapshot.ready, 1)
        by_utilization = math.ceil(ready * snapshot.utilization / self.target)
        # Instances already warming are queue-drain capacity in flight:
        # without subtracting them, every tick of a burst re-demands the
        # same backlog and the fleet overshoots to the clamp ceiling.
        backlog_need = max(
            0,
            math.ceil(snapshot.queue_depth / self.queue_headroom)
            - snapshot.warming,
        )
        by_queue = snapshot.ready + backlog_need if snapshot.queue_depth > 0 else 0
        want = max(by_utilization, by_queue)
        # Hold capacity while a genuine backlog drains.  A handful of
        # queued requests is just the batcher doing its size-or-deadline
        # job, so the hold only engages past the fleet's one-round
        # absorption (ready x headroom) — otherwise scale-in would be
        # blocked almost always under steady batched load.
        if snapshot.queue_depth > snapshot.ready * self.queue_headroom:
            want = max(want, snapshot.provisioned)
        return want


class QueueDepthPIDAutoscaler(AutoscalerPolicy):
    """PID-style controller on queue depth per ready replica.

    The error signal is ``queue_depth / ready - target`` (requests queued
    per serving-capable replica versus the setpoint).  Proportional,
    integral, and derivative terms combine into a signed instance delta::

        delta = kp * e  +  ki * I  +  kd * de/dt
        desired = provisioned + round(delta)

    The integral is clamped (anti-windup) so a long overload cannot bank
    unbounded scale-out pressure that would then overshoot the quiet
    phase.
    """

    kind = "queue-pid"

    def __init__(
        self,
        target: float = 2.0,
        min_instances: int = 1,
        max_instances: int = 16,
        interval_seconds: float = 0.02,
        scale_out_cooldown_seconds: float = 0.0,
        scale_in_cooldown_seconds: float = 0.1,
        kp: float = 0.5,
        ki: float = 0.1,
        kd: float = 0.05,
        integral_limit: float = 50.0,
    ) -> None:
        if target < 0:
            raise ValueError(f"queue setpoint must be >= 0, got {target}")
        if kp < 0 or ki < 0 or kd < 0:
            raise ValueError("PID gains must be non-negative")
        if integral_limit <= 0:
            raise ValueError("integral_limit must be positive")
        super().__init__(
            min_instances=min_instances,
            max_instances=max_instances,
            interval_seconds=interval_seconds,
            scale_out_cooldown_seconds=scale_out_cooldown_seconds,
            scale_in_cooldown_seconds=scale_in_cooldown_seconds,
        )
        self.target = target
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.integral_limit = integral_limit

    def reset(self) -> None:
        super().reset()
        self._integral = 0.0
        self._previous_error: float | None = None
        self._previous_time: float | None = None

    def desired(self, snapshot: FleetSnapshot) -> int:
        error = snapshot.queue_depth / max(snapshot.ready, 1) - self.target
        dt = (
            snapshot.now - self._previous_time
            if self._previous_time is not None
            else self.interval_seconds
        )
        dt = max(dt, 1e-12)
        self._integral += error * dt
        self._integral = max(
            -self.integral_limit, min(self.integral_limit, self._integral)
        )
        derivative = (
            (error - self._previous_error) / dt
            if self._previous_error is not None
            else 0.0
        )
        self._previous_error = error
        self._previous_time = snapshot.now
        delta = (
            self.kp * error
            + self.ki * self._integral
            + self.kd * derivative * self.interval_seconds
        )
        return snapshot.provisioned + int(round(delta))


#: Autoscaler-policy registry (CLI / scenario ``autoscaler`` knob).
AUTOSCALERS: dict[str, type[AutoscalerPolicy]] = {
    "target-util": TargetUtilizationAutoscaler,
    "queue-pid": QueueDepthPIDAutoscaler,
}


def make_autoscaler(kind: str, **kwargs) -> AutoscalerPolicy:
    """Instantiate a registered autoscaler policy by name.

    Extra keyword arguments forward to the policy's constructor (e.g.
    ``target``, ``min_instances``, ``scale_in_cooldown_seconds``).
    """
    try:
        cls = AUTOSCALERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown autoscaler {kind!r}; choose from {sorted(AUTOSCALERS)}"
        ) from None
    return cls(**kwargs)


def allocate_fleet(
    current: Sequence[int],
    total: int,
    types: Sequence["InstanceType"],
    weights: Sequence[int] | None = None,
) -> list[int]:
    """Split a total fleet size across instance types, cost-weighted.

    The base split is largest-remainder apportionment proportional to
    ``weights`` (the *declared* composition — callers pass it so the mix
    does not drift as the autoscaler moves the total up and down; it
    defaults to ``current``).  The integer remainder — which is exactly
    where the marginal scale-out instance lands and where the marginal
    scale-in comes from — goes to the cheapest capacity first, ordered by
    :attr:`~repro.serve.fleet.InstanceType.cost_per_capacity` (ties to
    declaration order).  Apportioning the target rather than the delta
    makes the split a pure function of ``(total, weights)``: the same
    total always yields the same composition, however it was reached.

    A single-type fleet degenerates to ``[total]`` — the pre-fleet
    scaling behavior, untouched.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if len(current) != len(types):
        raise ValueError("current and types must align")
    if len(types) == 1:
        return [total]
    weights = list(weights) if weights is not None else list(current)
    if len(weights) != len(types):
        raise ValueError("weights and types must align")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if sum(weights) == 0:
        weights = [1] * len(types)
    scale = sum(weights)
    counts = [total * w // scale for w in weights]
    remainder = total - sum(counts)
    cheap_first = sorted(
        range(len(types)), key=lambda i: (types[i].cost_per_capacity, i)
    )
    while remainder > 0:
        for i in cheap_first:
            if remainder == 0:
                break
            # Zero-weight slices stay empty: the composition declared
            # them out, and remainder must not resurrect them.
            if weights[i] == 0:
                continue
            counts[i] += 1
            remainder -= 1
    return counts
