"""Per-batch service-time models for the serving engine.

The authoritative model (:class:`AcceleratorServiceModel`) is derived from
the existing architecture evaluation: one inference-mode
``ReGraphX.evaluate()`` run calibrates the pipeline period and fill depth
for a dataset, and a batch of requests then costs the pipeline fill plus
one period per request, scaled by each request's graph size relative to
the calibrated representative sub-graph (stage latencies are linear in
node count, see ``TimingModel.v_layer_latency``).  Batch times are
memoized by batch *shape* — the multiset of request graph sizes — so
million-request simulations never re-enter the evaluation stack.

:class:`LinearServiceModel` is the cheap analytic stand-in for tests and
constructed capacity-planning workloads: a fixed batch overhead plus a
per-node cost, no accelerator evaluation at all.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import ReGraphXConfig


class ServiceModel:
    """Interface: seconds one replica needs to serve one batch."""

    def batch_service_seconds(self, graph_sizes: Sequence[int]) -> float:
        """Seconds one replica is occupied serving this batch."""
        raise NotImplementedError


def _validated(graph_sizes: Sequence[int]) -> tuple[int, ...]:
    sizes = tuple(int(s) for s in graph_sizes)
    if not sizes:
        raise ValueError("a batch needs at least one request")
    if any(s < 1 for s in sizes):
        raise ValueError(f"graph sizes must be positive, got {sizes}")
    return sizes


class LinearServiceModel(ServiceModel):
    """``base + per_node * sum(sizes)`` — the analytic stand-in."""

    def __init__(
        self, base_seconds: float = 0.002, per_node_seconds: float = 2e-6
    ) -> None:
        if base_seconds < 0 or per_node_seconds < 0:
            raise ValueError("service-time coefficients must be non-negative")
        self.base_seconds = base_seconds
        self.per_node_seconds = per_node_seconds

    def batch_service_seconds(self, graph_sizes: Sequence[int]) -> float:
        """Fixed overhead plus the summed per-node cost."""
        sizes = _validated(graph_sizes)
        return self.base_seconds + self.per_node_seconds * sum(sizes)


class AcceleratorServiceModel(ServiceModel):
    """Service times calibrated by the inference-mode accelerator pipeline.

    One ``evaluate(training=False)`` run (lazy, on first use) yields the
    pipeline period ``T`` and stage count ``S`` for the dataset's
    representative sub-graph of ``n_ref`` nodes.  A batch with request
    graph sizes ``s_1..s_k`` then occupies a replica for::

        (S - 1) * T  +  T * sum_i(s_i / n_ref)

    i.e. the pipeline fill plus one size-scaled period per request —
    exactly how ``PipelineTiming.epoch_seconds`` charges an epoch of
    inputs, re-expressed per batch.
    """

    def __init__(
        self,
        dataset: str = "ppi",
        scale: float = 0.05,
        seed: int = 0,
        config: ReGraphXConfig | None = None,
    ) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.dataset = dataset
        self.scale = scale
        self.seed = seed
        self.config = config
        self._period: float | None = None
        self._fill_seconds = 0.0
        self._ref_nodes = 1
        self._memo: dict[tuple[int, ...], float] = {}

    def _calibrate(self) -> None:
        if self._period is not None:
            return
        from repro.core.accelerator import ReGraphX

        accelerator = ReGraphX(self.config)
        workload = accelerator.build_workload(
            self.dataset, scale=self.scale, seed=self.seed
        )
        report = accelerator.evaluate(
            workload, use_sa=False, seed=self.seed, training=False
        )
        self._period = report.pipeline.period
        self._fill_seconds = (report.pipeline.num_stages - 1) * report.pipeline.period
        self._ref_nodes = workload.num_nodes_per_input

    @property
    def period_seconds(self) -> float:
        """Calibrated per-input pipeline period (triggers calibration)."""
        self._calibrate()
        assert self._period is not None
        return self._period

    @property
    def fill_seconds(self) -> float:
        """Calibrated pipeline fill time (stages minus one, one period each)."""
        self._calibrate()
        return self._fill_seconds

    @property
    def reference_nodes(self) -> int:
        """Node count of the calibrated representative sub-graph."""
        self._calibrate()
        return self._ref_nodes

    def batch_service_seconds(self, graph_sizes: Sequence[int]) -> float:
        # Memoized by batch shape: order within a batch cannot change the
        # pipeline occupancy, so the key is the sorted size multiset.
        shape = tuple(sorted(_validated(graph_sizes)))
        cached = self._memo.get(shape)
        if cached is not None:
            return cached
        self._calibrate()
        assert self._period is not None
        seconds = self._fill_seconds + self._period * sum(
            size / self._ref_nodes for size in shape
        )
        self._memo[shape] = seconds
        return seconds
