"""Serving engine: multi-tenant GNN inference traffic on the accelerator.

The workload layer on top of the architecture model: streams of per-user
inference requests arrive over time, an admission controller decides what
may enter, a batching scheduler packs admitted requests onto replicated
accelerator instances, an autoscaler grows and shrinks that replica pool
against the load, and a discrete-event loop measures what a serving
system actually cares about — per-tenant tail latency, throughput, queue
depths, utilization, instance-seconds, and SLO violations.

The pieces:

* :mod:`repro.serve.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty MMPP, diurnal, trace replay) emitting a common
  ``Request`` stream, plus a closed-loop client pool.
* :mod:`repro.serve.service` — per-batch service times derived from the
  inference-mode ``evaluate()`` pipeline, memoized by batch shape.
* :mod:`repro.serve.admission` — token-bucket per-tenant quotas and
  queue-budget load shedding (shed or tarpit) in front of the scheduler.
* :mod:`repro.serve.scheduler` — size-or-deadline batching with FIFO or
  weighted-fair (stride) composition across tenants.
* :mod:`repro.serve.autoscale` — pluggable fleet controllers
  (target-utilization and queue-depth PID) with cooldowns and instance
  warm-up, closing the loop the capacity planner answers statically.
* :mod:`repro.serve.fleet` — typed instances (``small``/``default``/
  ``large``) and heterogeneous fleet compositions with per-type warm-up,
  batch ceilings, service scaling, and $-cost accounting.
* :mod:`repro.serve.routing` — pluggable routing between admission and
  the per-target schedulers: shared queue (the bit-identical default),
  size affinity, power-of-two-choices, tenant pinning.
* :mod:`repro.serve.engine` — the priority-queue simulation loop, the
  dynamic typed fleet, and the per-tenant SLO analytics report.
* :mod:`repro.serve.scenario` / :mod:`repro.serve.sweep` /
  :mod:`repro.serve.presets` — declarative serving scenarios swept through
  the generic campaign machinery with store-backed caching.
* :mod:`repro.serve.capacity` — capacity planning: binary search for the
  minimum single-type fleet, cost-ordered composition search for the
  cheapest heterogeneous fleet meeting a target SLO at a given load,
  and N+k availability-aware sizing against worst-case outages.
* :mod:`repro.serve.faults` — seeded deterministic fault injection:
  per-instance crash-and-recover, transient slowdowns, and correlated
  zone outages driven through the event loop as first-class events.
* :mod:`repro.serve.retry` — client-side reliability policies: retry
  with deterministic exponential backoff or deadline awareness, plus
  hedged dispatch (duplicate to a second target, first copy wins).
"""

from repro.serve.arrivals import (
    ARRIVALS,
    ArrivalProcess,
    ClosedLoopPool,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    TenantMix,
    TraceArrivals,
    empirical_qps,
    load_trace,
    make_arrivals,
    save_trace,
)
from repro.serve.admission import (
    ADMISSION_MODES,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    TokenBucket,
)
from repro.serve.autoscale import (
    AUTOSCALERS,
    AutoscalerPolicy,
    AutoscaleStats,
    FleetSnapshot,
    QueueDepthPIDAutoscaler,
    ScalingEvent,
    TargetUtilizationAutoscaler,
    make_autoscaler,
)
from repro.serve.autoscale import allocate_fleet
from repro.serve.capacity import (
    CapacityPlan,
    FleetPlan,
    enumerate_fleets,
    meets_slo,
    plan_capacity,
    plan_fleet,
    survivable_fleets,
)
from repro.serve.faults import (
    DEFAULT_FAULTS,
    FaultInjector,
    FaultSpec,
    coerce_faults,
)
from repro.serve.engine import (
    ReplicaPool,
    ServingEngine,
    ServingReport,
    TenantReport,
)
from repro.serve.fleet import (
    INSTANCE_TYPES,
    FleetSpec,
    InstanceType,
    TypedReplicaPool,
    TypeUsage,
    coerce_fleet,
    fleet_with_total,
    get_instance_type,
)
from repro.serve.retry import (
    RETRY_POLICIES,
    RetryPolicy,
    make_retry_policy,
)
from repro.serve.routing import (
    ROUTING_POLICIES,
    SHARED,
    PowerOfTwoRouting,
    RoutingPolicy,
    SharedQueueRouting,
    SizeAffinityRouting,
    TenantPinRouting,
    make_routing,
)
from repro.serve.presets import (
    SERVING_PRESETS,
    get_serving_preset,
    serving_preset_names,
)
from repro.serve.scenario import (
    SERVE_SCHEMA_VERSION,
    ServingRecord,
    ServingScenario,
    run_serving_scenario,
    scenario_with,
    serving_key,
    simulate_serving_scenario,
)
from repro.serve.scheduler import POLICIES, Batch, BatchingScheduler
from repro.serve.service import (
    AcceleratorServiceModel,
    LinearServiceModel,
    ServiceModel,
)
from repro.serve.sweep import ServingCampaignResult, run_serving_campaign

__all__ = [
    "Request",
    "TenantMix",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "ClosedLoopPool",
    "ARRIVALS",
    "make_arrivals",
    "empirical_qps",
    "save_trace",
    "load_trace",
    "ServiceModel",
    "LinearServiceModel",
    "AcceleratorServiceModel",
    "Batch",
    "BatchingScheduler",
    "POLICIES",
    "ADMISSION_MODES",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "TokenBucket",
    "AUTOSCALERS",
    "AutoscalerPolicy",
    "AutoscaleStats",
    "FleetSnapshot",
    "QueueDepthPIDAutoscaler",
    "ScalingEvent",
    "TargetUtilizationAutoscaler",
    "make_autoscaler",
    "ReplicaPool",
    "ServingEngine",
    "ServingReport",
    "TenantReport",
    "ServingScenario",
    "ServingRecord",
    "SERVE_SCHEMA_VERSION",
    "serving_key",
    "simulate_serving_scenario",
    "run_serving_scenario",
    "scenario_with",
    "ServingCampaignResult",
    "run_serving_campaign",
    "SERVING_PRESETS",
    "get_serving_preset",
    "serving_preset_names",
    "CapacityPlan",
    "plan_capacity",
    "meets_slo",
    "InstanceType",
    "INSTANCE_TYPES",
    "get_instance_type",
    "FleetSpec",
    "TypedReplicaPool",
    "TypeUsage",
    "coerce_fleet",
    "fleet_with_total",
    "allocate_fleet",
    "RoutingPolicy",
    "SharedQueueRouting",
    "SizeAffinityRouting",
    "PowerOfTwoRouting",
    "TenantPinRouting",
    "ROUTING_POLICIES",
    "SHARED",
    "make_routing",
    "FleetPlan",
    "plan_fleet",
    "enumerate_fleets",
    "survivable_fleets",
    "FaultSpec",
    "FaultInjector",
    "coerce_faults",
    "DEFAULT_FAULTS",
    "RetryPolicy",
    "RETRY_POLICIES",
    "make_retry_policy",
]
