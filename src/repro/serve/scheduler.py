"""Batching scheduler: pack queued requests into dispatchable batches.

The scheduler owns the admission queue between the arrival stream and the
replica pool.  A batch becomes *ready* when either the queue holds a full
``max_batch`` or the oldest queued request has waited ``max_wait_seconds``
(the classic size-or-deadline rule serving systems use to trade latency
for throughput).  Two batch-composition policies:

* ``fifo`` — strict global arrival order, tenant-blind.
* ``wfq`` — weighted fair queueing across tenants: per-tenant FIFO queues
  drained by stride scheduling (each tenant advances a virtual time by
  ``1 / weight`` per dispatched request; the lowest virtual time goes
  next), so a heavy tenant cannot starve light ones while full batches
  still form.

The scheduler is pure data structure — no clock of its own.  The serving
engine tells it the current time; given the same enqueue/pop sequence it
is fully deterministic (ties break on tenant name).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.serve.arrivals import Request

#: Batch-composition policies.
POLICIES = ("fifo", "wfq")


@dataclass(frozen=True)
class Batch:
    """One dispatchable unit of work: requests served together."""

    requests: tuple[Request, ...]
    formed_time: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch needs at least one request")

    @property
    def size(self) -> int:
        """Number of requests served together."""
        return len(self.requests)

    @property
    def graph_sizes(self) -> tuple[int, ...]:
        """Per-request graph sizes (the service model's input)."""
        return tuple(r.graph_size for r in self.requests)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Distinct tenants represented in the batch, sorted."""
        return tuple(sorted({r.tenant for r in self.requests}))


class BatchingScheduler:
    """Size-or-deadline batching with FIFO or weighted-fair composition."""

    def __init__(
        self,
        max_batch: int = 8,
        max_wait_seconds: float = 0.005,
        policy: str = "fifo",
        tenant_weights: Mapping[str, float] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if tenant_weights is not None and any(
            w <= 0 for w in tenant_weights.values()
        ):
            raise ValueError("tenant weights must be positive")
        self.max_batch = max_batch
        self.max_wait_seconds = max_wait_seconds
        self.policy = policy
        self.tenant_weights = dict(tenant_weights or {})
        self._fifo: deque[Request] = deque()
        self._queues: dict[str, deque[Request]] = {}
        self._vtime: dict[str, float] = {}
        self._vclock = 0.0  # wfq: virtual time service has progressed to
        self._depth = 0

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting across every tenant queue."""
        return self._depth

    def oldest_arrival(self) -> float | None:
        """Arrival time of the longest-waiting request (None when empty)."""
        if self._depth == 0:
            return None
        if self.policy == "fifo":
            return self._fifo[0].arrival_time
        return min(q[0].arrival_time for q in self._queues.values() if q)

    def enqueue(self, request: Request) -> None:
        """Admit one request (the engine calls this in arrival order)."""
        if self.policy == "fifo":
            self._fifo.append(request)
        else:
            queue = self._queues.get(request.tenant)
            if queue is None:
                queue = self._queues[request.tenant] = deque()
            if not queue:
                self._activate(request.tenant)
            queue.append(request)
        self._depth += 1

    def ready(self, now: float, limit: int | None = None) -> bool:
        """Whether a batch should be dispatched at time ``now``.

        ``limit`` is a per-dispatch batch ceiling below ``max_batch`` —
        the hardware cap of the instance type asking (heterogeneous
        fleets); a full batch *for that type* is ready sooner.
        """
        if self._depth == 0:
            return False
        size = (
            self.max_batch if limit is None else min(self.max_batch, limit)
        )
        if self._depth >= size:
            return True
        oldest = self.oldest_arrival()
        assert oldest is not None
        # The engine schedules the deadline event at ``arrival + max_wait``;
        # the epsilon absorbs the float rounding of ``now - arrival`` so a
        # fired deadline always finds its queue head ready (liveness).
        return now - oldest >= self.max_wait_seconds - 1e-9

    # ------------------------------------------------------------------
    # Batch composition
    # ------------------------------------------------------------------
    def pop_batch(self, now: float, limit: int | None = None) -> Batch:
        """Form and remove the next batch (up to ``max_batch`` requests,
        further capped by ``limit`` — the acquiring instance type's batch
        ceiling — when given)."""
        if self._depth == 0:
            raise ValueError("cannot pop a batch from an empty queue")
        size = (
            self.max_batch if limit is None else min(self.max_batch, limit)
        )
        take = min(size, self._depth)
        if self.policy == "fifo":
            chosen = [self._fifo.popleft() for _ in range(take)]
        else:
            chosen = [self._pop_fair() for _ in range(take)]
        self._depth -= take
        return Batch(requests=tuple(chosen), formed_time=now)

    def drain(self) -> tuple[Request, ...]:
        """Remove and return everything queued, in pop order.

        Failure-aware routing uses this when a target loses its last
        serving instance: the dead target's queue is drained and its
        requests re-enqueued onto healthy targets instead of waiting on
        capacity that no longer exists.  The scheduler itself is left
        empty but keeps its fairness state, so a revived target resumes
        with no banked credit or debt.
        """
        drained: list[Request] = []
        while self._depth > 0:
            if self.policy == "fifo":
                drained.append(self._fifo.popleft())
            else:
                drained.append(self._pop_fair())
            self._depth -= 1
        return tuple(drained)

    def spawn(self) -> "BatchingScheduler":
        """A fresh, empty scheduler with this one's configuration.

        The routing layer needs one queue per target with identical
        batching knobs; spawning from the configured prototype keeps
        direct engine construction (one scheduler, one queue) working
        unchanged.
        """
        return BatchingScheduler(
            max_batch=self.max_batch,
            max_wait_seconds=self.max_wait_seconds,
            policy=self.policy,
            tenant_weights=self.tenant_weights,
        )

    def _weight(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, 1.0)

    def _activate(self, tenant: str) -> None:
        """(Re)admit a tenant to the stride race at the current progress.

        Joining at the virtual clock means neither banked credit (an idle
        tenant returning with an ancient small virtual time and
        monopolizing batches) nor banked debt (a tenant that was served
        while alone being starved once competitors show up): service is
        fair from the moment of (re)activation onward.
        """
        self._vtime[tenant] = max(
            self._vtime.get(tenant, self._vclock), self._vclock
        )

    def _pop_fair(self) -> Request:
        """Stride scheduling: serve the lowest virtual time, tie on name."""
        tenant = min(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._vtime[t], t),
        )
        self._vtime[tenant] += 1.0 / self._weight(tenant)
        self._vclock = self._vtime[tenant]
        return self._queues[tenant].popleft()


class SchedulerGroup:
    """The routing layer's per-target queues, one scheduler per target.

    A thin aggregate over named :class:`BatchingScheduler` instances: the
    engine enqueues into the target a routing policy picked and reads the
    *total* queue depth for admission, autoscaling, and sampling — the
    same number the single shared queue used to report.  Target order is
    declaration order (deterministic iteration).
    """

    def __init__(self, schedulers: Mapping[str, BatchingScheduler]) -> None:
        if not schedulers:
            raise ValueError("a scheduler group needs at least one target")
        self._schedulers = dict(schedulers)
        self.targets: tuple[str, ...] = tuple(self._schedulers)

    def __getitem__(self, target: str) -> BatchingScheduler:
        return self._schedulers[target]

    def __iter__(self):
        return iter(self._schedulers.values())

    @property
    def queue_depth(self) -> int:
        """Waiting requests summed across every target queue."""
        return sum(s.queue_depth for s in self._schedulers.values())

    def depth_of(self, target: str) -> int:
        """One target's queue depth (what routing policies inspect)."""
        return self._schedulers[target].queue_depth
